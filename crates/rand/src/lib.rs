//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This crate provides exactly the
//! 0.9-style API surface the workspace uses — [`Rng::random`],
//! [`Rng::random_range`], [`Rng::random_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`seq::SliceRandom`] slice helpers
//! (`shuffle`, `choose`, `choose_weighted`) — backed by a deterministic
//! SplitMix64 generator. Workload generators only need a seeded,
//! well-mixed stream; they do not depend on the upstream `StdRng` bit
//! sequence.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand 0.9`.
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Random`] type.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform draw from an integer range (half-open or inclusive).
    ///
    /// Generic over the output type `T` (like upstream `rand`), so the
    /// expected type drives integer-literal inference at call sites:
    /// `let m: usize = rng.random_range(1..15)` samples a `usize`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::random_range`] accepts, parameterised by the
/// sampled type so call-site type ascription resolves integer literals.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator. Not the upstream `StdRng`
    /// bit stream, but an equally well-mixed seeded source for the
    /// synthetic-workload generators.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // Warm up so nearby seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers: `shuffle`, plus the uniform and weighted `choose`
    /// forms the planted-query workload samplers use.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// An element drawn with probability proportional to
        /// `weight(item)`. Non-finite or negative weights count as zero;
        /// `None` when the slice is empty or the total weight is zero.
        fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Option<&Self::Item>
        where
            R: RngCore + ?Sized,
            F: Fn(&Self::Item) -> f64;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Option<&T>
        where
            R: RngCore + ?Sized,
            F: Fn(&T) -> f64,
        {
            let w = |item: &T| {
                let w = weight(item);
                if w.is_finite() && w > 0.0 {
                    w
                } else {
                    0.0
                }
            };
            let total: f64 = self.iter().map(&w).sum();
            if total <= 0.0 {
                return None;
            }
            let mut target = <f64 as super::Random>::random(rng) * total;
            for item in self {
                target -= w(item);
                if target < 0.0 {
                    return Some(item);
                }
            }
            // Floating-point slack put the target at/past the total:
            // return the last positively weighted element.
            self.iter().rev().find(|item| w(item) > 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn choose_is_deterministic_per_seed_and_in_bounds() {
        let items: Vec<usize> = (0..13).collect();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .map(|_| *items.choose(&mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        let a = draw(17);
        assert_eq!(a, draw(17), "same seed must reproduce the draw stream");
        assert_ne!(a, draw(18), "different seeds must diverge");
        assert!(a.iter().all(|&x| x < 13));
        let empty: [usize; 0] = [];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_weighted_is_deterministic_and_respects_weights() {
        let items = [0usize, 1, 2, 3];
        let weight = |&i: &usize| [0.0, 1.0, 3.0, 0.0][i];
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..3000)
                .map(|_| *items.choose_weighted(&mut rng, weight).unwrap())
                .collect::<Vec<_>>()
        };
        let a = draw(5);
        assert_eq!(a, draw(5), "same seed must reproduce the draw stream");
        // Zero-weight items never appear; the 3:1 ratio roughly holds.
        assert!(a.iter().all(|&x| x == 1 || x == 2));
        let twos = a.iter().filter(|&&x| x == 2).count();
        assert!((2000..2500).contains(&twos), "twos={twos}");
    }

    #[test]
    fn choose_weighted_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [usize; 0] = [];
        assert!(empty.choose_weighted(&mut rng, |_| 1.0).is_none());
        let dead = [1usize, 2, 3];
        assert!(dead.choose_weighted(&mut rng, |_| 0.0).is_none());
        // Negative and non-finite weights are treated as zero.
        assert_eq!(
            dead.choose_weighted(&mut rng, |&i| if i == 2 { 1.0 } else { -5.0 }),
            Some(&2)
        );
        assert_eq!(
            dead.choose_weighted(&mut rng, |&i| if i == 3 { 2.0 } else { f64::NAN }),
            Some(&3)
        );
    }
}
