//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so this crate implements
//! the subset of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   [`collection::vec`], and [`arbitrary::any`];
//! * the macros `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, `prop_assume!`, and `prop_oneof!`;
//! * [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Semantics: each test runs `cases` iterations with inputs drawn from a
//! deterministic per-test SplitMix64 stream (seeded from the test path),
//! so failures reproduce across runs. There is **no shrinking** — a
//! failing case reports the case number and the assertion message.

pub mod test_runner {
    /// Runner configuration; only the case count is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream used to generate test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            }
        }

        /// Seed deterministically from a test path and case index.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(
                h.wrapping_add(case as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n = 0` yields 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of test values. Unlike real proptest there is no value
    /// tree and no shrinking: a strategy is just a cloneable sampler.
    pub trait Strategy: Clone {
        type Value;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + Clone,
        {
            FlatMap { source: self, f }
        }

        /// Depth-bounded recursive strategy. `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility but
        /// ignored; only `depth` limits the recursion.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Mix the leaf back in at every level so shallow values
                // stay reachable from the top.
                current = union(vec![leaf.clone(), f(current).boxed()]);
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy {
                sample: Rc::new(move |rng| s.gen_value(rng)),
            }
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<T> {
        sample: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sample: Rc::clone(&self.sample),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// A uniform choice among strategies (the engine behind `prop_oneof!`).
    pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "union of zero strategies");
        BoxedStrategy {
            sample: Rc::new(move |rng| {
                let i = rng.below(options.len() as u64) as usize;
                options[i].gen_value(rng)
            }),
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.gen_value(rng)).gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128) % span;
                    (lo as i128 + r as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Vector length specification: a fixed size or a size range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The test-defining macro. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__path, __case);
                $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(__msg) => panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        __msg
                    ),
                }
            }
        }
    )*};
}

/// Assert inside a proptest body; failure aborts only the current case
/// with a message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), __l, __r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)+),
                __l, __r, file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                __l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skip the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 2usize..5, x in -7i64..=7) {
            prop_assert!((2..5).contains(&n));
            prop_assert!((-7..=7).contains(&x));
        }

        #[test]
        fn flat_map_threads_dependencies((n, v) in (1usize..4).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0..n, 0..(2 * n)))
        })) {
            prop_assert!(v.len() < 2 * n);
            for x in v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn oneof_picks_only_arms(x in prop_oneof![Just(1i32), Just(-1i32)]) {
            prop_assert!(x == 1 || x == -1);
        }

        #[test]
        fn assume_skips(b in any::<bool>()) {
            prop_assume!(b);
            prop_assert!(b);
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Expr {
        Leaf(i8),
        Not(Box<Expr>),
        And(Vec<Expr>),
    }

    fn depth(e: &Expr) -> usize {
        match e {
            Expr::Leaf(_) => 0,
            Expr::Not(i) => 1 + depth(i),
            Expr::And(es) => 1 + es.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursive_strategies_are_depth_bounded(e in (0i8..4).prop_map(Expr::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                prop_oneof![
                    inner.clone().prop_map(|f| Expr::Not(Box::new(f))),
                    crate::collection::vec(inner, 0..3).prop_map(Expr::And),
                ]
            }))
        {
            prop_assert!(depth(&e) <= 3, "depth {} for {:?}", depth(&e), e);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0usize..100, 0usize..100);
        let a: Vec<_> = (0..10)
            .map(|c| strat.clone().gen_value(&mut TestRng::for_case("x", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| strat.clone().gen_value(&mut TestRng::for_case("x", c)))
            .collect();
        assert_eq!(a, b);
    }
}
