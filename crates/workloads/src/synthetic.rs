//! Random and structured training databases with known ground truth.

use cq::{selects, Cq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relational::{Database, DbBuilder, Label, Labeling, Schema, TrainingDb};

/// The standard graph entity schema used throughout: `η/1`, `E/2`.
pub fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// A random digraph on `n` vertices where each of the `n·(n-1)` ordered
/// pairs is an edge with probability `p`; every vertex is an entity,
/// labeled by whether it has an outgoing edge (so the instance is
/// `CQ[1]`-separable by construction).
pub fn random_digraph_train(n: usize, p: f64, seed: u64) -> TrainingDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(graph_schema());
    let e = db.schema().rel_by_name("E").unwrap();
    let vals: Vec<_> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    let mut has_out = vec![false; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.random::<f64>() < p {
                db.add_fact(e, vec![vals[i], vals[j]]);
                has_out[i] = true;
            }
        }
    }
    let mut labeling = Labeling::new();
    for i in 0..n {
        db.add_entity(vals[i]);
        labeling.set(
            vals[i],
            if has_out[i] {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    TrainingDb::new(db, labeling)
}

/// Configuration for [`planted_feature_graph`].
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    pub n: usize,
    pub edge_prob: f64,
    pub seed: u64,
}

/// A random digraph labeled by a *planted* feature query: the labels are
/// exactly `q(D)` for the given unary CQ, so the instance is separable by
/// any class containing `q` (dimension 1!). Ideal for crossover and
/// correctness experiments: every solver must answer "separable".
pub fn planted_feature_graph(config: &PlantedConfig, q: &Cq) -> TrainingDb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(graph_schema());
    let e = db.schema().rel_by_name("E").unwrap();
    let vals: Vec<_> = (0..config.n).map(|i| db.value(&format!("v{i}"))).collect();
    for i in 0..config.n {
        for j in 0..config.n {
            if i != j && rng.random::<f64>() < config.edge_prob {
                db.add_fact(e, vec![vals[i], vals[j]]);
            }
        }
    }
    for &v in &vals {
        db.add_entity(v);
    }
    let mut labeling = Labeling::new();
    for &v in &vals {
        let lab = if selects(q, &db, v) {
            Label::Positive
        } else {
            Label::Negative
        };
        labeling.set(v, lab);
    }
    TrainingDb::new(db, labeling)
}

/// A directed cycle of length `n` with `chords` random chords; entities
/// are all vertices, labeled positive iff they are a chord source. Used
/// by the CQ-Sep hardness-shape bench (hom tests on cyclic structures are
/// the expensive case).
pub fn cycle_with_chords(n: usize, chords: usize, seed: u64) -> TrainingDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(graph_schema());
    let e = db.schema().rel_by_name("E").unwrap();
    let vals: Vec<_> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    for i in 0..n {
        db.add_fact(e, vec![vals[i], vals[(i + 1) % n]]);
    }
    let mut is_source = vec![false; n];
    for _ in 0..chords {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b && (a + 1) % n != b {
            db.add_fact(e, vec![vals[a], vals[b]]);
            is_source[a] = true;
        }
    }
    let mut labeling = Labeling::new();
    for i in 0..n {
        db.add_entity(vals[i]);
        labeling.set(
            vals[i],
            if is_source[i] {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    TrainingDb::new(db, labeling)
}

/// `copies` disjoint out-paths of each length in `1..=max_len`; the path
/// starts are entities labeled by length parity (even = positive). The
/// `→_k`-equivalence classes are exactly the groups of same-length starts
/// (`copies` twins each), so label noise *inside* a class is irreparable
/// — the workload for the approximate-separability experiments (§7).
pub fn replicated_paths(max_len: usize, copies: usize) -> TrainingDb {
    let mut b = DbBuilder::new(graph_schema());
    for len in 1..=max_len {
        for c in 0..copies {
            for step in 0..len {
                let from = format!("p{len}c{c}_{step}");
                let to = format!("p{len}c{c}_{}", step + 1);
                b = b.fact("E", &[&from, &to]);
            }
            let start = format!("p{len}c{c}_0");
            b = if len % 2 == 0 {
                b.positive(&start)
            } else {
                b.negative(&start)
            };
        }
    }
    b.training()
}

/// An `r × c` directed grid (edges right and down); entities are all
/// nodes, labeled positive iff they lie in the top-left quadrant. Grids
/// are the classic high-treewidth stressor for the homomorphism solver.
pub fn grid_train(r: usize, c: usize) -> TrainingDb {
    let mut b = DbBuilder::new(graph_schema());
    let name = |i: usize, j: usize| format!("g{i}_{j}");
    for i in 0..r {
        for j in 0..c {
            if i + 1 < r {
                b = b.fact("E", &[&name(i, j), &name(i + 1, j)]);
            }
            if j + 1 < c {
                b = b.fact("E", &[&name(i, j), &name(i, j + 1)]);
            }
        }
    }
    for i in 0..r {
        for j in 0..c {
            let n = name(i, j);
            b = if i < r / 2 && j < c / 2 {
                b.positive(&n)
            } else {
                b.negative(&n)
            };
        }
    }
    b.training()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse::parse_cq;

    #[test]
    fn random_digraph_is_out_edge_separable() {
        let t = random_digraph_train(12, 0.15, 7);
        assert_eq!(t.entities().len(), 12);
        // Separable by CQ[1] with the out-edge feature, by construction.
        let model = cqsep::sep_cqm::cqm_generate(&t, &cq::EnumConfig::cqm(1))
            .expect("planted out-edge labels are CQ[1]-separable");
        assert!(model.separates(&t));
    }

    #[test]
    fn planted_feature_is_recovered() {
        let q = parse_cq(&graph_schema(), "q(x) :- eta(x), E(x,y), E(y,x)").unwrap();
        let t = planted_feature_graph(
            &PlantedConfig {
                n: 10,
                edge_prob: 0.3,
                seed: 3,
            },
            &q,
        );
        assert!(cqsep::sep_cqm::cqm_separable(&t, &cq::EnumConfig::cqm(2)));
        assert!(cqsep::sep_ghw::ghw_separable(&t, 1));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = random_digraph_train(10, 0.2, 42);
        let b = random_digraph_train(10, 0.2, 42);
        assert_eq!(a.db.fact_count(), b.db.fact_count());
        let c = random_digraph_train(10, 0.2, 43);
        // (Almost surely) different.
        assert!(
            a.db.fact_count() != c.db.fact_count() || {
                // Same count is possible; compare fact sets then.
                let fa: std::collections::BTreeSet<_> =
                    a.db.facts()
                        .iter()
                        .map(|f| a.db.fact_to_string(f))
                        .collect();
                let fc: std::collections::BTreeSet<_> =
                    c.db.facts()
                        .iter()
                        .map(|f| c.db.fact_to_string(f))
                        .collect();
                fa != fc
            }
        );
    }

    #[test]
    fn replicated_paths_have_twin_classes() {
        let t = replicated_paths(3, 2);
        assert_eq!(t.entities().len(), 6);
        // Twins are →_1 equivalent; different lengths are not.
        let v = |n: &str| t.db.val_by_name(n).unwrap();
        assert!(covergame::cover_equivalent(
            &t.db,
            v("p2c0_0"),
            &t.db,
            v("p2c1_0"),
            1
        ));
        assert!(!covergame::cover_equivalent(
            &t.db,
            v("p2c0_0"),
            &t.db,
            v("p3c0_0"),
            1
        ));
        assert!(cqsep::sep_ghw::ghw_separable(&t, 1));
    }

    #[test]
    fn grid_shape() {
        let t = grid_train(3, 4);
        assert_eq!(t.entities().len(), 12);
        // Edge count: 2*3*4 - 3 - 4 = 17.
        let e = t.db.schema().rel_by_name("E").unwrap();
        assert_eq!(t.db.facts_of_rel(e).len(), 17);
    }

    #[test]
    fn cycle_with_chords_has_cycle_backbone() {
        let t = cycle_with_chords(8, 3, 1);
        let e = t.db.schema().rel_by_name("E").unwrap();
        assert!(t.db.facts_of_rel(e).len() >= 8);
        assert_eq!(t.entities().len(), 8);
    }
}
