//! Planted-query train/test generator families for the generalization
//! harness.
//!
//! Each [`PlantedFamily`] plants a unary target query `q*` over the
//! standard graph schema (`η/1`, `E/2`), samples *independent* train and
//! held-out test databases from the same distribution, labels every
//! entity by `q*`, and optionally flips a fraction of the *training*
//! labels (layered on [`crate::noise::flip_labels`]). The result is a
//! supervised-learning instance whose ground truth is known exactly:
//!
//! * at noise 0 the training database is separable by any language
//!   containing `q*` (the "matching tier"), and a learner that recovers
//!   `q*` — or anything extensionally equivalent on the test
//!   distribution — scores 100% held-out accuracy;
//! * under noise, exact fitting must either fail or overfit, which is
//!   precisely the trade-off the regularized languages (CQ[m], GHW(k),
//!   Sep[ℓ]) and the min-error path are meant to navigate (§7 of the
//!   paper; cf. the non-generalization results of arXiv:2312.03407).
//!
//! Everything is deterministic in the explicit seeds: same
//! [`SampleConfig`], same instance, forever.

use crate::noise::flip_labels;
use crate::synthetic::graph_schema;
use cq::parse::parse_cq;
use cq::{selects, Cq};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relational::{Database, Label, Labeling, TrainingDb};

/// How a family wires its random digraphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wiring {
    /// Every ordered pair is an edge independently with probability
    /// `density`.
    Uniform,
    /// `⌈density · n · (n-1)⌉` edges; sources uniform, targets drawn by
    /// preferential attachment (weight `in_degree + 1`), so hubs — and
    /// the short cycles through them — form at much lower density.
    Preferential,
}

/// A generator family with a planted target query.
#[derive(Clone, Debug)]
pub struct PlantedFamily {
    /// Short identifier (used in reports and `BENCH_generalize.json`).
    pub name: &'static str,
    /// The planted query in `cq::parse` syntax.
    pub query_text: &'static str,
    /// Number of non-η atoms of the target — the matching `CQ[m]` tier.
    pub atoms: usize,
    /// Edge density that reliably yields both label classes at the
    /// harness's default sizes (families differ: a triangle needs far
    /// more wiring than an out-edge).
    pub default_density: f64,
    wiring: Wiring,
}

impl PlantedFamily {
    /// The planted target query `q*`.
    pub fn target(&self) -> Cq {
        parse_cq(&graph_schema(), self.query_text).expect("family target parses")
    }
}

/// The built-in families, in increasing target complexity. All are over
/// the graph schema; `atoms` is the matching `CQ[m]` tier and every
/// target has generalized hypertree width 1.
pub fn families() -> Vec<PlantedFamily> {
    vec![
        PlantedFamily {
            name: "out_edge",
            query_text: "q(x) :- eta(x), E(x,y)",
            atoms: 1,
            default_density: 0.10,
            wiring: Wiring::Uniform,
        },
        PlantedFamily {
            name: "two_cycle",
            query_text: "q(x) :- eta(x), E(x,y), E(y,x)",
            atoms: 2,
            default_density: 0.18,
            wiring: Wiring::Uniform,
        },
        PlantedFamily {
            name: "out_path2",
            query_text: "q(x) :- eta(x), E(x,y), E(y,z)",
            atoms: 2,
            default_density: 0.06,
            wiring: Wiring::Uniform,
        },
        PlantedFamily {
            name: "triangle",
            query_text: "q(x) :- eta(x), E(x,y), E(y,z), E(z,x)",
            atoms: 3,
            default_density: 0.16,
            wiring: Wiring::Preferential,
        },
    ]
}

/// Look up a built-in family by name.
pub fn family_by_name(name: &str) -> Option<PlantedFamily> {
    families().into_iter().find(|f| f.name == name)
}

/// Parameters of one train/test sample.
#[derive(Clone, Debug)]
pub struct SampleConfig {
    /// Training database size (vertices = entities).
    pub train_n: usize,
    /// Held-out test database size.
    pub test_n: usize,
    /// Edge density (see [`Wiring`]).
    pub density: f64,
    /// Fraction of *training* labels flipped (exact count
    /// `⌊noise · train_n⌋`, via [`flip_labels`]). The test labels are
    /// always the clean ground truth.
    pub noise: f64,
    /// Master seed; train, test, and noise streams are derived from it.
    pub seed: u64,
}

impl SampleConfig {
    /// A config at the family's default density with zero noise.
    pub fn for_family(family: &PlantedFamily, train_n: usize, test_n: usize, seed: u64) -> Self {
        SampleConfig {
            train_n,
            test_n,
            density: family.default_density,
            noise: 0.0,
            seed,
        }
    }
}

/// One train/test instance of a planted family.
#[derive(Clone, Debug)]
pub struct PlantedSplit {
    /// The (possibly noisy) training database.
    pub train: TrainingDb,
    /// The clean training labels (before noise) — ground truth for
    /// measuring how much of the noise a fit absorbed.
    pub clean_train: TrainingDb,
    /// The held-out test database with clean ground-truth labels.
    pub test: TrainingDb,
    /// How many training labels were flipped.
    pub flips: usize,
    /// The planted target query.
    pub target: Cq,
}

/// Sample a labeled database of the family: a random digraph labeled by
/// the planted target, resampled (with derived seeds) until both label
/// classes are present. Deterministic per `(family, n, density, seed)`.
///
/// # Panics
/// After 64 fruitless resamples — the density is pathological for the
/// size (e.g. a triangle family too sparse to contain any triangle).
pub fn sample_labeled(family: &PlantedFamily, n: usize, density: f64, seed: u64) -> TrainingDb {
    assert!(n >= 2, "need at least two entities for two classes");
    let target = family.target();
    for attempt in 0..64u64 {
        let s = seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let db = sample_digraph(family.wiring, n, density, s);
        let labeling = label_by(&target, &db);
        let t = TrainingDb::new(db, labeling);
        if !t.positives().is_empty() && !t.negatives().is_empty() {
            return t;
        }
    }
    panic!(
        "family {:?} produced a single label class in 64 samples \
         (n={n}, density={density})",
        family.name
    );
}

/// Sample a full train/test split with label noise on the training side.
pub fn planted_split(family: &PlantedFamily, config: &SampleConfig) -> PlantedSplit {
    let clean_train = sample_labeled(family, config.train_n, config.density, config.seed);
    // Distinct derived streams for test and noise so the three sampling
    // decisions never alias even under equal sizes.
    let test = sample_labeled(
        family,
        config.test_n,
        config.density,
        config.seed ^ 0xD1CE_4E5B_0BAD_F00D,
    );
    let (train, flips) = flip_labels(
        &clean_train,
        config.noise,
        config.seed ^ 0x5EED_0F11_CE55_1234,
    );
    PlantedSplit {
        train,
        clean_train,
        test,
        flips,
        target: family.target(),
    }
}

fn sample_digraph(wiring: Wiring, n: usize, density: f64, seed: u64) -> Database {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(graph_schema());
    let e = db.schema().rel_by_name("E").unwrap();
    let vals: Vec<_> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    match wiring {
        Wiring::Uniform => {
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.random::<f64>() < density {
                        db.add_fact(e, vec![vals[i], vals[j]]);
                    }
                }
            }
        }
        Wiring::Preferential => {
            let edges = (density * (n * (n - 1)) as f64).ceil() as usize;
            let mut in_deg = vec![0usize; n];
            let mut present = std::collections::HashSet::new();
            let idx: Vec<usize> = (0..n).collect();
            for _ in 0..edges {
                let &src = idx.choose(&mut rng).expect("n >= 2");
                let &dst = idx
                    .choose_weighted(&mut rng, |&j| {
                        if j == src {
                            0.0
                        } else {
                            (in_deg[j] + 1) as f64
                        }
                    })
                    .expect("some target has positive weight");
                if present.insert((src, dst)) {
                    db.add_fact(e, vec![vals[src], vals[dst]]);
                    in_deg[dst] += 1;
                }
            }
        }
    }
    for &v in &vals {
        db.add_entity(v);
    }
    db
}

fn label_by(target: &Cq, db: &Database) -> Labeling {
    let mut labeling = Labeling::new();
    for v in db.entities() {
        let lab = if selects(target, db, v) {
            Label::Positive
        } else {
            Label::Negative
        };
        labeling.set(v, lab);
    }
    labeling
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_sample_both_classes() {
        for family in families() {
            let t = sample_labeled(&family, 24, family.default_density, 7);
            assert_eq!(t.entities().len(), 24, "{}", family.name);
            assert!(!t.positives().is_empty(), "{}: no positives", family.name);
            assert!(!t.negatives().is_empty(), "{}: no negatives", family.name);
        }
    }

    #[test]
    fn splits_are_deterministic_per_seed() {
        let family = family_by_name("two_cycle").unwrap();
        let cfg = SampleConfig {
            train_n: 16,
            test_n: 12,
            density: family.default_density,
            noise: 0.25,
            seed: 42,
        };
        let a = planted_split(&family, &cfg);
        let b = planted_split(&family, &cfg);
        assert_eq!(a.flips, b.flips);
        assert_eq!(a.train.db.fact_count(), b.train.db.fact_count());
        assert_eq!(a.train.labeling.disagreement(&b.train.labeling), 0);
        assert_eq!(a.test.labeling.disagreement(&b.test.labeling), 0);
        // Train and test are genuinely different databases.
        let c = planted_split(
            &family,
            &SampleConfig {
                seed: 43,
                ..cfg.clone()
            },
        );
        assert!(
            a.train.db.fact_count() != c.train.db.fact_count()
                || a.train.labeling.disagreement(&c.train.labeling) != 0,
            "different seeds must diverge"
        );
    }

    #[test]
    fn noise_flips_exactly_the_requested_fraction() {
        let family = family_by_name("out_edge").unwrap();
        let cfg = SampleConfig {
            train_n: 20,
            test_n: 10,
            density: family.default_density,
            noise: 0.2,
            seed: 5,
        };
        let split = planted_split(&family, &cfg);
        assert_eq!(split.flips, 4);
        assert_eq!(
            split
                .clean_train
                .labeling
                .disagreement(&split.train.labeling),
            4
        );
        // Test labels are the clean ground truth of the planted query.
        for e in split.test.entities() {
            let expect = if cq::selects(&split.target, &split.test.db, e) {
                Label::Positive
            } else {
                Label::Negative
            };
            assert_eq!(split.test.labeling.get(e), expect);
        }
    }

    #[test]
    fn zero_noise_split_is_matching_tier_separable() {
        for family in families() {
            let cfg = SampleConfig::for_family(&family, 14, 10, 11);
            let split = planted_split(&family, &cfg);
            assert_eq!(split.flips, 0);
            let model =
                cqsep::sep_cqm::cqm_generate(&split.train, &cq::EnumConfig::cqm(family.atoms))
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: zero-noise instance must be CQ[{}]-separable",
                            family.name, family.atoms
                        )
                    });
            assert!(model.separates(&split.train), "{}", family.name);
        }
    }

    #[test]
    fn preferential_wiring_reaches_triangles() {
        let family = family_by_name("triangle").unwrap();
        let t = sample_labeled(&family, 24, family.default_density, 3);
        // The positive class is exactly the on-a-triangle vertices.
        assert!(!t.positives().is_empty());
    }
}
