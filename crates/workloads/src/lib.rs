//! Synthetic training databases: random instances and the paper's
//! lower-bound constructions.
//!
//! The paper is a theory paper; its "evaluation" is a complexity
//! landscape (Table 1) plus worst-case families (Theorems 5.7, 6.7,
//! Example 6.2, Proposition 8.6). This crate generates
//!
//! * structured inputs whose separability status is known by
//!   construction (planted-feature random graphs, paths, cycles, grids) —
//!   the scaling benches of EXPERIMENTS.md run on these; and
//! * the lower-bound families: alternating `→_k` chains forcing statistic
//!   dimension ≥ m (Theorem 5.7(a) / Proposition 8.6), and twin paths
//!   whose distinguishing features grow with the family parameter (the
//!   measurable content of Theorem 5.7(b); see DESIGN.md §4 for the
//!   substitution note).

pub mod lowerbound;
pub mod noise;
pub mod planted;
pub mod synthetic;

pub use lowerbound::{alternating_paths, example_6_2, twin_cycles, twin_paths};
pub use noise::flip_labels;
pub use planted::{
    families, family_by_name, planted_split, sample_labeled, PlantedFamily, PlantedSplit,
    SampleConfig,
};
pub use synthetic::{
    cycle_with_chords, grid_train, planted_feature_graph, random_digraph_train, replicated_paths,
    PlantedConfig,
};
