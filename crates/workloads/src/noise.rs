//! Label-noise injection for the approximate-separability experiments
//! (§7): flip a fraction of training labels and measure how well the
//! optimal relabeling (Algorithm 2) recovers.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use relational::{Labeling, TrainingDb};

/// Flip the labels of exactly `⌊rate · |η(D)|⌋` randomly chosen entities.
/// Returns the noisy training database and the number of flips.
pub fn flip_labels(train: &TrainingDb, rate: f64, seed: u64) -> (TrainingDb, usize) {
    assert!((0.0..=1.0).contains(&rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut entities = train.entities();
    entities.shuffle(&mut rng);
    let flips = (rate * entities.len() as f64).floor() as usize;
    let mut labeling = Labeling::new();
    for (i, &e) in entities.iter().enumerate() {
        let base = train.labeling.get(e);
        labeling.set(e, if i < flips { base.flip() } else { base });
    }
    (TrainingDb::new(train.db.clone(), labeling), flips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::random_digraph_train;

    #[test]
    fn flip_count_is_exact() {
        let t = random_digraph_train(20, 0.2, 5);
        for rate in [0.0, 0.1, 0.25, 0.5] {
            let (noisy, flips) = flip_labels(&t, rate, 9);
            assert_eq!(flips, (rate * 20.0).floor() as usize);
            assert_eq!(t.labeling.disagreement(&noisy.labeling), flips);
        }
    }

    #[test]
    fn zero_rate_is_identity() {
        let t = random_digraph_train(10, 0.3, 1);
        let (noisy, flips) = flip_labels(&t, 0.0, 2);
        assert_eq!(flips, 0);
        assert_eq!(t.labeling.disagreement(&noisy.labeling), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = random_digraph_train(15, 0.2, 3);
        let (a, _) = flip_labels(&t, 0.3, 11);
        let (b, _) = flip_labels(&t, 0.3, 11);
        assert_eq!(a.labeling.disagreement(&b.labeling), 0);
    }
}
