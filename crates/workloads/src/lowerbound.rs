//! The paper's lower-bound families, as generators.
//!
//! * [`alternating_paths`] — Theorem 5.7(a) / Proposition 8.6 shape: `m`
//!   entities forming a strict `→_k`-chain with alternating labels. Every
//!   feature's answer set on a chain is an up-set (a suffix), so a
//!   separating statistic needs at least `m − 1` features: each suffix
//!   indicator contributes one step to the score sequence along the
//!   chain, and the labels alternate `m − 1` times.
//! * [`twin_paths`] — the feature-size growth shape of Theorem 5.7(b):
//!   adjacent chain entities whose every distinguishing `GHW(k)` query
//!   needs `n` atoms. (The paper's appendix construction achieves
//!   `2^Ω(n)`; this family exhibits measurable growth with a transparent
//!   certificate. See DESIGN.md §4.)
//! * [`example_6_2`] — the paper's Example 6.2 verbatim.
//! * [`twin_cycles`] — the canonical CQ-inseparable instance (two
//!   disjoint, hom-equivalent cycles with opposite labels).

use relational::{DbBuilder, Schema, TrainingDb};

fn graph_schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// `m` disjoint out-paths of lengths `1..=m`; entity `e_i` is the start
/// of the length-`i` path; labels alternate along the chain
/// `e_1 ⪯ e_2 ⪯ … ⪯ e_m` (where `⪯` is `→_k` for every `k ≥ 1`, and also
/// the hom preorder). `|D| = O(m²)` facts, `m` entities.
pub fn alternating_paths(m: usize) -> TrainingDb {
    let mut b = DbBuilder::new(graph_schema());
    for i in 1..=m {
        for step in 0..i {
            let from = format!("p{i}_{step}");
            let to = format!("p{i}_{}", step + 1);
            b = b.fact("E", &[&from, &to]);
        }
        let start = format!("p{i}_0");
        b = if i % 2 == 0 {
            b.positive(&start)
        } else {
            b.negative(&start)
        };
    }
    b.training()
}

/// Two path-start entities forming one adjacent `→_k` chain step:
/// `u` starts a directed out-path of length `n`, `v` one of length
/// `n − 1`. Then `v ⪯ u` strictly, and *every* `GHW(k)` query
/// distinguishing `u` from `v` must entail the out-path-of-length-`n`
/// pattern — `n` atoms, growing linearly with the family parameter. This
/// is the measurable feature-size-growth family used by experiment E4
/// (Theorem 5.7(b) exhibits a `2^Ω(n)` blowup via an appendix
/// construction the paper does not include; see DESIGN.md §4 for the
/// substitution note). Labels: `u` positive, `v` negative.
pub fn twin_paths(n: usize) -> TrainingDb {
    assert!(n >= 2);
    let mut b = DbBuilder::new(graph_schema());
    for i in 0..n {
        let from = if i == 0 {
            "u".to_string()
        } else {
            format!("u{i}")
        };
        let to = format!("u{}", i + 1);
        b = b.fact("E", &[&from, &to]);
    }
    for i in 0..n - 1 {
        let from = if i == 0 {
            "v".to_string()
        } else {
            format!("v{i}")
        };
        let to = format!("v{}", i + 1);
        b = b.fact("E", &[&from, &to]);
    }
    b.positive("u").negative("v").training()
}

/// The paper's Example 6.2: `D = {R(a), S(a), S(c)}`, entities `a, b, c`,
/// `λ(a) = λ(b) = +`, `λ(c) = −`. CQ-separable, but not with one feature.
pub fn example_6_2() -> TrainingDb {
    let mut s = Schema::entity_schema();
    s.add_relation("R", 1);
    s.add_relation("S", 1);
    DbBuilder::new(s)
        .fact("R", &["a"])
        .fact("S", &["a"])
        .fact("S", &["c"])
        .positive("a")
        .positive("b")
        .negative("c")
        .training()
}

/// Two disjoint directed `n`-cycles with one entity each, labeled
/// oppositely: hom-equivalent (and `→_k`-equivalent, and automorphic),
/// hence inseparable in every class the paper studies.
pub fn twin_cycles(n: usize) -> TrainingDb {
    assert!(n >= 1);
    let mut b = DbBuilder::new(graph_schema());
    for (prefix, _) in [("x", 0), ("y", 1)] {
        for i in 0..n {
            let from = format!("{prefix}{i}");
            let to = format!("{prefix}{}", (i + 1) % n);
            b = b.fact("E", &[&from, &to]);
        }
    }
    b.positive("x0").negative("y0").training()
}

#[cfg(test)]
mod tests {
    use super::*;
    use covergame::cover_implies;
    use cqsep::sep_cq::cq_separable;
    use cqsep::sep_ghw::ghw_separable;

    #[test]
    fn alternating_paths_form_a_chain() {
        let t = alternating_paths(4);
        let ents = t.entities();
        assert_eq!(ents.len(), 4);
        // Entity of path length i is e_i; order entities by name.
        let mut named: Vec<(String, relational::Val)> = ents
            .iter()
            .map(|&e| (t.db.val_name(e).to_string(), e))
            .collect();
        named.sort();
        // p1_0 ⪯ p2_0 ⪯ p3_0 ⪯ p4_0 under →_1 (longer out-paths satisfy
        // more)... direction check: e_i has out-path length i; queries at
        // e_i transfer to e_j iff j ≥ i.
        for i in 0..4 {
            for j in 0..4 {
                let holds = cover_implies(&t.db, &[named[i].1], &t.db, &[named[j].1], 1);
                assert_eq!(holds, i <= j, "{} vs {}", named[i].0, named[j].0);
            }
        }
        // Chain is separable (all classes singleton).
        assert!(ghw_separable(&t, 1));
        assert!(cq_separable(&t));
    }

    #[test]
    fn twin_paths_order_and_distinguishing_size() {
        for n in [3usize, 5] {
            let t = twin_paths(n);
            let u = t.db.val_by_name("u").unwrap();
            let v = t.db.val_by_name("v").unwrap();
            assert!(cover_implies(&t.db, &[v], &t.db, &[u], 1), "v ⪯ u");
            assert!(!cover_implies(&t.db, &[u], &t.db, &[v], 1), "u ⋠ v");
            assert!(ghw_separable(&t, 1));
            // The extracted distinguishing query needs ≥ n E-atoms (the
            // out-path of length n is the only distinguishing pattern).
            let (q, td) =
                covergame::extract_distinguishing_query(&t.db, u, &t.db, v, 1, 100_000).unwrap();
            td.verify(&q, 1).unwrap();
            let e_atoms = q
                .atoms()
                .iter()
                .filter(|a| t.db.schema().name(a.rel) == "E")
                .count();
            assert!(e_atoms >= n, "n={n}: got only {e_atoms} E-atoms in {q}");
        }
    }

    #[test]
    fn example_6_2_matches_paper() {
        let t = example_6_2();
        assert!(cq_separable(&t));
        let bud = cqsep::sep_dim::DimBudget::default();
        assert!(!cqsep::sep_dim::cq_sep_dim(&t, 1, &bud).unwrap());
        assert!(cqsep::sep_dim::cq_sep_dim(&t, 2, &bud).unwrap());
    }

    #[test]
    fn twin_cycles_inseparable_everywhere() {
        let t = twin_cycles(3);
        assert!(!cq_separable(&t));
        assert!(!ghw_separable(&t, 1));
        assert!(!ghw_separable(&t, 2));
        assert!(!cqsep::fo::fo_separable(&t));
    }

    #[test]
    fn alternating_chain_needs_linear_dimension() {
        // The headline of Theorem 5.7(a), measured: the minimum number of
        // out-path features separating the m-chain is m - 1.
        let schema = graph_schema();
        for m in [3usize, 4] {
            let t = alternating_paths(m);
            let pool: Vec<cq::Cq> = (1..=m)
                .map(|len| {
                    let mut body = String::from("q(x0) :- eta(x0)");
                    for i in 0..len {
                        body += &format!(", E(x{i},x{})", i + 1);
                    }
                    cq::parse::parse_cq(&schema, &body).unwrap()
                })
                .collect();
            let dim = cqsep::fo::min_dimension_of(&t, &pool, m).expect("pool suffices");
            assert_eq!(dim, m - 1, "m={m}");
        }
    }
}
