//! Property tests for the planted-query generator families: at zero
//! noise, every sampled instance is exactly fit by its matching
//! regularized tier — the invariant the generalization harness's CI
//! assertion stands on.

use cq::EnumConfig;
use cqsep::generalize::{evaluate_with, FitMethod};
use cqsep::sep_cqm::cqm_generate_with;
use cqsep::Engine;
use proptest::prelude::*;
use workloads::{families, planted_split, SampleConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero-noise planted instances are `CQ[m*]`-separable at the
    /// family's own tier `m*`, the exact fit reproduces the training
    /// labels (train accuracy 1.0), and held-out metrics are
    /// well-defined.
    #[test]
    fn zero_noise_instances_fit_exactly_at_the_matching_tier(
        family_idx in 0usize..4,
        train_n in 10usize..18,
        seed in 0u64..1000,
    ) {
        let family = &families()[family_idx];
        let cfg = SampleConfig {
            train_n,
            test_n: 8,
            density: family.default_density,
            noise: 0.0,
            seed,
        };
        let split = planted_split(family, &cfg);
        prop_assert_eq!(split.flips, 0);

        let engine = Engine::new();
        let model = cqm_generate_with(&engine, &split.train, &EnumConfig::cqm(family.atoms));
        prop_assert!(
            model.is_some(),
            "{}: zero-noise sample (n={}, seed={}) must be CQ[{}]-separable",
            family.name, train_n, seed, family.atoms
        );
        prop_assert!(
            model.unwrap().separates(&split.train),
            "{}: exact fit must reproduce the training labels",
            family.name
        );

        // The same invariant through the harness: fit_exact, zero train
        // errors, and metrics inside [0, 1].
        let r = evaluate_with(&engine, &split.train, &split.test, FitMethod::Cqm(family.atoms));
        prop_assert!(r.fit_exact, "{}", family.name);
        prop_assert_eq!(r.train_errors, 0);
        prop_assert_eq!(r.test_size(), 8);
        prop_assert!((0.0..=1.0).contains(&r.accuracy()));
        prop_assert!((0.0..=1.0).contains(&r.precision()));
        prop_assert!((0.0..=1.0).contains(&r.recall()));
    }

    /// Noise accounting: flipping a fraction of training labels changes
    /// exactly `⌊noise · n⌋` labels and leaves the held-out side clean,
    /// and the min-error fit never pays more than the flip count (the
    /// clean labeling is still realizable).
    #[test]
    fn noise_is_bounded_by_the_flip_count(
        family_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let family = &families()[family_idx];
        let cfg = SampleConfig {
            train_n: 12,
            test_n: 8,
            density: family.default_density,
            noise: 0.25,
            seed,
        };
        let split = planted_split(family, &cfg);
        prop_assert_eq!(split.flips, 3);
        prop_assert_eq!(
            split.clean_train.labeling.disagreement(&split.train.labeling),
            3
        );

        let engine = Engine::new();
        let r = evaluate_with(
            &engine,
            &split.train,
            &split.test,
            FitMethod::MinError(family.atoms),
        );
        // The planted target still fits the 9 unflipped labels, so the
        // minimum error is at most the number of flips.
        prop_assert!(
            r.train_errors <= split.flips,
            "{}: min-error {} > {} flips (seed={})",
            family.name, r.train_errors, split.flips, seed
        );
    }
}
