//! A small fluent builder for constructing databases in tests, examples,
//! and workload generators.

use crate::database::Database;
use crate::labeling::{Label, Labeling, TrainingDb};
use crate::schema::Schema;

/// Fluent construction of a [`Database`] (and optionally a [`TrainingDb`]).
///
/// ```
/// use relational::{DbBuilder, Schema};
///
/// let mut schema = Schema::entity_schema();
/// schema.add_relation("edge", 2);
/// let train = DbBuilder::new(schema)
///     .fact("edge", &["a", "b"])
///     .fact("edge", &["b", "c"])
///     .entity("a")
///     .entity("c")
///     .positive("a")
///     .negative("c")
///     .training();
/// assert_eq!(train.db.entities().len(), 2);
/// ```
pub struct DbBuilder {
    db: Database,
    labels: Vec<(String, Label)>,
}

impl DbBuilder {
    pub fn new(schema: Schema) -> DbBuilder {
        DbBuilder {
            db: Database::new(schema),
            labels: Vec::new(),
        }
    }

    /// Start from an existing database (e.g., to extend a generated one).
    pub fn from_db(db: Database) -> DbBuilder {
        DbBuilder {
            db,
            labels: Vec::new(),
        }
    }

    pub fn fact(mut self, rel: &str, args: &[&str]) -> DbBuilder {
        self.db.add_named_fact(rel, args);
        self
    }

    /// Intern an element without putting it in any fact.
    pub fn element(mut self, name: &str) -> DbBuilder {
        self.db.value(name);
        self
    }

    /// Mark `name` as an entity (`η(name)`).
    pub fn entity(mut self, name: &str) -> DbBuilder {
        let v = self.db.value(name);
        self.db.add_entity(v);
        self
    }

    /// Mark `name` as a positively-labeled entity (adds `η` if missing).
    pub fn positive(mut self, name: &str) -> DbBuilder {
        let v = self.db.value(name);
        self.db.add_entity(v);
        self.labels.push((name.to_string(), Label::Positive));
        self
    }

    /// Mark `name` as a negatively-labeled entity (adds `η` if missing).
    pub fn negative(mut self, name: &str) -> DbBuilder {
        let v = self.db.value(name);
        self.db.add_entity(v);
        self.labels.push((name.to_string(), Label::Negative));
        self
    }

    pub fn build(self) -> Database {
        // Force the content fingerprint so built databases enter the
        // homomorphism memo cache without a lazy hashing hiccup later.
        self.db.fingerprint();
        self.db
    }

    /// Finish as a training database. Every entity must have been labeled
    /// via [`DbBuilder::positive`]/[`DbBuilder::negative`].
    pub fn training(self) -> TrainingDb {
        let mut labeling = Labeling::new();
        for (name, label) in &self.labels {
            let v = self.db.val_by_name(name).unwrap();
            labeling.set(v, *label);
        }
        self.db.fingerprint();
        TrainingDb::new(self.db, labeling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Label;

    #[test]
    fn builder_constructs_training_db() {
        let mut schema = Schema::entity_schema();
        schema.add_relation("R", 1);
        let t = DbBuilder::new(schema)
            .fact("R", &["a"])
            .positive("a")
            .negative("b")
            .training();
        let a = t.db.val_by_name("a").unwrap();
        let b = t.db.val_by_name("b").unwrap();
        assert_eq!(t.labeling.get(a), Label::Positive);
        assert_eq!(t.labeling.get(b), Label::Negative);
        assert_eq!(t.positives(), vec![a]);
        assert_eq!(t.negatives(), vec![b]);
    }

    #[test]
    #[should_panic(expected = "unlabeled entity")]
    fn unlabeled_entity_panics() {
        let schema = Schema::entity_schema();
        DbBuilder::new(schema).entity("a").training();
    }
}
