//! Isomorphisms and automorphism orbits of relational structures.
//!
//! §8 of the paper shows FO-separability is GI-complete: two entities of a
//! finite database are FO-indistinguishable iff some automorphism of the
//! database maps one to the other. This module supplies that oracle with a
//! mini-nauty design: iterated **color refinement** (1-WL adapted to
//! relational structures) for invariant pruning, then backtracking
//! **individualization** search for an explicit isomorphism.
//!
//! Exactness matters more than asymptotics here (GI is not known to be in
//! P); the search is exhaustive and the refinement is only a pruner.

use crate::database::Database;
use crate::ids::Val;
use std::collections::HashMap;

/// Stable colors of all elements under iterated refinement, starting from
/// the given seed colors (default seed 0). Elements with different colors
/// are in different automorphism orbits; equal colors are only a hint.
///
/// Refinement step: the new color of `v` is determined by its old color
/// plus the multiset of `(relation, positions of v, colors of all fact
/// arguments)` signatures over the facts containing `v`.
pub fn refine_colors(d: &Database, seeds: &[(Val, u64)]) -> Vec<u64> {
    let n = d.dom_size();
    let mut colors = vec![0u64; n];
    for &(v, c) in seeds {
        colors[v.index()] = c;
    }
    loop {
        // Signature of each element under the current coloring.
        let mut sigs: Vec<(Vec<u64>, usize)> = Vec::with_capacity(n);
        for v in d.dom() {
            let mut fact_sigs: Vec<Vec<u64>> = Vec::new();
            for &fi in d.facts_of_val(v) {
                let f = d.fact(fi);
                let mut s = vec![f.rel.0 as u64];
                for (pos, &a) in f.args.iter().enumerate() {
                    // Self-occurrence marker; `- 1` keeps it distinct from
                    // the u64::MAX separator used between fact signatures.
                    s.push(if a == v {
                        u64::MAX - 1 - pos as u64
                    } else {
                        colors[a.index()]
                    });
                }
                fact_sigs.push(s);
            }
            fact_sigs.sort();
            let mut sig = vec![colors[v.index()]];
            for fs in fact_sigs {
                sig.push(u64::MAX); // separator
                sig.extend(fs);
            }
            sigs.push((sig, v.index()));
        }
        // Canonicalize signatures to dense new colors.
        let mut canon: HashMap<&[u64], u64> = HashMap::new();
        let mut new_colors = vec![0u64; n];
        let mut next = 0u64;
        let mut sorted: Vec<&(Vec<u64>, usize)> = sigs.iter().collect();
        sorted.sort();
        for (sig, idx) in sorted {
            let c = *canon.entry(sig.as_slice()).or_insert_with(|| {
                next += 1;
                next
            });
            new_colors[*idx] = c;
        }
        if new_colors == colors {
            return colors;
        }
        colors = new_colors;
    }
}

/// Is there an isomorphism `d1 → d2` mapping `fixed` pairs accordingly?
///
/// Since the structures are finite with equal per-relation fact counts, a
/// bijective homomorphism is automatically an isomorphism; the search
/// enforces bijectivity and homomorphism together, pruned by refined
/// colors (computed with the fixed pairs individualized).
pub fn isomorphic(d1: &Database, d2: &Database, fixed: &[(Val, Val)]) -> bool {
    if d1.schema() != d2.schema() || d1.dom_size() != d2.dom_size() {
        return false;
    }
    for rel in d1.schema().rel_ids() {
        if d1.facts_of_rel(rel).len() != d2.facts_of_rel(rel).len() {
            return false;
        }
    }
    // Individualize fixed elements with matching seed colors.
    let seeds1: Vec<(Val, u64)> = fixed
        .iter()
        .enumerate()
        .map(|(i, &(a, _))| (a, i as u64 + 1))
        .collect();
    let seeds2: Vec<(Val, u64)> = fixed
        .iter()
        .enumerate()
        .map(|(i, &(_, b))| (b, i as u64 + 1))
        .collect();
    // Contradictory fixings (same source, different targets) are unsat.
    {
        let mut seen: HashMap<Val, Val> = HashMap::new();
        let mut seen_rev: HashMap<Val, Val> = HashMap::new();
        for &(a, b) in fixed {
            if *seen.entry(a).or_insert(b) != b || *seen_rev.entry(b).or_insert(a) != a {
                return false;
            }
        }
    }
    let c1 = refine_colors(d1, &seeds1);
    let c2 = refine_colors(d2, &seeds2);
    // Color histograms must agree.
    let mut h1: HashMap<u64, usize> = HashMap::new();
    let mut h2: HashMap<u64, usize> = HashMap::new();
    for &c in &c1 {
        *h1.entry(c).or_default() += 1;
    }
    for &c in &c2 {
        *h2.entry(c).or_default() += 1;
    }
    if h1 != h2 {
        return false;
    }

    let n = d1.dom_size();
    let mut assign: Vec<Option<Val>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];
    for &(a, b) in fixed {
        if let Some(prev) = assign[a.index()] {
            if prev != b {
                return false;
            }
            continue;
        }
        if used[b.index()] {
            return false;
        }
        assign[a.index()] = Some(b);
        used[b.index()] = true;
    }

    search(d1, d2, &c1, &c2, &mut assign, &mut used)
}

fn search(
    d1: &Database,
    d2: &Database,
    c1: &[u64],
    c2: &[u64],
    assign: &mut Vec<Option<Val>>,
    used: &mut Vec<bool>,
) -> bool {
    // Choose the unassigned element in the smallest color class.
    let mut best: Option<(usize, Val)> = None;
    for v in d1.dom() {
        if assign[v.index()].is_some() {
            continue;
        }
        let class_size = c2
            .iter()
            .enumerate()
            .filter(|&(j, &c)| c == c1[v.index()] && !used[j])
            .count();
        if class_size == 0 {
            return false;
        }
        if best.is_none_or(|(s, _)| class_size < s) {
            best = Some((class_size, v));
        }
    }
    let v = match best {
        None => return verify(d1, d2, assign),
        Some((_, v)) => v,
    };

    for w in d2.dom() {
        if used[w.index()] || c2[w.index()] != c1[v.index()] {
            continue;
        }
        if !locally_consistent(d1, d2, assign, v, w) {
            continue;
        }
        assign[v.index()] = Some(w);
        used[w.index()] = true;
        if search(d1, d2, c1, c2, assign, used) {
            return true;
        }
        assign[v.index()] = None;
        used[w.index()] = false;
    }
    false
}

/// Check all facts of `d1` touching `v` whose arguments are fully assigned
/// once `v ↦ w` is added: each must be a fact of `d2`. The converse (no
/// extra facts) is guaranteed at the end by fact-count equality + final
/// verification.
fn locally_consistent(
    d1: &Database,
    d2: &Database,
    assign: &[Option<Val>],
    v: Val,
    w: Val,
) -> bool {
    let image = |a: Val| -> Option<Val> {
        if a == v {
            Some(w)
        } else {
            assign[a.index()]
        }
    };
    for &fi in d1.facts_of_val(v) {
        let f = d1.fact(fi);
        let mut args = Vec::with_capacity(f.args.len());
        let mut complete = true;
        for &a in &f.args {
            match image(a) {
                Some(b) => args.push(b),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && !d2.has_fact(f.rel, &args) {
            return false;
        }
    }
    // Degree preservation is implied by color refinement; nothing more to
    // check locally.
    true
}

fn verify(d1: &Database, d2: &Database, assign: &[Option<Val>]) -> bool {
    d1.facts().iter().all(|f| {
        let args: Vec<Val> = f.args.iter().map(|&a| assign[a.index()].unwrap()).collect();
        d2.has_fact(f.rel, &args)
    })
}

/// Is there an automorphism of `d` mapping `a` to `b`? This is exactly
/// FO-indistinguishability of `a` and `b` over `d` (§8).
pub fn same_orbit(d: &Database, a: Val, b: Val) -> bool {
    a == b || isomorphic(d, d, &[(a, b)])
}

/// Partition the given elements into automorphism orbits.
pub fn orbits(d: &Database, elems: &[Val]) -> Vec<Vec<Val>> {
    let mut out: Vec<Vec<Val>> = Vec::new();
    for &e in elems {
        match out.iter_mut().find(|class| same_orbit(d, class[0], e)) {
            Some(class) => class.push(e),
            None => out.push(vec![e]),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::schema::Schema;

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn cycle_vertices_share_an_orbit() {
        let c4 = graph(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]);
        let a = c4.val_by_name("a").unwrap();
        let c = c4.val_by_name("c").unwrap();
        assert!(same_orbit(&c4, a, c));
    }

    #[test]
    fn path_endpoints_vs_middle() {
        let p3 = graph(&[("a", "b"), ("b", "c")]);
        let a = p3.val_by_name("a").unwrap();
        let b = p3.val_by_name("b").unwrap();
        let c = p3.val_by_name("c").unwrap();
        assert!(!same_orbit(&p3, a, b));
        assert!(!same_orbit(&p3, a, c)); // direction breaks the symmetry
        assert!(!same_orbit(&p3, b, c));
        // An undirected-style path (edges both ways) restores a<->c symmetry.
        let p3u = graph(&[("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")]);
        let a = p3u.val_by_name("a").unwrap();
        let c = p3u.val_by_name("c").unwrap();
        assert!(same_orbit(&p3u, a, c));
    }

    #[test]
    fn iso_distinguishes_cycle_lengths() {
        let c3a = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let c3b = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(isomorphic(&c3a, &c3b, &[]));
        let p3 = graph(&[("x", "y"), ("y", "z"), ("z", "w")]);
        assert!(!isomorphic(&c3a, &p3, &[]));
    }

    #[test]
    fn iso_respects_fixed_points() {
        let d1 = graph(&[("a", "b")]);
        let d2 = graph(&[("x", "y")]);
        let a = d1.val_by_name("a").unwrap();
        let b = d1.val_by_name("b").unwrap();
        let x = d2.val_by_name("x").unwrap();
        let y = d2.val_by_name("y").unwrap();
        assert!(isomorphic(&d1, &d2, &[(a, x)]));
        assert!(!isomorphic(&d1, &d2, &[(a, y)]));
        assert!(isomorphic(&d1, &d2, &[(a, x), (b, y)]));
        assert!(!isomorphic(&d1, &d2, &[(a, x), (b, x)]));
    }

    #[test]
    fn hom_equivalent_but_not_isomorphic() {
        // Two directed 3-cycles vs one: hom-equivalent structures that are
        // not isomorphic — the distinction FO sees but CQs do not.
        let one = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let two = graph(&[
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
            ("x", "y"),
            ("y", "z"),
            ("z", "x"),
        ]);
        assert!(!isomorphic(&one, &two, &[]));
        assert!(crate::hom::homomorphism_exists(&one, &two, &[]));
        assert!(crate::hom::homomorphism_exists(&two, &one, &[]));
    }

    #[test]
    fn orbits_partition() {
        // Star with two leaves plus an isolated loop vertex.
        let d = graph(&[("c", "l1"), ("c", "l2"), ("q", "q")]);
        let vals: Vec<Val> = d.dom().collect();
        let orbs = orbits(&d, &vals);
        // Orbits: {c}, {l1, l2}, {q}.
        assert_eq!(orbs.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = orbs.iter().map(|o| o.len()).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn refinement_separates_degrees() {
        let d = graph(&[("a", "b"), ("a", "c")]);
        let colors = refine_colors(&d, &[]);
        let a = d.val_by_name("a").unwrap();
        let b = d.val_by_name("b").unwrap();
        let c = d.val_by_name("c").unwrap();
        assert_ne!(colors[a.index()], colors[b.index()]);
        assert_eq!(colors[b.index()], colors[c.index()]);
    }
}
