//! Homomorphisms between databases: `(D, ā) → (D', b̄)` (§2).
//!
//! Deciding homomorphism existence is the classic NP-complete constraint
//! satisfaction problem. The solver here is a backtracking search with
//!
//! * **node consistency** at setup (a candidate image for `v` must occur at
//!   the right positions of the right relations),
//! * **minimum-remaining-values** variable ordering, and
//! * **forward checking** through per-fact support computation over the
//!   `(relation, position, value)` index of [`Database`].
//!
//! It is exact: `exists()` answers the NP question truthfully, never
//! heuristically. A brute-force cross-check lives in the test module and in
//! the property tests.

use crate::database::Database;
use crate::ids::Val;
use interrupt::{Interrupt, Stop};
use std::collections::HashMap;

pub mod cache;
pub mod par;
pub mod stats;

/// Per-search instrumentation returned by the `_counted` entry points so
/// callers holding their own counter sets (e.g. a per-engine cache) can
/// attribute work without reading the process-global [`stats`] module.
///
/// `solves` is 1 when a full backtracking search actually ran and 0 when
/// the query short-circuited before one started (contradictory fixes,
/// out-of-domain constraints, an empty candidate set at setup, or no
/// variables at all) — mirroring exactly which paths flush the global
/// counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchCounts {
    pub solves: u64,
    pub nodes: u64,
    pub wipeouts: u64,
    pub backtracks: u64,
}

/// A configured homomorphism search from one database to another.
///
/// "Variables" are the elements of `dom(from)` that occur in facts, plus
/// any elements constrained via [`HomSearch::fix`] (the distinguished
/// tuple `ā`). The mapping returned by [`HomSearch::find`] covers exactly
/// those elements.
pub struct HomSearch<'a> {
    from: &'a Database,
    to: &'a Database,
    fixed: HashMap<Val, Val>,
    /// Set when two contradictory `fix` calls arrive; forces "no".
    inconsistent: bool,
}

impl<'a> HomSearch<'a> {
    /// # Panics
    /// Panics if the two databases disagree on the schema.
    pub fn new(from: &'a Database, to: &'a Database) -> HomSearch<'a> {
        assert_eq!(
            from.schema(),
            to.schema(),
            "homomorphism requires a common schema"
        );
        HomSearch {
            from,
            to,
            fixed: HashMap::new(),
            inconsistent: false,
        }
    }

    /// Require `h(a) = b` (one component of `ā → b̄`). Contradictory
    /// requirements make the search report non-existence, mirroring the
    /// paper's convention that `ā → b̄` must itself be consistent.
    pub fn fix(mut self, a: Val, b: Val) -> HomSearch<'a> {
        match self.fixed.insert(a, b) {
            Some(prev) if prev != b => self.inconsistent = true,
            _ => {}
        }
        self
    }

    pub fn exists(&self) -> bool {
        // Stop at the first solution; `solve` returns whether one was found.
        self.solve(&mut |_| true)
    }

    /// Like [`HomSearch::exists`], but also returns the search-effort
    /// counters of this query so the caller can do per-instance
    /// accounting. The process-global [`stats`] module is still updated,
    /// exactly as for `exists`.
    pub fn exists_counted(&self) -> (bool, SearchCounts) {
        let (found, counts) = self.solve_counted_int(&mut |_| true, None);
        (found.expect("uninterruptible search cannot stop"), counts)
    }

    /// Interruptible [`HomSearch::exists_counted`]: the backtracking loop
    /// checks `intr` at every node expansion and unwinds with
    /// [`Stop`] as soon as it trips. The effort counters cover the work
    /// done up to the stop (and are flushed to the global [`stats`]
    /// either way), so partial effort stays attributable.
    pub fn exists_counted_int(&self, intr: &Interrupt) -> (Result<bool, Stop>, SearchCounts) {
        self.solve_counted_int(&mut |_| true, Some(intr))
    }

    /// Find one homomorphism as a map over the constrained elements.
    pub fn find(&self) -> Option<HashMap<Val, Val>> {
        let mut found = None;
        self.solve(&mut |h| {
            found = Some(h);
            true
        });
        found
    }

    /// Count homomorphisms, stopping at `limit`. Exposed for tests and the
    /// enumeration-hungry parts of the benchmark harness.
    pub fn count_up_to(&self, limit: usize) -> usize {
        if limit == 0 {
            // The stop-callback below fires only *after* counting a
            // solution, so without this guard a zero limit would count 1.
            return 0;
        }
        let mut n = 0usize;
        self.solve(&mut |_| {
            n += 1;
            n >= limit
        });
        n
    }

    /// Core search. `on_solution` receives each solution; returning `true`
    /// stops the search. Returns whether any solution was found.
    fn solve(&self, on_solution: &mut dyn FnMut(HashMap<Val, Val>) -> bool) -> bool {
        let (found, _) = self.solve_counted_int(on_solution, None);
        found.expect("uninterruptible search cannot stop")
    }

    /// [`HomSearch::solve`] plus the per-query effort counters and an
    /// optional interrupt handle (`None` = run to completion). Early
    /// returns (before a search state is built) report zeroed counts and,
    /// matching the historical behaviour, do not flush the global stats.
    /// An interrupted search flushes the partial counters and reports
    /// `Err(Stop)` instead of a verdict.
    fn solve_counted_int(
        &self,
        on_solution: &mut dyn FnMut(HashMap<Val, Val>) -> bool,
        intr: Option<&Interrupt>,
    ) -> (Result<bool, Stop>, SearchCounts) {
        let counts = SearchCounts::default();
        if let Some(i) = intr {
            if let Err(stop) = i.check() {
                return (Err(stop), counts);
            }
        }
        if self.inconsistent {
            return (Ok(false), counts);
        }
        // Collect variables: active elements plus fixed ones.
        let mut is_var = vec![false; self.from.dom_size()];
        for v in self.from.dom() {
            if !self.from.facts_of_val(v).is_empty() {
                is_var[v.index()] = true;
            }
        }
        for &a in self.fixed.keys() {
            if a.index() >= self.from.dom_size() {
                // A constraint on an element outside dom(from) cannot be
                // satisfied by any mapping — mirror the out-of-domain
                // target convention below rather than indexing OOB.
                return (Ok(false), counts);
            }
            is_var[a.index()] = true;
        }
        let vars: Vec<Val> = self.from.dom().filter(|v| is_var[v.index()]).collect();
        if vars.is_empty() {
            // The empty homomorphism: vacuously valid even into an empty DB.
            return (Ok(on_solution(HashMap::new())), counts);
        }

        // Initial candidate sets with node consistency.
        let to_dom: Vec<Val> = self.to.dom().collect();
        let mut cand: Vec<Vec<Val>> = vec![Vec::new(); self.from.dom_size()];
        for &v in &vars {
            if let Some(&b) = self.fixed.get(&v) {
                if b.index() >= self.to.dom_size() {
                    return (Ok(false), counts);
                }
                cand[v.index()] = vec![b];
                continue;
            }
            let mut cs = to_dom.clone();
            // Every (rel, pos) occurrence of v must be supportable.
            let mut occurrences: Vec<(crate::ids::RelId, u32)> = Vec::new();
            for &fi in self.from.facts_of_val(v) {
                let f = self.from.fact(fi);
                for (pos, &a) in f.args.iter().enumerate() {
                    if a == v {
                        occurrences.push((f.rel, pos as u32));
                    }
                }
            }
            occurrences.sort_unstable();
            occurrences.dedup();
            for (rel, pos) in occurrences {
                cs.retain(|&d| !self.to.facts_with(rel, pos, d).is_empty());
                if cs.is_empty() {
                    return (Ok(false), counts);
                }
            }
            cand[v.index()] = cs;
        }

        let mut assignment: Vec<Option<Val>> = vec![None; self.from.dom_size()];
        let mut state = SearchState {
            from: self.from,
            to: self.to,
            vars,
            cand,
            assignment: &mut assignment,
            nodes: 0,
            wipeouts: 0,
            backtracks: 0,
        };
        let found = state.backtrack(on_solution, intr);
        let counts = SearchCounts {
            solves: 1,
            nodes: state.nodes,
            wipeouts: state.wipeouts,
            backtracks: state.backtracks,
        };
        // Partial effort is flushed even on an interrupted search, so the
        // caller's partial-stats report covers the work actually done.
        stats::record_search(state.nodes, state.wipeouts, state.backtracks);
        (found, counts)
    }
}

struct SearchState<'a, 'b> {
    from: &'a Database,
    to: &'a Database,
    vars: Vec<Val>,
    cand: Vec<Vec<Val>>,
    assignment: &'b mut Vec<Option<Val>>,
    /// Instrumentation (flushed into [`stats`] once per solve).
    nodes: u64,
    wipeouts: u64,
    backtracks: u64,
}

impl SearchState<'_, '_> {
    /// Iterative backtracking search (an explicit frame stack — recursion
    /// depth equals the variable count, which can reach tens of thousands
    /// on product databases, far past the thread stack).
    ///
    /// When `intr` is supplied it is checked once per node expansion —
    /// the unit of search progress — so an interrupt is observed within
    /// one forward-check of tripping, regardless of how deep or wide the
    /// search has grown.
    fn backtrack(
        &mut self,
        on_solution: &mut dyn FnMut(HashMap<Val, Val>) -> bool,
        intr: Option<&Interrupt>,
    ) -> Result<bool, Stop> {
        struct Frame {
            var: Val,
            options: Vec<Val>,
            next_option: usize,
            trail: Vec<(Val, Vec<Val>)>,
        }

        let mut stack: Vec<Frame> = Vec::new();
        loop {
            // Descend: pick the next variable (MRV) and open a frame.
            let next = self
                .vars
                .iter()
                .copied()
                .filter(|v| self.assignment[v.index()].is_none())
                .min_by_key(|v| self.cand[v.index()].len());
            match next {
                None => {
                    let h: HashMap<Val, Val> = self
                        .vars
                        .iter()
                        .map(|&u| (u, self.assignment[u.index()].unwrap()))
                        .collect();
                    if on_solution(h) {
                        return Ok(true);
                    }
                    // Treat as a dead end: fall through to backtracking.
                }
                Some(v) => {
                    stack.push(Frame {
                        var: v,
                        options: self.cand[v.index()].clone(),
                        next_option: 0,
                        trail: Vec::new(),
                    });
                }
            }

            // Advance the top frame (undoing its previous attempt first);
            // pop exhausted frames.
            'advance: loop {
                let frame = match stack.last_mut() {
                    None => return Ok(false),
                    Some(f) => f,
                };
                // Undo the previous attempt of this frame, if any.
                if self.assignment[frame.var.index()].is_some() {
                    for (u, old) in frame.trail.drain(..).rev() {
                        self.cand[u.index()] = old;
                    }
                    self.assignment[frame.var.index()] = None;
                }
                if frame.next_option >= frame.options.len() {
                    stack.pop();
                    self.backtracks += 1;
                    continue 'advance;
                }
                let d = frame.options[frame.next_option];
                frame.next_option += 1;
                let var = frame.var;
                self.assignment[var.index()] = Some(d);
                self.nodes += 1;
                if let Some(i) = intr {
                    i.check()?;
                }
                // Borrow dance: forward_check needs &mut self.
                let mut trail = Vec::new();
                let ok = self.forward_check(var, &mut trail);
                let frame = stack.last_mut().unwrap();
                frame.trail = trail;
                if ok {
                    break 'advance; // descend deeper
                }
                self.wipeouts += 1;
                // else: loop and try the next option of this frame.
            }
        }
    }

    /// Restrict candidates of unassigned variables sharing a fact with `v`.
    /// Returns `false` on a wipe-out.
    fn forward_check(&mut self, v: Val, trail: &mut Vec<(Val, Vec<Val>)>) -> bool {
        for &fi in self.from.facts_of_val(v) {
            let f = self.from.fact(fi).clone();
            // Compute the support: to-facts matching the assigned pattern.
            // Seed from the most selective assigned position's index.
            let mut seed: Option<&[usize]> = None;
            for (pos, &a) in f.args.iter().enumerate() {
                if let Some(d) = self.assignment[a.index()] {
                    let idxs = self.to.facts_with(f.rel, pos as u32, d);
                    if seed.is_none_or(|s| idxs.len() < s.len()) {
                        seed = Some(idxs);
                    }
                }
            }
            let seed = seed.expect("v is assigned and occurs in f");
            let mut support: Vec<usize> = Vec::with_capacity(seed.len());
            'fact: for &ti in seed {
                let t = self.to.fact(ti);
                for (pos, &a) in f.args.iter().enumerate() {
                    if let Some(d) = self.assignment[a.index()] {
                        if t.args[pos] != d {
                            continue 'fact;
                        }
                    }
                }
                support.push(ti);
            }
            if support.is_empty() {
                return false;
            }
            // Shrink candidates of unassigned variables in f.
            for (pos, &a) in f.args.iter().enumerate() {
                if self.assignment[a.index()].is_some() {
                    continue;
                }
                let allowed: Vec<Val> = {
                    let mut s: Vec<Val> = support
                        .iter()
                        .map(|&ti| self.to.fact(ti).args[pos])
                        .collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                };
                let old = &self.cand[a.index()];
                let shrunk: Vec<Val> = old
                    .iter()
                    .copied()
                    .filter(|d| allowed.binary_search(d).is_ok())
                    .collect();
                if shrunk.len() != old.len() {
                    trail.push((a, std::mem::replace(&mut self.cand[a.index()], shrunk)));
                    if self.cand[a.index()].is_empty() {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Does a homomorphism `from → to` exist extending the given fixed pairs?
pub fn homomorphism_exists(from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
    fixed
        .iter()
        .fold(HomSearch::new(from, to), |s, &(a, b)| s.fix(a, b))
        .exists()
}

/// [`homomorphism_exists`] plus this query's [`SearchCounts`], for callers
/// doing per-instance accounting (the memo caches use this on their miss
/// paths). Global stats are still flushed exactly as for the uncounted
/// form.
pub fn homomorphism_exists_counted(
    from: &Database,
    to: &Database,
    fixed: &[(Val, Val)],
) -> (bool, SearchCounts) {
    fixed
        .iter()
        .fold(HomSearch::new(from, to), |s, &(a, b)| s.fix(a, b))
        .exists_counted()
}

/// Interruptible [`homomorphism_exists_counted`]: the backtracking search
/// observes `intr` at every node expansion. The counts always report the
/// effort actually spent, even when the verdict is `Err(Stop)`.
pub fn homomorphism_exists_counted_int(
    from: &Database,
    to: &Database,
    fixed: &[(Val, Val)],
    intr: &Interrupt,
) -> (Result<bool, Stop>, SearchCounts) {
    fixed
        .iter()
        .fold(HomSearch::new(from, to), |s, &(a, b)| s.fix(a, b))
        .exists_counted_int(intr)
}

/// Find a homomorphism `from → to` extending the given fixed pairs.
pub fn find_homomorphism(
    from: &Database,
    to: &Database,
    fixed: &[(Val, Val)],
) -> Option<HashMap<Val, Val>> {
    fixed
        .iter()
        .fold(HomSearch::new(from, to), |s, &(a, b)| s.fix(a, b))
        .find()
}

/// Are `(D, a)` and `(D', b)` homomorphically equivalent as pointed
/// databases? This is CQ-indistinguishability of `a` and `b` ([22]; used by
/// the CQ-Sep baseline and §6.2).
pub fn hom_equivalent(d: &Database, a: Val, d2: &Database, b: Val) -> bool {
    homomorphism_exists(d, d2, &[(a, b)]) && homomorphism_exists(d2, d, &[(b, a)])
}

/// Exhaustive homomorphism check for testing: tries all `|dom(to)|^n`
/// assignments of the active domain. Exponential; only for tiny inputs.
pub fn brute_force_exists(from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
    let mut fixed_map: HashMap<Val, Val> = HashMap::new();
    for &(a, b) in fixed {
        // Same out-of-domain convention as the solver: constraints that
        // mention elements outside either domain are unsatisfiable.
        if a.index() >= from.dom_size() || b.index() >= to.dom_size() {
            return false;
        }
        if let Some(prev) = fixed_map.insert(a, b) {
            if prev != b {
                return false;
            }
        }
    }
    let mut vars: Vec<Val> = from
        .dom()
        .filter(|&v| !from.facts_of_val(v).is_empty() || fixed_map.contains_key(&v))
        .collect();
    vars.sort_unstable();
    let to_dom: Vec<Val> = to.dom().collect();
    if vars.is_empty() {
        return true;
    }
    if to_dom.is_empty() {
        return false;
    }

    fn rec(
        from: &Database,
        to: &Database,
        vars: &[Val],
        to_dom: &[Val],
        fixed: &HashMap<Val, Val>,
        assign: &mut HashMap<Val, Val>,
        i: usize,
    ) -> bool {
        if i == vars.len() {
            return from.facts().iter().all(|f| {
                let args: Vec<Val> = f.args.iter().map(|a| assign[a]).collect();
                to.has_fact(f.rel, &args)
            });
        }
        let v = vars[i];
        let choices: Vec<Val> = match fixed.get(&v) {
            Some(&b) => vec![b],
            None => to_dom.to_vec(),
        };
        for d in choices {
            assign.insert(v, d);
            if rec(from, to, vars, to_dom, fixed, assign, i + 1) {
                return true;
            }
        }
        assign.remove(&v);
        false
    }

    let mut assign = HashMap::new();
    rec(from, to, &vars, &to_dom, &fixed_map, &mut assign, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::schema::Schema;

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn path_maps_into_longer_path() {
        let p2 = graph(&[("a", "b"), ("b", "c")]);
        let p3 = graph(&[("x", "y"), ("y", "z"), ("z", "w")]);
        assert!(homomorphism_exists(&p2, &p3, &[]));
        // A longer path maps into a shorter one only by folding; directed
        // paths do not fold, so there is no hom p3 -> p2... actually there
        // is none because p3 needs 3 consecutive edges and p2's longest
        // directed walk without repetition constraints allows reuse:
        // a->b->c has no outgoing edge from c, so no walk of length 3.
        assert!(!homomorphism_exists(&p3, &p2, &[]));
    }

    #[test]
    fn cycle_vs_path() {
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let p5 = graph(&[("1", "2"), ("2", "3"), ("3", "4"), ("4", "5"), ("5", "6")]);
        // Path maps into the cycle (wrap around); cycle does not map into
        // the path (no directed cycles there).
        assert!(homomorphism_exists(&p5, &c3, &[]));
        assert!(!homomorphism_exists(&c3, &p5, &[]));
    }

    #[test]
    fn fixed_points_constrain() {
        let p1 = graph(&[("a", "b")]);
        let p2 = graph(&[("x", "y"), ("y", "z")]);
        let a = p1.val_by_name("a").unwrap();
        let b = p1.val_by_name("b").unwrap();
        let x = p2.val_by_name("x").unwrap();
        let y = p2.val_by_name("y").unwrap();
        let z = p2.val_by_name("z").unwrap();
        assert!(homomorphism_exists(&p1, &p2, &[(a, x)]));
        assert!(homomorphism_exists(&p1, &p2, &[(a, y)]));
        assert!(!homomorphism_exists(&p1, &p2, &[(a, z)]));
        assert!(homomorphism_exists(&p1, &p2, &[(a, x), (b, y)]));
        assert!(!homomorphism_exists(&p1, &p2, &[(a, x), (b, z)]));
        // Contradictory fixing of the same source element.
        assert!(!homomorphism_exists(&p1, &p2, &[(a, x), (a, y)]));
    }

    #[test]
    fn find_returns_valid_mapping() {
        let from = graph(&[("a", "b"), ("b", "c")]);
        let to = graph(&[("u", "v"), ("v", "u")]);
        let h = find_homomorphism(&from, &to, &[]).expect("hom into 2-cycle");
        for f in from.facts() {
            let args: Vec<Val> = f.args.iter().map(|a| h[a]).collect();
            assert!(to.has_fact(f.rel, &args));
        }
    }

    #[test]
    fn count_homs_of_edge_into_triangle() {
        let e = graph(&[("a", "b")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        let s = HomSearch::new(&e, &c3);
        assert_eq!(s.count_up_to(100), 3);
    }

    #[test]
    fn count_up_to_zero_counts_nothing() {
        // Regression: the stop-callback fires after counting, so a zero
        // limit used to report 1 even though nothing should be counted.
        let e = graph(&[("a", "b")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert_eq!(HomSearch::new(&e, &c3).count_up_to(0), 0);
        assert_eq!(HomSearch::new(&e, &c3).count_up_to(1), 1);
        // Even when no homomorphism exists at all.
        let empty = graph(&[]);
        assert_eq!(HomSearch::new(&e, &empty).count_up_to(0), 0);
    }

    #[test]
    fn fixing_out_of_domain_source_is_no_hom() {
        // Regression: fixing a source element outside dom(from) used to
        // panic with an out-of-bounds index instead of answering "no",
        // which is the convention already used for out-of-domain targets.
        let small = graph(&[("a", "b")]);
        let big = graph(&[("x", "y"), ("y", "z"), ("z", "w")]);
        let phantom = Val(small.dom_size() as u32);
        let x = big.val_by_name("x").unwrap();
        assert!(!homomorphism_exists(&small, &big, &[(phantom, x)]));
        assert!(!brute_force_exists(&small, &big, &[(phantom, x)]));
        // The out-of-domain *target* convention it mirrors.
        let a = small.val_by_name("a").unwrap();
        let phantom_target = Val(big.dom_size() as u32);
        assert!(!homomorphism_exists(&small, &big, &[(a, phantom_target)]));
        assert!(!brute_force_exists(&small, &big, &[(a, phantom_target)]));
    }

    #[test]
    fn hom_equivalence_on_cycles() {
        // Elements of one cycle are all hom-equivalent to each other.
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let a = c3.val_by_name("a").unwrap();
        let b = c3.val_by_name("b").unwrap();
        assert!(hom_equivalent(&c3, a, &c3, b));
        // A path start is not hom-equivalent to a path end.
        let p = graph(&[("s", "t")]);
        let s = p.val_by_name("s").unwrap();
        let t = p.val_by_name("t").unwrap();
        assert!(!hom_equivalent(&p, s, &p, t));
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        // Cross-check solver vs brute force over a set of small digraphs.
        let shapes: Vec<Vec<(&str, &str)>> = vec![
            vec![("a", "a")],
            vec![("a", "b")],
            vec![("a", "b"), ("b", "a")],
            vec![("a", "b"), ("b", "c")],
            vec![("a", "b"), ("b", "c"), ("c", "a")],
            vec![("a", "b"), ("a", "c"), ("b", "c")],
            vec![("a", "b"), ("c", "b"), ("c", "d")],
        ];
        let dbs: Vec<Database> = shapes.iter().map(|s| graph(s)).collect();
        for from in &dbs {
            for to in &dbs {
                assert_eq!(
                    homomorphism_exists(from, to, &[]),
                    brute_force_exists(from, to, &[]),
                    "from={from:?} to={to:?}"
                );
            }
        }
    }

    #[test]
    fn empty_database_edge_cases() {
        let empty = graph(&[]);
        let some = graph(&[("a", "b")]);
        assert!(homomorphism_exists(&empty, &some, &[]));
        assert!(homomorphism_exists(&empty, &empty, &[]));
        assert!(!homomorphism_exists(&some, &empty, &[]));
    }

    #[test]
    fn higher_arity_relations() {
        let mut s = Schema::entity_schema();
        s.add_relation("T", 3);
        let from = DbBuilder::new(s.clone())
            .fact("T", &["x", "y", "x"])
            .build();
        let to_good = DbBuilder::new(s.clone())
            .fact("T", &["1", "2", "1"])
            .build();
        let to_bad = DbBuilder::new(s).fact("T", &["1", "2", "3"]).build();
        assert!(homomorphism_exists(&from, &to_good, &[]));
        // x occurs at positions 0 and 2; the only to-fact has different
        // values there, so the repeated-variable pattern cannot match.
        assert!(!homomorphism_exists(&from, &to_bad, &[]));
    }
}
