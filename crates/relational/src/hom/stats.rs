//! Global instrumentation counters for the homomorphism engine.
//!
//! The backtracking solver ([`crate::hom::HomSearch`]) counts nodes
//! expanded, forward-check wipe-outs, and backtracks locally during each
//! solve and flushes them here once per call; the memo cache
//! ([`crate::hom::cache`]) contributes hit/miss counts. [`HomStats`]
//! snapshots the lot, so a caller (the CLI `--stats` flag, the bench
//! harness) can difference two snapshots around a region of interest.
//!
//! Counters are process-global atomics: cheap to bump from the parallel
//! driver's worker threads and aggregated without any locking.

use std::sync::atomic::{AtomicU64, Ordering};

static NODES_EXPANDED: AtomicU64 = AtomicU64::new(0);
static FORWARD_CHECK_WIPEOUTS: AtomicU64 = AtomicU64::new(0);
static BACKTRACKS: AtomicU64 = AtomicU64::new(0);
static SOLVES: AtomicU64 = AtomicU64::new(0);

/// Flush one solve's worth of search counters (called by the solver).
pub(crate) fn record_search(nodes: u64, wipeouts: u64, backtracks: u64) {
    NODES_EXPANDED.fetch_add(nodes, Ordering::Relaxed);
    FORWARD_CHECK_WIPEOUTS.fetch_add(wipeouts, Ordering::Relaxed);
    BACKTRACKS.fetch_add(backtracks, Ordering::Relaxed);
    SOLVES.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time aggregate of the engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HomStats {
    /// Backtracking searches run to completion (cache misses included,
    /// cache hits excluded — a hit runs no search).
    pub solves: u64,
    /// Variable-assignment attempts across all searches.
    pub nodes_expanded: u64,
    /// Assignments rejected because forward checking wiped out a
    /// candidate set.
    pub forward_check_wipeouts: u64,
    /// Exhausted search frames popped.
    pub backtracks: u64,
    /// Memo-cache hits (answers served without a search).
    pub cache_hits: u64,
    /// Memo-cache misses (answers computed and then memoized).
    pub cache_misses: u64,
}

impl HomStats {
    /// Read all counters now.
    pub fn snapshot() -> HomStats {
        let cache = super::cache::global();
        HomStats {
            solves: SOLVES.load(Ordering::Relaxed),
            nodes_expanded: NODES_EXPANDED.load(Ordering::Relaxed),
            forward_check_wipeouts: FORWARD_CHECK_WIPEOUTS.load(Ordering::Relaxed),
            backtracks: BACKTRACKS.load(Ordering::Relaxed),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
        }
    }

    /// Counter deltas since an earlier snapshot (saturating, so a
    /// concurrent `reset` cannot produce bogus huge values).
    pub fn since(&self, earlier: &HomStats) -> HomStats {
        HomStats {
            solves: self.solves.saturating_sub(earlier.solves),
            nodes_expanded: self.nodes_expanded.saturating_sub(earlier.nodes_expanded),
            forward_check_wipeouts: self
                .forward_check_wipeouts
                .saturating_sub(earlier.forward_check_wipeouts),
            backtracks: self.backtracks.saturating_sub(earlier.backtracks),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
        }
    }

    /// Human-readable multi-line report (used by the CLI's `--stats`).
    pub fn report(&self) -> String {
        let lookups = self.cache_hits + self.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64 * 100.0
        };
        format!(
            "hom engine stats:\n\
             \x20 searches run:        {}\n\
             \x20 nodes expanded:      {}\n\
             \x20 fwd-check wipeouts:  {}\n\
             \x20 backtracks:          {}\n\
             \x20 cache hits:          {}\n\
             \x20 cache misses:        {}\n\
             \x20 cache hit rate:      {hit_rate:.1}%",
            self.solves,
            self.nodes_expanded,
            self.forward_check_wipeouts,
            self.backtracks,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::hom::homomorphism_exists;
    use crate::schema::Schema;

    #[test]
    fn searches_bump_the_counters() {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let c3 = DbBuilder::new(s.clone())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .build();
        let p3 = DbBuilder::new(s)
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "w"])
            .build();
        let before = HomStats::snapshot();
        // An unsatisfiable instance must backtrack at least once.
        assert!(!homomorphism_exists(&c3, &p3, &[]));
        let delta = HomStats::snapshot().since(&before);
        assert!(delta.solves >= 1, "delta={delta:?}");
        assert!(delta.nodes_expanded >= 1, "delta={delta:?}");
        assert!(delta.backtracks >= 1, "delta={delta:?}");
    }

    #[test]
    fn report_mentions_every_counter() {
        let st = HomStats {
            solves: 1,
            nodes_expanded: 2,
            forward_check_wipeouts: 3,
            backtracks: 4,
            cache_hits: 5,
            cache_misses: 5,
        };
        let r = st.report();
        for needle in [
            "searches",
            "nodes",
            "wipeouts",
            "backtracks",
            "hits",
            "misses",
            "50.0%",
        ] {
            assert!(r.contains(needle), "missing {needle:?} in {r}");
        }
    }
}
