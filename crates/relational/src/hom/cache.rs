//! A sharded, concurrent, size-capped memo table for
//! homomorphism-existence queries.
//!
//! The separability pipelines ask the same NP-hard question —
//! "is there a hom `(D, a) → (D', b)`?" — over and over: `cq_chain`
//! re-checks pairs that `cq_separable` already decided, classification
//! repeats training-time queries, and preorder matrices touch each pair
//! from both sides. Memoizing by *content* makes all of that free.
//!
//! Keys are `(from.fingerprint(), to.fingerprint(), sorted fixed pairs)`;
//! the fingerprint (see [`Database::fingerprint`]) is a structural hash
//! computed once per database, so equal-content databases share entries
//! even across clones. The table is split into [`SHARDS`] independently
//! locked shards so the parallel driver's worker threads rarely contend,
//! and answers are computed *outside* the shard lock — an expensive search
//! never blocks unrelated lookups (two threads may race to compute the
//! same key; both get the same answer and the second insert is a no-op).
//!
//! # Eviction
//!
//! Long-running serving workloads must not grow the table without bound,
//! so each shard keeps two *generations* of entries. Inserts go to the
//! current generation; when it fills, it becomes the previous generation
//! and a fresh current one starts (dropping the old previous generation
//! wholesale). Hits in the previous generation promote the entry back
//! into the current one, so the hot working set survives rotations while
//! cold entries age out after at most two of them — an O(1)-overhead
//! approximation of LRU with no per-entry bookkeeping. Evicted answers
//! are simply recomputed (and re-memoized) on the next query; eviction
//! can never change an answer.

use super::stats::HomStats;
use super::{homomorphism_exists_counted, homomorphism_exists_counted_int, SearchCounts};
use crate::database::Database;
use crate::delta::{Containment, Lineage};
use crate::ids::Val;
use interrupt::{Interrupt, Stop};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shard count; a small power of two comfortably above typical worker
/// counts so lock contention stays negligible.
const SHARDS: usize = 16;

/// Default total entry capacity of a cache (split across shards; the
/// two-generation scheme holds at most ~2× this many entries).
pub const DEFAULT_CAPACITY: usize = 1 << 20;

type Key = (u128, u128, Vec<(Val, Val)>);

/// One shard's two generations of memoized answers.
#[derive(Default)]
struct Generations {
    cur: HashMap<Key, bool>,
    prev: HashMap<Key, bool>,
}

impl Generations {
    /// Insert into the current generation, rotating first when full.
    /// `cap` is the per-shard current-generation capacity.
    fn insert(&mut self, key: Key, ans: bool, cap: usize) {
        if self.cur.len() >= cap && !self.cur.contains_key(&key) {
            self.prev = std::mem::take(&mut self.cur);
        }
        self.cur.insert(key, ans);
    }
}

/// The memo table. Most callers use the process-wide [`global`] instance
/// via [`exists_cached`]; independent instances exist for tests and for
/// callers that want isolated lifetimes or capacities.
pub struct HomCache {
    shards: Vec<Mutex<Generations>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    // Per-cache search-effort counters, bumped only by searches this
    // cache itself ran (its miss and uncached paths). Together with
    // hits/misses these make a cache a self-contained stats domain, so
    // an isolated `Engine` can attribute work without touching the
    // process-global `stats` module (which the solvers still flush).
    searches: AtomicU64,
    nodes: AtomicU64,
    wipeouts: AtomicU64,
    backtracks: AtomicU64,
    /// Entries imported from a persisted table (see `import_entry`).
    restored: AtomicU64,
    /// Answers served by delta subsumption instead of a fresh search
    /// (see [`HomCache::exists_sub`]); counted as neither hit nor miss.
    sub_hits: AtomicU64,
}

impl HomCache {
    pub fn new() -> HomCache {
        HomCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding roughly `capacity` entries (at most ~2× across the
    /// two generations) before old entries start aging out.
    pub fn with_capacity(capacity: usize) -> HomCache {
        HomCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Generations::default()))
                .collect(),
            per_shard_cap: (capacity / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            searches: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            wipeouts: AtomicU64::new(0),
            backtracks: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            sub_hits: AtomicU64::new(0),
        }
    }

    fn note_search(&self, c: &SearchCounts) {
        self.searches.fetch_add(c.solves, Ordering::Relaxed);
        self.nodes.fetch_add(c.nodes, Ordering::Relaxed);
        self.wipeouts.fetch_add(c.wipeouts, Ordering::Relaxed);
        self.backtracks.fetch_add(c.backtracks, Ordering::Relaxed);
    }

    /// Normalize the fixed pairs into key form: sorted, deduplicated;
    /// `None` means contradictory constraints (two targets for one
    /// source) — a guaranteed `false`, not worth a table entry.
    fn normalize(from: &Database, to: &Database, fixed: &[(Val, Val)]) -> Option<Key> {
        let mut norm: Vec<(Val, Val)> = fixed.to_vec();
        norm.sort_unstable();
        norm.dedup();
        if norm.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
        Some((from.fingerprint(), to.fingerprint(), norm))
    }

    /// Exact-key probe with previous-generation promotion; counts a hit.
    fn probe_exact(&self, key: &Key) -> Option<bool> {
        let shard = &self.shards[Self::shard_of(key)];
        let mut g = shard.lock().unwrap();
        if let Some(&ans) = g.cur.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(ans);
        }
        if let Some(ans) = g.prev.remove(key) {
            // Promote: a previous-generation hit rejoins the current
            // working set so rotation keeps what is actually used.
            g.insert(key.clone(), ans, self.per_shard_cap);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(ans);
        }
        None
    }

    /// Read-only probe of either generation — no promotion, no counters.
    /// This is what subsumption uses to look at *ancestor* keys it will
    /// never own.
    fn peek(&self, key: &Key) -> Option<bool> {
        let g = self.shards[Self::shard_of(key)].lock().unwrap();
        g.cur.get(key).or_else(|| g.prev.get(key)).copied()
    }

    fn store(&self, key: Key, ans: bool) {
        let shard = &self.shards[Self::shard_of(&key)];
        shard.lock().unwrap().insert(key, ans, self.per_shard_cap);
    }

    /// Try to answer `key` from entries cached for lineage *ancestors*
    /// of its databases. Hom existence is monotone in the target and
    /// antitone in the source, so (writing `A` for the ancestor content
    /// and `⊆` for an insert-only edit chain):
    ///
    /// * target side: `C → A` and `A ⊆ to`  ⟹  `C → to` (compose with
    ///   the inclusion); `C ↛ A` and `A ⊇ to` ⟹ `C ↛ to` (a hom into
    ///   the sub-database would also be one into `A`);
    /// * source side: `A → to` and `A ⊇ from` ⟹ `from → to` (restrict
    ///   the hom); `A ↛ to` and `A ⊆ from` ⟹ `from ↛ to`.
    ///
    /// Fixed pairs carry over verbatim: `Val`s are append-only interned
    /// indices, so an element means the same thing in every database on
    /// an edit chain, and the restricted/composed hom above still maps
    /// each fixed source to its fixed target.
    fn subsumed_via(&self, key: &Key, lineage: &Lineage) -> Option<bool> {
        for (anc, cont) in lineage.ancestors(key.1) {
            if let Some(ans) = self.peek(&(key.0, anc, key.2.clone())) {
                match cont {
                    Containment::Subset if ans => return Some(true),
                    Containment::Superset if !ans => return Some(false),
                    _ => {}
                }
            }
        }
        for (anc, cont) in lineage.ancestors(key.0) {
            if let Some(ans) = self.peek(&(anc, key.1, key.2.clone())) {
                match cont {
                    Containment::Superset if ans => return Some(true),
                    Containment::Subset if !ans => return Some(false),
                    _ => {}
                }
            }
        }
        None
    }

    /// Memoized [`homomorphism_exists`]: does a hom `from → to` extending
    /// `fixed` exist?
    ///
    /// The fixed pairs are normalized (sorted, deduplicated) before
    /// keying, so permutations and repetitions of the same constraints
    /// share one entry. Contradictory constraints short-circuit to
    /// `false` without occupying cache space.
    pub fn exists(&self, from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
        self.exists_sub(from, to, fixed, None)
    }

    /// [`HomCache::exists`] with delta subsumption: on an exact-key miss,
    /// entries cached for lineage ancestors of `from`/`to` are consulted
    /// under the monotone rules of `subsumed_via` before falling back to
    /// a fresh search. A subsumption-served answer is promoted to an
    /// exact entry (so the next query is a plain hit) and counts only in
    /// [`HomCache::subsumption_hits`].
    pub fn exists_sub(
        &self,
        from: &Database,
        to: &Database,
        fixed: &[(Val, Val)],
        lineage: Option<&Lineage>,
    ) -> bool {
        let Some(key) = Self::normalize(from, to, fixed) else {
            return false;
        };
        if let Some(ans) = self.probe_exact(&key) {
            return ans;
        }
        if let Some(ans) = self.try_subsume(&key, lineage) {
            return ans;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Search with the lock released; the solve can be exponential and
        // must not serialize unrelated lookups on this shard.
        let (ans, counts) = homomorphism_exists_counted(from, to, &key.2);
        self.note_search(&counts);
        self.store(key, ans);
        ans
    }

    fn try_subsume(&self, key: &Key, lineage: Option<&Lineage>) -> Option<bool> {
        let lineage = lineage.filter(|l| !l.no_edges())?;
        let ans = self.subsumed_via(key, lineage)?;
        self.sub_hits.fetch_add(1, Ordering::Relaxed);
        self.store(key.clone(), ans);
        Some(ans)
    }

    /// Interruptible [`HomCache::exists`]. Hits return instantly (a memo
    /// lookup needs no interruption window); a miss runs the search under
    /// `intr` and — critically — does **not** insert anything when the
    /// search is stopped: an aborted search has no verdict, and caching
    /// one would poison every later query for the same key. The partial
    /// search effort still lands in this cache's counters.
    pub fn exists_int(
        &self,
        from: &Database,
        to: &Database,
        fixed: &[(Val, Val)],
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        self.exists_sub_int(from, to, fixed, None, intr)
    }

    /// Interruptible [`HomCache::exists_sub`] (subsumption probes are
    /// memo reads and need no interruption window of their own).
    pub fn exists_sub_int(
        &self,
        from: &Database,
        to: &Database,
        fixed: &[(Val, Val)],
        lineage: Option<&Lineage>,
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        let Some(key) = Self::normalize(from, to, fixed) else {
            return Ok(false);
        };
        if let Some(ans) = self.probe_exact(&key) {
            return Ok(ans);
        }
        if let Some(ans) = self.try_subsume(&key, lineage) {
            return Ok(ans);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (ans, counts) = homomorphism_exists_counted_int(from, to, &key.2, intr);
        self.note_search(&counts);
        let ans = ans?;
        self.store(key, ans);
        Ok(ans)
    }

    /// [`HomCache::exists`] minus the memo table: the query is normalized
    /// and counted against this cache's miss/search counters, but the
    /// table is neither consulted nor updated. This is the `no_cache`
    /// execution mode of an engine — same verdicts, same accounting
    /// shape, no memoization.
    pub fn exists_uncached(&self, from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
        let mut norm: Vec<(Val, Val)> = fixed.to_vec();
        norm.sort_unstable();
        norm.dedup();
        if norm.windows(2).any(|w| w[0].0 == w[1].0) {
            return false;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (ans, counts) = homomorphism_exists_counted(from, to, &norm);
        self.note_search(&counts);
        ans
    }

    /// Interruptible [`HomCache::exists_uncached`]: same accounting, no
    /// memoization, search stops when `intr` trips.
    pub fn exists_uncached_int(
        &self,
        from: &Database,
        to: &Database,
        fixed: &[(Val, Val)],
        intr: &Interrupt,
    ) -> Result<bool, Stop> {
        let mut norm: Vec<(Val, Val)> = fixed.to_vec();
        norm.sort_unstable();
        norm.dedup();
        if norm.windows(2).any(|w| w[0].0 == w[1].0) {
            return Ok(false);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (ans, counts) = homomorphism_exists_counted_int(from, to, &norm, intr);
        self.note_search(&counts);
        ans
    }

    fn shard_of(key: &Key) -> usize {
        // The fingerprints are already well-mixed; fold in the fixed
        // pairs so same-database/different-tuple queries spread out.
        let mut h = key.0 as u64 ^ (key.0 >> 64) as u64 ^ (key.1 as u64).rotate_left(32);
        for &(a, b) in &key.2 {
            h = h
                .rotate_left(13)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((a.index() as u64) << 32) | b.index() as u64);
        }
        (h as usize) % SHARDS
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Answers served by delta subsumption (neither hit nor miss).
    pub fn subsumption_hits(&self) -> u64 {
        self.sub_hits.load(Ordering::Relaxed)
    }

    /// Number of memoized answers (both generations; they are disjoint).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = s.lock().unwrap();
                g.cur.len() + g.prev.len()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity (entries across all shards; the table can
    /// transiently hold up to ~2× this while both generations are full).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * SHARDS
    }

    /// Drop all memoized answers (counters are left running).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut g = s.lock().unwrap();
            g.cur.clear();
            g.prev.clear();
        }
    }

    /// This cache's own counters as a [`HomStats`]: search effort from
    /// its miss/uncached paths plus its hit/miss counts. Unlike
    /// [`HomStats::snapshot`], which reads the process-global counters,
    /// this is attributable to exactly the queries routed through this
    /// cache instance.
    pub fn stats(&self) -> HomStats {
        HomStats {
            solves: self.searches.load(Ordering::Relaxed),
            nodes_expanded: self.nodes.load(Ordering::Relaxed),
            forward_check_wipeouts: self.wipeouts.load(Ordering::Relaxed),
            backtracks: self.backtracks.load(Ordering::Relaxed),
            cache_hits: self.hits(),
            cache_misses: self.misses(),
        }
    }

    /// Zero every counter (the memo table itself is untouched).
    pub fn reset_stats(&self) {
        for c in [
            &self.hits,
            &self.misses,
            &self.searches,
            &self.nodes,
            &self.wipeouts,
            &self.backtracks,
            &self.restored,
            &self.sub_hits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Entries imported from a persisted table since the last
    /// [`HomCache::reset_stats`].
    pub fn restored(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }

    /// Dump every memoized entry for persistence. Fixed pairs come out in
    /// their normalized (sorted, deduplicated) key form.
    #[allow(clippy::type_complexity)]
    pub fn export_entries(&self) -> Vec<(u128, u128, Vec<(Val, Val)>, bool)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let g = s.lock().unwrap();
            for (k, &ans) in g.cur.iter().chain(g.prev.iter()) {
                out.push((k.0, k.1, k.2.clone(), ans));
            }
        }
        out
    }

    /// Insert one persisted entry. Fingerprints are content hashes, so a
    /// restored verdict is valid for any database with the same content;
    /// the import counts as neither a hit nor a miss, only as `restored`.
    pub fn import_entry(&self, from_fp: u128, to_fp: u128, fixed: Vec<(Val, Val)>, ans: bool) {
        let key: Key = (from_fp, to_fp, fixed);
        let shard = &self.shards[Self::shard_of(&key)];
        shard.lock().unwrap().insert(key, ans, self.per_shard_cap);
        self.restored.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for HomCache {
    fn default() -> HomCache {
        HomCache::new()
    }
}

static GLOBAL: OnceLock<Arc<HomCache>> = OnceLock::new();

/// The process-wide cache instance used by the legacy (engine-less)
/// entry points and `Engine::global()`.
pub fn global() -> &'static HomCache {
    GLOBAL.get_or_init(|| Arc::new(HomCache::new()))
}

/// The global cache as a shared handle, so an `Engine` can co-own it.
pub fn global_arc() -> Arc<HomCache> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(HomCache::new())))
}

/// Memoized [`homomorphism_exists`] through the [`global`] cache.
pub fn exists_cached(from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
    global().exists(from, to, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::schema::Schema;

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b"), ("b", "c")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists(&p, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(cache.exists(&p, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn equal_content_clones_share_entries() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let q = graph(&[("a", "b")]); // same content, separate allocation
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists(&p, &c3, &[]));
        assert!(cache.exists(&q, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn fixed_pair_order_is_normalized() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        let a = p.val_by_name("a").unwrap();
        let b = p.val_by_name("b").unwrap();
        let x = c2.val_by_name("x").unwrap();
        let y = c2.val_by_name("y").unwrap();
        assert!(cache.exists(&p, &c2, &[(a, x), (b, y)]));
        assert!(cache.exists(&p, &c2, &[(b, y), (a, x)]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn contradictory_fixes_are_false_and_uncached() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        let a = p.val_by_name("a").unwrap();
        let x = c2.val_by_name("x").unwrap();
        let y = c2.val_by_name("y").unwrap();
        assert!(!cache.exists(&p, &c2, &[(a, x), (a, y)]));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }

    #[test]
    fn mutation_changes_the_key() {
        let cache = HomCache::new();
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        let mut p = graph(&[("a", "b")]);
        assert!(cache.exists(&p, &c3, &[]));
        // Extending p with a third edge re-keys it: no stale answer.
        p.add_named_fact("E", &["b", "c"]);
        assert!(cache.exists(&p, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn negative_answers_are_cached_too() {
        let cache = HomCache::new();
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let p = graph(&[("1", "2"), ("2", "3")]);
        assert!(!cache.exists(&c3, &p, &[]));
        assert!(!cache.exists(&c3, &p, &[]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clear_empties_the_table() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let q = graph(&[("x", "y"), ("y", "z")]);
        cache.exists(&p, &q, &[]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        cache.exists(&p, &q, &[]);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn eviction_bounds_size_and_preserves_correctness() {
        // Per-shard capacity 1: every insert beyond the first per shard
        // rotates. Churn through many distinct keys, then re-query — the
        // answers must match an unbounded reference cache exactly.
        let cache = HomCache::with_capacity(SHARDS);
        assert_eq!(cache.capacity(), SHARDS);
        let reference = HomCache::new();
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        let p = graph(&[("a", "b"), ("b", "c")]);
        let pairs: Vec<(Val, Val)> = p
            .dom()
            .flat_map(|a| c3.dom().map(move |b| (a, b)))
            .collect();
        for &(a, b) in &pairs {
            assert_eq!(
                cache.exists(&p, &c3, &[(a, b)]),
                reference.exists(&p, &c3, &[(a, b)]),
                "cold"
            );
        }
        // Both generations together never exceed 2× the capacity.
        assert!(
            cache.len() <= 2 * cache.capacity(),
            "len {} > 2×cap {}",
            cache.len(),
            2 * cache.capacity()
        );
        // Re-query everything: some answers were evicted and recompute
        // (misses), but every answer stays correct.
        for &(a, b) in &pairs {
            assert_eq!(
                cache.exists(&p, &c3, &[(a, b)]),
                reference.exists(&p, &c3, &[(a, b)]),
                "re-query after eviction"
            );
        }
    }

    #[test]
    fn subsumption_reuses_positive_across_insert_only_delta() {
        use crate::delta::{Delta, Lineage};
        let cache = HomCache::new();
        let lineage = Lineage::new();
        let p = graph(&[("a", "b"), ("b", "c")]); // path of length 2
        let mut c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists_sub(&p, &c3, &[], Some(&lineage)));
        assert_eq!(cache.misses(), 1);
        // Append a fact: the positive hom into c3 survives into c3 ∪ Δ.
        c3.apply_via(&Delta::new().add_fact("E", &["x", "w"]), &lineage)
            .unwrap();
        assert!(cache.exists_sub(&p, &c3, &[], Some(&lineage)));
        assert_eq!(cache.misses(), 1, "no fresh search after the append");
        assert_eq!(cache.subsumption_hits(), 1);
        // The subsumed answer was promoted to an exact entry.
        assert!(cache.exists_sub(&p, &c3, &[], Some(&lineage)));
        assert_eq!(cache.subsumption_hits(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn subsumption_reuses_negative_across_delete_only_delta() {
        use crate::delta::{Delta, Lineage};
        let cache = HomCache::new();
        let lineage = Lineage::new();
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]); // 3-cycle
        let mut p = graph(&[("1", "2"), ("2", "3")]);
        assert!(!cache.exists_sub(&c3, &p, &[], Some(&lineage)));
        // Deleting a fact can only make the target poorer: the negative
        // verdict survives.
        p.apply_via(&Delta::new().remove_fact("E", &["2", "3"]), &lineage)
            .unwrap();
        assert!(!cache.exists_sub(&c3, &p, &[], Some(&lineage)));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.subsumption_hits(), 1);
    }

    #[test]
    fn subsumption_respects_direction() {
        use crate::delta::{Delta, Lineage};
        let cache = HomCache::new();
        let lineage = Lineage::new();
        // p = single edge maps into the 2-path; after deleting the only
        // edge of the target the positive entry must NOT be reused (a
        // positive does not survive target deletions) — the fresh search
        // finds the true answer: no hom.
        let p = graph(&[("a", "b")]);
        let mut t = graph(&[("x", "y")]);
        assert!(cache.exists_sub(&p, &t, &[], Some(&lineage)));
        t.apply_via(&Delta::new().remove_fact("E", &["x", "y"]), &lineage)
            .unwrap();
        assert!(!cache.exists_sub(&p, &t, &[], Some(&lineage)));
        assert_eq!(cache.subsumption_hits(), 0);
        assert_eq!(cache.misses(), 2, "direction mismatch forces a search");
    }

    #[test]
    fn subsumption_works_on_the_source_side() {
        use crate::delta::{Delta, Lineage};
        let cache = HomCache::new();
        let lineage = Lineage::new();
        // A positive verdict from a *larger* source restricts to any
        // sub-source: cache (p2 → c3), then delete a fact from p2.
        let mut p2 = graph(&[("a", "b"), ("b", "c")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists_sub(&p2, &c3, &[], Some(&lineage)));
        p2.apply_via(&Delta::new().remove_fact("E", &["b", "c"]), &lineage)
            .unwrap();
        assert!(cache.exists_sub(&p2, &c3, &[], Some(&lineage)));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.subsumption_hits(), 1);

        // A negative verdict from a smaller source blocks any extension:
        // cache (c3 ↛ p1), then append a fact to c3.
        let mut c3b = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let p1 = graph(&[("1", "2")]);
        assert!(!cache.exists_sub(&c3b, &p1, &[], Some(&lineage)));
        c3b.apply_via(&Delta::new().add_fact("E", &["a", "d"]), &lineage)
            .unwrap();
        assert!(!cache.exists_sub(&c3b, &p1, &[], Some(&lineage)));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.subsumption_hits(), 2);
    }

    #[test]
    fn hot_entries_survive_rotation_by_promotion() {
        // Capacity SHARDS (1 per shard). Keep re-touching one key while
        // churning others through its shard: the hot key must keep
        // hitting (promotion pulls it back into the current generation).
        let cache = HomCache::with_capacity(SHARDS);
        let p = graph(&[("a", "b")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists(&p, &c3, &[])); // miss: now memoized
        let hits_before = cache.hits();
        let pairs: Vec<(Val, Val)> = p
            .dom()
            .flat_map(|a| c3.dom().map(move |b| (a, b)))
            .collect();
        for &(a, b) in &pairs {
            cache.exists(&p, &c3, &[(a, b)]); // churn
            cache.exists(&p, &c3, &[]); // touch the hot key
        }
        // The hot key was touched `pairs.len()` times; at most one of
        // those can miss per rotation reaching its shard, and promotion
        // means a find in either generation counts as a hit.
        assert!(
            cache.hits() >= hits_before + pairs.len() as u64 / 2,
            "hot key starved: {} hits after {} touches",
            cache.hits() - hits_before,
            pairs.len()
        );
    }
}
