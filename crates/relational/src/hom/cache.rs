//! A sharded, concurrent memo table for homomorphism-existence queries.
//!
//! The separability pipelines ask the same NP-hard question —
//! "is there a hom `(D, a) → (D', b)`?" — over and over: `cq_chain`
//! re-checks pairs that `cq_separable` already decided, classification
//! repeats training-time queries, and preorder matrices touch each pair
//! from both sides. Memoizing by *content* makes all of that free.
//!
//! Keys are `(from.fingerprint(), to.fingerprint(), sorted fixed pairs)`;
//! the fingerprint (see [`Database::fingerprint`]) is a structural hash
//! computed once per database, so equal-content databases share entries
//! even across clones. The table is split into [`SHARDS`] independently
//! locked shards so the parallel driver's worker threads rarely contend,
//! and answers are computed *outside* the shard lock — an expensive search
//! never blocks unrelated lookups (two threads may race to compute the
//! same key; both get the same answer and the second insert is a no-op).

use super::homomorphism_exists;
use crate::database::Database;
use crate::ids::Val;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Shard count; a small power of two comfortably above typical worker
/// counts so lock contention stays negligible.
const SHARDS: usize = 16;

type Key = (u128, u128, Vec<(Val, Val)>);

/// The memo table. Most callers use the process-wide [`global`] instance
/// via [`exists_cached`]; independent instances exist for tests and for
/// callers that want isolated lifetimes.
pub struct HomCache {
    shards: Vec<Mutex<HashMap<Key, bool>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HomCache {
    pub fn new() -> HomCache {
        HomCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Memoized [`homomorphism_exists`]: does a hom `from → to` extending
    /// `fixed` exist?
    ///
    /// The fixed pairs are normalized (sorted, deduplicated) before
    /// keying, so permutations and repetitions of the same constraints
    /// share one entry. Contradictory constraints short-circuit to
    /// `false` without occupying cache space.
    pub fn exists(&self, from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
        let mut norm: Vec<(Val, Val)> = fixed.to_vec();
        norm.sort_unstable();
        norm.dedup();
        if norm.windows(2).any(|w| w[0].0 == w[1].0) {
            // Two different targets for one source: no hom, and not worth
            // a table entry.
            return false;
        }
        let key: Key = (from.fingerprint(), to.fingerprint(), norm);
        let shard = &self.shards[Self::shard_of(&key)];
        if let Some(&ans) = shard.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ans;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Search with the lock released; the solve can be exponential and
        // must not serialize unrelated lookups on this shard.
        let ans = homomorphism_exists(from, to, &key.2);
        shard.lock().unwrap().insert(key, ans);
        ans
    }

    fn shard_of(key: &Key) -> usize {
        // The fingerprints are already well-mixed; fold in the fixed
        // pairs so same-database/different-tuple queries spread out.
        let mut h = key.0 as u64 ^ (key.0 >> 64) as u64 ^ (key.1 as u64).rotate_left(32);
        for &(a, b) in &key.2 {
            h = h
                .rotate_left(13)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((a.index() as u64) << 32) | b.index() as u64);
        }
        (h as usize) % SHARDS
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized answers.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all memoized answers (counters are left running).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
    }
}

impl Default for HomCache {
    fn default() -> HomCache {
        HomCache::new()
    }
}

/// The process-wide cache instance used by the separability pipelines.
pub fn global() -> &'static HomCache {
    static GLOBAL: OnceLock<HomCache> = OnceLock::new();
    GLOBAL.get_or_init(HomCache::new)
}

/// Memoized [`homomorphism_exists`] through the [`global`] cache.
pub fn exists_cached(from: &Database, to: &Database, fixed: &[(Val, Val)]) -> bool {
    global().exists(from, to, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::schema::Schema;

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b"), ("b", "c")]);
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists(&p, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(cache.exists(&p, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn equal_content_clones_share_entries() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let q = graph(&[("a", "b")]); // same content, separate allocation
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        assert!(cache.exists(&p, &c3, &[]));
        assert!(cache.exists(&q, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn fixed_pair_order_is_normalized() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        let a = p.val_by_name("a").unwrap();
        let b = p.val_by_name("b").unwrap();
        let x = c2.val_by_name("x").unwrap();
        let y = c2.val_by_name("y").unwrap();
        assert!(cache.exists(&p, &c2, &[(a, x), (b, y)]));
        assert!(cache.exists(&p, &c2, &[(b, y), (a, x)]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn contradictory_fixes_are_false_and_uncached() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let c2 = graph(&[("x", "y"), ("y", "x")]);
        let a = p.val_by_name("a").unwrap();
        let x = c2.val_by_name("x").unwrap();
        let y = c2.val_by_name("y").unwrap();
        assert!(!cache.exists(&p, &c2, &[(a, x), (a, y)]));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }

    #[test]
    fn mutation_changes_the_key() {
        let cache = HomCache::new();
        let c3 = graph(&[("x", "y"), ("y", "z"), ("z", "x")]);
        let mut p = graph(&[("a", "b")]);
        assert!(cache.exists(&p, &c3, &[]));
        // Extending p with a third edge re-keys it: no stale answer.
        p.add_named_fact("E", &["b", "c"]);
        assert!(cache.exists(&p, &c3, &[]));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn negative_answers_are_cached_too() {
        let cache = HomCache::new();
        let c3 = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let p = graph(&[("1", "2"), ("2", "3")]);
        assert!(!cache.exists(&c3, &p, &[]));
        assert!(!cache.exists(&c3, &p, &[]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clear_empties_the_table() {
        let cache = HomCache::new();
        let p = graph(&[("a", "b")]);
        let q = graph(&[("x", "y"), ("y", "z")]);
        cache.exists(&p, &q, &[]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        cache.exists(&p, &q, &[]);
        assert_eq!(cache.misses(), 2);
    }
}
