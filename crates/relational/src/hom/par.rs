//! Parallel drivers for fan-out over independent homomorphism queries.
//!
//! The separability algorithms are embarrassingly parallel at the pair
//! level: `cq_separable` asks Θ(|P|·|N|) independent hom questions,
//! chain construction fills an n×n preorder matrix, classification maps
//! each evaluation entity against each class representative. The drivers
//! here fan those out over `std::thread::scope` workers pulling indices
//! from a shared atomic cursor — no work queue, no external runtime, and
//! no allocation beyond one result slot per item.
//!
//! All drivers degrade to the plain sequential loop when the host has a
//! single core (or the item count is 1), so single-threaded behavior and
//! determinism are preserved exactly where parallelism cannot help.
//!
//! The closures run concurrently and therefore must be `Sync`; they get
//! `&Database` freely since databases are immutable during search (the
//! lazily-computed fingerprint is behind a `OnceLock`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Worker count for `n_items` independent tasks under an optional thread
/// budget (an engine's configured cap): the available parallelism,
/// capped by the budget and the number of items. `Some(0)` is treated as
/// 1 — the drivers always make progress.
fn worker_count_capped(n_items: usize, budget: Option<usize>) -> usize {
    let hw = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = budget.unwrap_or(hw).max(1);
    hw.min(cap).min(n_items).max(1)
}

/// Does `pred` hold for **all** pairs? Early-exits on the first
/// counterexample: every worker checks a shared flag between items and
/// stops as soon as any worker refutes, so a cheap "no" is not delayed
/// by expensive unrelated searches.
pub fn par_all_pairs<A, B, F>(pairs: &[(A, B)], pred: F) -> bool
where
    A: Copy + Sync,
    B: Copy + Sync,
    F: Fn(A, B) -> bool + Sync,
{
    par_all_pairs_capped(pairs, None, pred)
}

/// [`par_all_pairs`] under an optional thread budget (`None` = all
/// available cores).
pub fn par_all_pairs_capped<A, B, F>(pairs: &[(A, B)], budget: Option<usize>, pred: F) -> bool
where
    A: Copy + Sync,
    B: Copy + Sync,
    F: Fn(A, B) -> bool + Sync,
{
    let workers = worker_count_capped(pairs.len(), budget);
    if workers <= 1 {
        return pairs.iter().all(|&(a, b)| pred(a, b));
    }
    let cursor = AtomicUsize::new(0);
    let refuted = AtomicBool::new(false);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if refuted.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (a, b) = pairs[i];
                if !pred(a, b) {
                    refuted.store(true, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    !refuted.load(Ordering::Relaxed)
}

/// Map `f` over `items` in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_capped(items, None, f)
}

/// [`par_map`] under an optional thread budget (`None` = all available
/// cores).
pub fn par_map_capped<T, U, F>(items: &[T], budget: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = worker_count_capped(items.len(), budget);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, U)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, u) in per_worker.into_iter().flatten() {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index visited once"))
        .collect()
}

/// Index of the first item satisfying `pred` (the *lowest* matching
/// index, matching `Iterator::position`), or `None`. Workers past an
/// already-found match abandon their probes early.
pub fn par_find_first<T, F>(items: &[T], pred: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    par_find_first_capped(items, None, pred)
}

/// [`par_find_first`] under an optional thread budget (`None` = all
/// available cores). Still returns the *lowest* matching index.
pub fn par_find_first_capped<T, F>(items: &[T], budget: Option<usize>, pred: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    let workers = worker_count_capped(items.len(), budget);
    if workers <= 1 {
        return items.iter().position(pred);
    }
    let cursor = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                // Indices are claimed in ascending order, so anything at
                // or past the current best cannot improve it.
                if i >= items.len() || i >= best.load(Ordering::Relaxed) {
                    break;
                }
                if pred(&items[i]) {
                    best.fetch_min(i, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    let b = best.load(Ordering::Relaxed);
    (b != usize::MAX).then_some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_pairs_empty_is_vacuously_true() {
        let pairs: Vec<(usize, usize)> = Vec::new();
        assert!(par_all_pairs(&pairs, |_, _| false));
    }

    #[test]
    fn all_pairs_finds_the_counterexample() {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i, i + 1)).collect();
        assert!(par_all_pairs(&pairs, |a, b| a < b));
        assert!(!par_all_pairs(&pairs, |a, _| a != 57));
    }

    #[test]
    fn all_pairs_early_exit_skips_work() {
        // With the counterexample first, most items should never be
        // visited (exact count depends on scheduling; bound it loosely).
        let pairs: Vec<(usize, usize)> = (0..10_000).map(|i| (i, i)).collect();
        let visited = AtomicUsize::new(0);
        assert!(!par_all_pairs(&pairs, |a, _| {
            visited.fetch_add(1, Ordering::Relaxed);
            a != 0
        }));
        assert!(
            visited.load(Ordering::Relaxed) < pairs.len(),
            "early exit should not visit every pair"
        );
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        assert!(par_map(&Vec::<usize>::new(), |&x: &usize| x).is_empty());
    }

    #[test]
    fn find_first_returns_lowest_index() {
        let items: Vec<usize> = (0..500).collect();
        assert_eq!(par_find_first(&items, |&x| x >= 123), Some(123));
        assert_eq!(par_find_first(&items, |&x| x > 10_000), None);
        assert_eq!(par_find_first(&Vec::<usize>::new(), |_| true), None);
    }
}
