//! Parallel drivers for fan-out over independent homomorphism queries.
//!
//! The separability algorithms are embarrassingly parallel at the pair
//! level: `cq_separable` asks Θ(|P|·|N|) independent hom questions,
//! chain construction fills an n×n preorder matrix, classification maps
//! each evaluation entity against each class representative. The drivers
//! here fan those out over `std::thread::scope` workers pulling indices
//! from a shared atomic cursor — no work queue, no external runtime, and
//! no allocation beyond one result slot per item.
//!
//! All drivers degrade to the plain sequential loop when the host has a
//! single core (or the item count is 1), so single-threaded behavior and
//! determinism are preserved exactly where parallelism cannot help.
//!
//! The closures run concurrently and therefore must be `Sync`; they get
//! `&Database` freely since databases are immutable during search (the
//! lazily-computed fingerprint is behind a `OnceLock`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Below this many items per worker, a [`WorkHint::Trivial`] task is not
/// worth a thread spawn: `std::thread::scope` setup plus cache traffic on
/// the shared cursor costs on the order of hundreds of microseconds,
/// which dwarfs that many trivial closure calls. Solver-sized items
/// (an LP, a hom search) amortize a spawn individually and are exempt.
const TRIVIAL_SPAWN_FLOOR: usize = 512;

/// `std::thread::available_parallelism`, probed once per process. The
/// drivers consult this on every call, and the syscall behind it is not
/// free on all platforms.
pub fn hardware_parallelism() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Caller's estimate of per-item cost, used to decide whether spawning
/// workers can pay for itself (see [`TRIVIAL_SPAWN_FLOOR`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkHint {
    /// Sub-microsecond items (arithmetic, a hash probe): parallelize
    /// only with hundreds of items per worker.
    Trivial,
    /// Items that individually amortize a spawn (an LP solve, a hom
    /// search, a subset block): parallelize whenever cores allow.
    Solver,
}

/// Worker count for `n_items` independent tasks under an optional thread
/// budget (an engine's configured cap) and a per-item cost hint: the
/// available parallelism, capped by the budget and the number of items,
/// then throttled so trivial items keep at least
/// [`TRIVIAL_SPAWN_FLOOR`] of them per worker. `Some(0)` is treated as
/// 1 — the drivers always make progress. Pure in `hw` for testability.
fn worker_count(hw: usize, n_items: usize, budget: Option<usize>, hint: WorkHint) -> usize {
    let cap = budget.unwrap_or(hw).max(1);
    let w = hw.min(cap).min(n_items).max(1);
    match hint {
        WorkHint::Solver => w,
        WorkHint::Trivial => w.min(n_items / TRIVIAL_SPAWN_FLOOR).max(1),
    }
}

/// Does `pred` hold for **all** pairs? Early-exits on the first
/// counterexample: every worker checks a shared flag between items and
/// stops as soon as any worker refutes, so a cheap "no" is not delayed
/// by expensive unrelated searches.
pub fn par_all_pairs<A, B, F>(pairs: &[(A, B)], pred: F) -> bool
where
    A: Copy + Sync,
    B: Copy + Sync,
    F: Fn(A, B) -> bool + Sync,
{
    par_all_pairs_capped(pairs, None, pred)
}

/// [`par_all_pairs`] under an optional thread budget (`None` = all
/// available cores).
pub fn par_all_pairs_capped<A, B, F>(pairs: &[(A, B)], budget: Option<usize>, pred: F) -> bool
where
    A: Copy + Sync,
    B: Copy + Sync,
    F: Fn(A, B) -> bool + Sync,
{
    par_all_pairs_hinted(pairs, budget, WorkHint::Solver, pred)
}

/// [`par_all_pairs_capped`] with a per-item cost hint: trivial items run
/// sequentially unless there are enough of them per worker to amortize
/// the spawns.
pub fn par_all_pairs_hinted<A, B, F>(
    pairs: &[(A, B)],
    budget: Option<usize>,
    hint: WorkHint,
    pred: F,
) -> bool
where
    A: Copy + Sync,
    B: Copy + Sync,
    F: Fn(A, B) -> bool + Sync,
{
    let workers = worker_count(hardware_parallelism(), pairs.len(), budget, hint);
    if workers <= 1 {
        return pairs.iter().all(|&(a, b)| pred(a, b));
    }
    let cursor = AtomicUsize::new(0);
    let refuted = AtomicBool::new(false);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if refuted.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (a, b) = pairs[i];
                if !pred(a, b) {
                    refuted.store(true, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    !refuted.load(Ordering::Relaxed)
}

/// Map `f` over `items` in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_capped(items, None, f)
}

/// [`par_map`] under an optional thread budget (`None` = all available
/// cores).
pub fn par_map_capped<T, U, F>(items: &[T], budget: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_hinted(items, budget, WorkHint::Solver, f)
}

/// [`par_map_capped`] with a per-item cost hint: trivial items run
/// sequentially unless there are enough of them per worker to amortize
/// the spawns.
pub fn par_map_hinted<T, U, F>(items: &[T], budget: Option<usize>, hint: WorkHint, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = worker_count(hardware_parallelism(), items.len(), budget, hint);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, U)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, u) in per_worker.into_iter().flatten() {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index visited once"))
        .collect()
}

/// Index of the first item satisfying `pred` (the *lowest* matching
/// index, matching `Iterator::position`), or `None`. Workers past an
/// already-found match abandon their probes early.
pub fn par_find_first<T, F>(items: &[T], pred: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    par_find_first_capped(items, None, pred)
}

/// [`par_find_first`] under an optional thread budget (`None` = all
/// available cores). Still returns the *lowest* matching index.
pub fn par_find_first_capped<T, F>(items: &[T], budget: Option<usize>, pred: F) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    par_find_first_hinted(items, budget, WorkHint::Solver, pred)
}

/// [`par_find_first_capped`] with a per-item cost hint: trivial items run
/// sequentially unless there are enough of them per worker to amortize
/// the spawns. Still returns the *lowest* matching index.
pub fn par_find_first_hinted<T, F>(
    items: &[T],
    budget: Option<usize>,
    hint: WorkHint,
    pred: F,
) -> Option<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    let workers = worker_count(hardware_parallelism(), items.len(), budget, hint);
    if workers <= 1 {
        return items.iter().position(pred);
    }
    let cursor = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                // Indices are claimed in ascending order, so anything at
                // or past the current best cannot improve it.
                if i >= items.len() || i >= best.load(Ordering::Relaxed) {
                    break;
                }
                if pred(&items[i]) {
                    best.fetch_min(i, Ordering::Relaxed);
                    break;
                }
            });
        }
    });
    let b = best.load(Ordering::Relaxed);
    (b != usize::MAX).then_some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_pairs_empty_is_vacuously_true() {
        let pairs: Vec<(usize, usize)> = Vec::new();
        assert!(par_all_pairs(&pairs, |_, _| false));
    }

    #[test]
    fn all_pairs_finds_the_counterexample() {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i, i + 1)).collect();
        assert!(par_all_pairs(&pairs, |a, b| a < b));
        assert!(!par_all_pairs(&pairs, |a, _| a != 57));
    }

    #[test]
    fn all_pairs_early_exit_skips_work() {
        // With the counterexample first, most items should never be
        // visited (exact count depends on scheduling; bound it loosely).
        let pairs: Vec<(usize, usize)> = (0..10_000).map(|i| (i, i)).collect();
        let visited = AtomicUsize::new(0);
        assert!(!par_all_pairs(&pairs, |a, _| {
            visited.fetch_add(1, Ordering::Relaxed);
            a != 0
        }));
        assert!(
            visited.load(Ordering::Relaxed) < pairs.len(),
            "early exit should not visit every pair"
        );
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        assert!(par_map(&Vec::<usize>::new(), |&x: &usize| x).is_empty());
    }

    #[test]
    fn find_first_returns_lowest_index() {
        let items: Vec<usize> = (0..500).collect();
        assert_eq!(par_find_first(&items, |&x| x >= 123), Some(123));
        assert_eq!(par_find_first(&items, |&x| x > 10_000), None);
        assert_eq!(par_find_first(&Vec::<usize>::new(), |_| true), None);
    }

    #[test]
    fn worker_count_respects_budget_items_and_hint() {
        // Budget and item count cap the hardware figure.
        assert_eq!(worker_count(8, 100, None, WorkHint::Solver), 8);
        assert_eq!(worker_count(8, 100, Some(3), WorkHint::Solver), 3);
        assert_eq!(worker_count(8, 2, None, WorkHint::Solver), 2);
        assert_eq!(worker_count(8, 0, None, WorkHint::Solver), 1);
        // Budget 0 and 1 both mean "sequential, but make progress".
        assert_eq!(worker_count(8, 100, Some(0), WorkHint::Solver), 1);
        assert_eq!(worker_count(8, 100, Some(1), WorkHint::Solver), 1);
        assert_eq!(worker_count(1, 100, None, WorkHint::Solver), 1);
        // Trivial items need TRIVIAL_SPAWN_FLOOR of themselves per
        // worker before a spawn pays; solver items do not.
        assert_eq!(worker_count(8, 100, None, WorkHint::Trivial), 1);
        assert_eq!(
            worker_count(8, TRIVIAL_SPAWN_FLOOR * 2, None, WorkHint::Trivial),
            2
        );
        assert_eq!(
            worker_count(8, TRIVIAL_SPAWN_FLOOR * 100, None, WorkHint::Trivial),
            8
        );
    }

    #[test]
    fn budget_one_never_spawns_a_thread() {
        // The bug this pins: the drivers used to enter `thread::scope`
        // even when the effective budget was 1, paying spawn overhead to
        // do strictly sequential work. At budget 1 every closure must run
        // on the calling thread itself.
        let caller = thread::current().id();
        let items: Vec<usize> = (0..256).collect();

        let seen = par_map_capped(&items, Some(1), |_| thread::current().id());
        assert!(seen.iter().all(|&id| id == caller), "par_map spawned");

        let on_caller = AtomicUsize::new(0);
        let found = par_find_first_capped(&items, Some(1), |&x| {
            if thread::current().id() == caller {
                on_caller.fetch_add(1, Ordering::Relaxed);
            }
            x == 200
        });
        assert_eq!(found, Some(200));
        assert_eq!(
            on_caller.load(Ordering::Relaxed),
            201,
            "par_find_first spawned"
        );

        let pairs: Vec<(usize, usize)> = items.iter().map(|&i| (i, i)).collect();
        let on_caller = AtomicUsize::new(0);
        assert!(par_all_pairs_capped(&pairs, Some(1), |_, _| {
            if thread::current().id() == caller {
                on_caller.fetch_add(1, Ordering::Relaxed);
            }
            true
        }));
        assert_eq!(
            on_caller.load(Ordering::Relaxed),
            pairs.len(),
            "par_all_pairs spawned"
        );
    }

    #[test]
    fn trivial_hint_stays_sequential_on_small_batches() {
        let caller = thread::current().id();
        let items: Vec<usize> = (0..TRIVIAL_SPAWN_FLOOR - 1).collect();
        // Regardless of core count, fewer than a floor's worth of
        // trivial items must not spawn.
        let seen = par_map_hinted(&items, None, WorkHint::Trivial, |_| thread::current().id());
        assert!(seen.iter().all(|&id| id == caller));
        assert_eq!(
            par_find_first_hinted(&items, None, WorkHint::Trivial, |&x| x == 17),
            Some(17)
        );
    }
}
