//! In-memory relational databases and the homomorphism machinery that the
//! separability framework of Barceló et al. (PODS 2019) is built on.
//!
//! The paper's objects (§2–§3):
//!
//! * a **schema** is a finite set of relation symbols with arities; an
//!   **entity schema** distinguishes a unary symbol `η` of entities
//!   ([`Schema`]);
//! * a **database** is a finite set of facts ([`Database`]), with
//!   `dom(D)` the set of elements occurring in them;
//! * a **homomorphism** `(D, ā) → (D', b̄)` is a structure-preserving map
//!   sending the distinguished tuple `ā` to `b̄` ([`hom`]);
//! * a **training database** is a database plus a ±1 labeling of its
//!   entities ([`TrainingDb`]).
//!
//! Homomorphism existence is NP-complete; the solver in [`hom`] is a
//! backtracking CSP search with minimum-remaining-values ordering and
//! forward checking over per-`(relation, position, value)` fact indexes,
//! which is exact and fast on the instance sizes the algorithms generate.
//!
//! [`product`] implements the direct product of pointed databases — the
//! engine behind the QBE solvers (§6.1) whose exponential size is exactly
//! where the paper's coNEXPTIME/EXPTIME lower bounds live.

pub mod builder;
pub mod database;
pub mod delta;
pub mod hom;
pub mod ids;
pub mod iso;
pub mod labeling;
pub mod product;
pub mod schema;
pub mod spec;

pub use builder::DbBuilder;
pub use database::{fingerprint_computations, Database, Fact};
pub use delta::{
    global_lineage_arc, Containment, Delta, DeltaError, DeltaKind, DeltaOp, DeltaReceipt, Lineage,
};
pub use hom::cache::{exists_cached, HomCache};
pub use hom::stats::HomStats;
pub use hom::{
    find_homomorphism, hom_equivalent, homomorphism_exists, homomorphism_exists_counted, HomSearch,
    SearchCounts,
};
pub use ids::{RelId, Val};
pub use labeling::{Label, Labeling, TrainingDb};
pub use product::{pointed_power, ProductError};
pub use schema::Schema;
