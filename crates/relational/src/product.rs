//! Direct products of pointed databases (§6.1 machinery).
//!
//! The QBE solvers rest on the *product homomorphism* characterization of
//! ten Cate–Dalmau [32] / Barceló–Romero [6]: a CQ explanation for
//! `(D, S⁺, S⁻)` exists iff the canonical CQ of the direct product
//! `P = ∏_{a ∈ S⁺} (D, a)` excludes every negative example, i.e.
//! `(P, ā) ↛ (D, b)` for each `b ∈ S⁻` (and `(P, ā) →_k (D, b)` fails, for
//! the `GHW(k)` variant). The product is exponential in `|S⁺|` — this is
//! precisely the source of the paper's coNEXPTIME/EXPTIME lower bounds — so
//! construction takes an explicit size budget and fails loudly instead of
//! exhausting memory.

use crate::database::Database;
use crate::ids::Val;
use std::collections::HashMap;
use std::fmt;

/// Failure modes of product construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProductError {
    /// The requested product would exceed the fact budget. Carries the
    /// budget that was exceeded.
    TooLarge { budget: usize },
    /// A product of zero factors was requested.
    Empty,
}

impl fmt::Display for ProductError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductError::TooLarge { budget } => {
                write!(f, "direct product exceeds the fact budget of {budget}")
            }
            ProductError::Empty => write!(f, "direct product of zero factors"),
        }
    }
}

impl std::error::Error for ProductError {}

/// The `n`-fold pointed power `∏_i (D, points[i])`.
///
/// Returns the product database `P` and the distinguished element
/// `(points[0], …, points[n-1])`. Only elements that occur in product facts
/// (plus the distinguished tuple) are materialized. Facts of `P`: for each
/// relation `R` and each `n`-tuple `(f_1, …, f_n)` of `R`-facts of `D`, the
/// componentwise tuple fact. Fact count is `Σ_R |R|^n`; `budget` caps it.
pub fn pointed_power(
    d: &Database,
    points: &[Val],
    budget: usize,
) -> Result<(Database, Val), ProductError> {
    let n = points.len();
    if n == 0 {
        return Err(ProductError::Empty);
    }
    // Pre-flight the fact count.
    let mut total: usize = 0;
    for rel in d.schema().rel_ids() {
        let m = d.facts_of_rel(rel).len();
        let mut p = 1usize;
        for _ in 0..n {
            p = p.saturating_mul(m);
            if p > budget {
                return Err(ProductError::TooLarge { budget });
            }
        }
        total = total.saturating_add(p);
        if total > budget {
            return Err(ProductError::TooLarge { budget });
        }
    }

    let mut out = Database::new(d.schema().clone());
    let mut interned: HashMap<Vec<Val>, Val> = HashMap::new();
    let mut intern = |out: &mut Database, tuple: &[Val]| -> Val {
        if let Some(&v) = interned.get(tuple) {
            return v;
        }
        let name = format!(
            "<{}>",
            tuple
                .iter()
                .map(|&t| d.val_name(t))
                .collect::<Vec<_>>()
                .join(",")
        );
        let v = out.value(&name);
        interned.insert(tuple.to_vec(), v);
        v
    };

    let point = intern(&mut out, points);

    for rel in d.schema().rel_ids() {
        let arity = d.schema().arity(rel);
        let fact_idxs = d.facts_of_rel(rel).to_vec();
        if fact_idxs.is_empty() {
            continue;
        }
        // Iterate over all n-tuples of facts via a mixed-radix counter.
        let mut counter = vec![0usize; n];
        loop {
            let mut args = Vec::with_capacity(arity);
            for pos in 0..arity {
                let tuple: Vec<Val> = counter
                    .iter()
                    .map(|&ci| d.fact(fact_idxs[ci]).args[pos])
                    .collect();
                args.push(intern(&mut out, &tuple));
            }
            out.add_fact(rel, args);

            // Advance the counter.
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                counter[i] += 1;
                if counter[i] < fact_idxs.len() {
                    break;
                }
                counter[i] = 0;
                i += 1;
            }
            if i == n {
                break;
            }
        }
    }

    Ok((out, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::hom::homomorphism_exists;
    use crate::schema::Schema;

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn power_one_is_isomorphic_projection() {
        let d = graph(&[("a", "b"), ("b", "c")]);
        let a = d.val_by_name("a").unwrap();
        let (p, pt) = pointed_power(&d, &[a], 1000).unwrap();
        assert_eq!(p.fact_count(), d.fact_count());
        assert_eq!(p.val_name(pt), "<a>");
        assert!(homomorphism_exists(&p, &d, &[(pt, a)]));
        let b = d.val_by_name("b").unwrap();
        assert!(!homomorphism_exists(&p, &d, &[(pt, b)]));
    }

    #[test]
    fn square_fact_count() {
        let d = graph(&[("a", "b"), ("b", "c"), ("c", "a")]);
        let a = d.val_by_name("a").unwrap();
        let b = d.val_by_name("b").unwrap();
        let (p, _) = pointed_power(&d, &[a, b], 1000).unwrap();
        // E has 3 facts, so E in the square has 9.
        let e = p.schema().rel_by_name("E").unwrap();
        assert_eq!(p.facts_of_rel(e).len(), 9);
    }

    #[test]
    fn product_projects_homomorphically() {
        // The product homomorphically projects to each factor at its point.
        let d = graph(&[("a", "b"), ("b", "a"), ("b", "c")]);
        let a = d.val_by_name("a").unwrap();
        let c = d.val_by_name("c").unwrap();
        let (p, pt) = pointed_power(&d, &[a, c], 10_000).unwrap();
        assert!(homomorphism_exists(&p, &d, &[(pt, a)]));
        assert!(homomorphism_exists(&p, &d, &[(pt, c)]));
    }

    #[test]
    fn product_characterizes_common_properties() {
        // In a 2-cycle {a<->b} versus a self-loop {l->l}: the product of
        // (C2,a) and (L,l)... use one db containing both. An element of the
        // 2-cycle and the loop element have the product capturing shared
        // CQ properties: the product point maps to any element with an
        // outgoing infinite walk, which all three have.
        let d = graph(&[("a", "b"), ("b", "a"), ("l", "l")]);
        let a = d.val_by_name("a").unwrap();
        let l = d.val_by_name("l").unwrap();
        let (p, pt) = pointed_power(&d, &[a, l], 10_000).unwrap();
        assert!(homomorphism_exists(&p, &d, &[(pt, a)]));
        assert!(homomorphism_exists(&p, &d, &[(pt, l)]));
        // b also admits every CQ property shared by a and l (odd/even
        // parity is destroyed by the loop), so the product maps there too.
        let b = d.val_by_name("b").unwrap();
        assert!(homomorphism_exists(&p, &d, &[(pt, b)]));
    }

    #[test]
    fn budget_is_enforced() {
        let d = graph(&[("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]);
        let a = d.val_by_name("a").unwrap();
        let err = pointed_power(&d, &[a, a, a, a, a], 100).unwrap_err();
        assert_eq!(err, ProductError::TooLarge { budget: 100 });
        assert!(pointed_power(&d, &[], 100).is_err());
    }
}
