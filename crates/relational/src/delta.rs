//! First-class edits: a [`Delta`] is a small, serializable batch of
//! mutations (fact inserts/deletes, entity adds, label flips) applied to
//! a [`Database`] or [`TrainingDb`] as one unit, producing a
//! [`DeltaReceipt`] that ties the parent and child content fingerprints
//! together.
//!
//! The receipt is what makes mutation *observable* to the caching layer:
//! instead of silently invalidating the fingerprint and cold-starting
//! every memo table, the [`Lineage`] registry records
//! `(parent_fp, delta_fp) -> child_fp` edges and can answer "is D₂ an
//! insert-only extension of D₁?" — the question the caches' subsumption
//! reads need (see `hom::cache` and DESIGN §7). Which verdicts survive
//! which edit direction:
//!
//! * a cached **positive** hom/game verdict into `D` stays valid for any
//!   insert-only descendant `D ∪ Δ` (CQ satisfaction is monotone in the
//!   target database);
//! * a cached **negative** verdict into `D` stays valid for any
//!   delete-only descendant `D ∖ Δ`;
//! * on the source side the rules flip: positives survive source
//!   deletions, negatives survive source insertions;
//! * label flips change *no* structural fingerprint at all — labels live
//!   in [`Labeling`], outside [`Database::fingerprint`] — so every
//!   hom/game entry stays exactly valid; the lineage memo still records
//!   the edit so repeated relabels are registry hits, not recomputes.
//!
//! Deltas name elements and relations by *string* so they can cross a
//! process boundary (NDJSON `append` requests, CLI delta files) and be
//! resolved against whichever resident database they reach.

use crate::database::{mix64, Database};
use crate::ids::{RelId, Val};
use crate::labeling::{Label, Labeling, TrainingDb};
use serde::bytes::{ByteReader, ByteWriter};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One primitive edit within a [`Delta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Intern an element (no facts). A no-op if the name exists.
    AddValue { name: String },
    /// Insert a fact, interning unseen argument names. A no-op if the
    /// fact is already present (still insert-only either way).
    AddFact { rel: String, args: Vec<String> },
    /// Delete a fact. Removing an absent fact is an error — deltas are
    /// exact edit scripts, not wish lists.
    RemoveFact { rel: String, args: Vec<String> },
    /// Insert `η(name)` (interning the name), labeling it when applied
    /// to a training database. The label is required there and rejected
    /// on an unlabeled database.
    AddEntity { name: String, label: Option<Label> },
    /// Flip the label of an existing entity (training databases only).
    FlipLabel { name: String },
}

/// The structural direction of a delta, which decides what the caches
/// may soundly reuse across the edit (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// No ops at all: child is the parent.
    Identity,
    /// Only inserts (values, facts, entities): parent ⊆ child.
    InsertOnly,
    /// Only fact deletions: parent ⊇ child.
    DeleteOnly,
    /// Only label flips: structurally the identity (labels are outside
    /// the fingerprint), so every cache entry stays exactly valid.
    LabelOnly,
    /// Inserts and deletes mixed: no sound containment either way.
    Mixed,
}

impl DeltaKind {
    /// Stable wire code (see `engine::persist`'s lineage table).
    pub fn code(self) -> u8 {
        match self {
            DeltaKind::Identity => 0,
            DeltaKind::InsertOnly => 1,
            DeltaKind::DeleteOnly => 2,
            DeltaKind::LabelOnly => 3,
            DeltaKind::Mixed => 4,
        }
    }

    /// Inverse of [`DeltaKind::code`]; `None` on an invalid byte.
    pub fn from_code(code: u8) -> Option<DeltaKind> {
        Some(match code {
            0 => DeltaKind::Identity,
            1 => DeltaKind::InsertOnly,
            2 => DeltaKind::DeleteOnly,
            3 => DeltaKind::LabelOnly,
            4 => DeltaKind::Mixed,
            _ => return None,
        })
    }
}

impl fmt::Display for DeltaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeltaKind::Identity => "identity",
            DeltaKind::InsertOnly => "insert-only",
            DeltaKind::DeleteOnly => "delete-only",
            DeltaKind::LabelOnly => "label-only",
            DeltaKind::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// A delta application failed; the target database is left unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaError(pub String);

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta error: {}", self.0)
    }
}

impl std::error::Error for DeltaError {}

/// An ordered batch of [`DeltaOp`]s applied atomically: either every op
/// applies and a [`DeltaReceipt`] comes back, or the target database is
/// untouched.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

const DELTA_MAGIC: [u8; 8] = *b"CQSEPDL1";
const RECEIPT_MAGIC: [u8; 8] = *b"CQSEPDR1";

impl Delta {
    pub fn new() -> Delta {
        Delta::default()
    }

    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// Builder: intern an element.
    pub fn add_value(mut self, name: &str) -> Delta {
        self.ops.push(DeltaOp::AddValue {
            name: name.to_string(),
        });
        self
    }

    /// Builder: insert a fact by relation and argument names.
    pub fn add_fact(mut self, rel: &str, args: &[&str]) -> Delta {
        self.ops.push(DeltaOp::AddFact {
            rel: rel.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Builder: delete a fact by relation and argument names.
    pub fn remove_fact(mut self, rel: &str, args: &[&str]) -> Delta {
        self.ops.push(DeltaOp::RemoveFact {
            rel: rel.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Builder: insert an entity, labeled when targeting a training db.
    pub fn add_entity(mut self, name: &str, label: Option<Label>) -> Delta {
        self.ops.push(DeltaOp::AddEntity {
            name: name.to_string(),
            label,
        });
        self
    }

    /// Builder: flip an existing entity's label.
    pub fn flip_label(mut self, name: &str) -> Delta {
        self.ops.push(DeltaOp::FlipLabel {
            name: name.to_string(),
        });
        self
    }

    /// The structural direction of this delta (label flips do not count
    /// as structural edits — see [`DeltaKind::LabelOnly`]).
    pub fn kind(&self) -> DeltaKind {
        let (mut ins, mut del, mut label) = (false, false, false);
        for op in &self.ops {
            match op {
                DeltaOp::AddValue { .. } | DeltaOp::AddFact { .. } | DeltaOp::AddEntity { .. } => {
                    ins = true
                }
                DeltaOp::RemoveFact { .. } => del = true,
                DeltaOp::FlipLabel { .. } => label = true,
            }
        }
        match (ins, del, label) {
            (true, true, _) => DeltaKind::Mixed,
            (true, false, _) => DeltaKind::InsertOnly,
            (false, true, _) => DeltaKind::DeleteOnly,
            (false, false, true) => DeltaKind::LabelOnly,
            (false, false, false) => DeltaKind::Identity,
        }
    }

    /// A 128-bit content fingerprint of the edit script. Order-sensitive
    /// (deltas are scripts, not sets): together with the parent database
    /// fingerprint it keys the [`Lineage`] registry's
    /// `(parent_fp, delta_fp) -> child_fp` memo.
    pub fn fingerprint(&self) -> u128 {
        fn hash_str(s: &str) -> u64 {
            s.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            })
        }
        let mut lo = mix64(0x5D1A_9C7E_44B2_0D31 ^ self.ops.len() as u64);
        let mut hi = mix64(0x1F8E_6BD4_7A05_93C9);
        for op in &self.ops {
            let (tag, name, args): (u64, &str, &[String]) = match op {
                DeltaOp::AddValue { name } => (1, name, &[]),
                DeltaOp::AddFact { rel, args } => (2, rel, args),
                DeltaOp::RemoveFact { rel, args } => (3, rel, args),
                DeltaOp::AddEntity { name, label } => match label {
                    None => (4, name, &[]),
                    Some(Label::Positive) => (5, name, &[]),
                    Some(Label::Negative) => (6, name, &[]),
                },
                DeltaOp::FlipLabel { name } => (7, name, &[]),
            };
            let mut h = mix64(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hash_str(name));
            for a in args {
                h = mix64(h ^ hash_str(a));
            }
            lo = mix64(lo.rotate_left(9) ^ h);
            hi = mix64(hi ^ h.rotate_left(23));
        }
        ((hi as u128) << 64) | lo as u128
    }

    /// Parse the line-oriented delta text format:
    ///
    /// ```text
    /// add-value x
    /// add-fact E(a,b)
    /// del-fact E(a,b)
    /// add-entity x +      # label optional (required for training dbs)
    /// flip-label x
    /// ```
    ///
    /// Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Delta, DeltaError> {
        let mut delta = Delta::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| DeltaError(format!("line {}: {msg}: {line:?}", no + 1));
            let (verb, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| err("missing operand"))?;
            let rest = rest.trim();
            let op = match verb {
                "add-value" => DeltaOp::AddValue {
                    name: rest.to_string(),
                },
                "add-fact" | "del-fact" => {
                    let (rel, args) = parse_atom(rest).ok_or_else(|| err("bad fact syntax"))?;
                    if verb == "add-fact" {
                        DeltaOp::AddFact { rel, args }
                    } else {
                        DeltaOp::RemoveFact { rel, args }
                    }
                }
                "add-entity" => {
                    let mut parts = rest.split_whitespace();
                    let name = parts.next().ok_or_else(|| err("missing entity name"))?;
                    let label = match parts.next() {
                        None => None,
                        Some("+") => Some(Label::Positive),
                        Some("-") => Some(Label::Negative),
                        Some(_) => return Err(err("bad label (expected + or -)")),
                    };
                    if parts.next().is_some() {
                        return Err(err("trailing tokens"));
                    }
                    DeltaOp::AddEntity {
                        name: name.to_string(),
                        label,
                    }
                }
                "flip-label" => DeltaOp::FlipLabel {
                    name: rest.to_string(),
                },
                _ => return Err(err("unknown delta verb")),
            };
            delta.ops.push(op);
        }
        Ok(delta)
    }

    /// Render back to the [`Delta::parse`] text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                DeltaOp::AddValue { name } => out.push_str(&format!("add-value {name}\n")),
                DeltaOp::AddFact { rel, args } => {
                    out.push_str(&format!("add-fact {rel}({})\n", args.join(",")))
                }
                DeltaOp::RemoveFact { rel, args } => {
                    out.push_str(&format!("del-fact {rel}({})\n", args.join(",")))
                }
                DeltaOp::AddEntity { name, label } => match label {
                    None => out.push_str(&format!("add-entity {name}\n")),
                    Some(Label::Positive) => out.push_str(&format!("add-entity {name} +\n")),
                    Some(Label::Negative) => out.push_str(&format!("add-entity {name} -\n")),
                },
                DeltaOp::FlipLabel { name } => out.push_str(&format!("flip-label {name}\n")),
            }
        }
        out
    }

    /// Binary wire encoding (`serde::bytes` conventions: magic, strict
    /// bytes, all-or-nothing decode).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(&DELTA_MAGIC);
        w.u32(self.ops.len() as u32);
        for op in &self.ops {
            match op {
                DeltaOp::AddValue { name } => {
                    w.u8(1);
                    w.str(name);
                }
                DeltaOp::AddFact { rel, args } => {
                    w.u8(2);
                    w.str(rel);
                    w.str_list(args);
                }
                DeltaOp::RemoveFact { rel, args } => {
                    w.u8(3);
                    w.str(rel);
                    w.str_list(args);
                }
                DeltaOp::AddEntity { name, label } => {
                    w.u8(4);
                    w.str(name);
                    w.opt_verdict(label.map(|l| l == Label::Positive));
                }
                DeltaOp::FlipLabel { name } => {
                    w.u8(5);
                    w.str(name);
                }
            }
        }
        w.finish()
    }

    /// Decode [`Delta::to_bytes`]; `None` on any corruption.
    pub fn from_bytes(bytes: &[u8]) -> Option<Delta> {
        let mut r = ByteReader::with_magic(bytes, &DELTA_MAGIC)?;
        let n = r.u32()?;
        let mut ops = Vec::new();
        for _ in 0..n {
            let op = match r.u8()? {
                1 => DeltaOp::AddValue { name: r.str()? },
                2 => DeltaOp::AddFact {
                    rel: r.str()?,
                    args: r.str_list()?,
                },
                3 => DeltaOp::RemoveFact {
                    rel: r.str()?,
                    args: r.str_list()?,
                },
                4 => DeltaOp::AddEntity {
                    name: r.str()?,
                    label: r.opt_verdict()?.map(|pos| {
                        if pos {
                            Label::Positive
                        } else {
                            Label::Negative
                        }
                    }),
                },
                5 => DeltaOp::FlipLabel { name: r.str()? },
                _ => return None,
            };
            ops.push(op);
        }
        r.finished().then_some(Delta { ops })
    }
}

/// `R(a,b)` → `("R", ["a","b"])`. Shared shape with the spec format.
fn parse_atom(s: &str) -> Option<(String, Vec<String>)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close != s.len() - 1 || open == 0 {
        return None;
    }
    let rel = s[..open].trim();
    let inner = &s[open + 1..close];
    if rel.is_empty() || inner.trim().is_empty() {
        return None;
    }
    let args: Vec<String> = inner.split(',').map(|a| a.trim().to_string()).collect();
    if args.iter().any(|a| a.is_empty()) {
        return None;
    }
    Some((rel.to_string(), args))
}

/// What applying a [`Delta`] did: the fingerprint edge for the
/// [`Lineage`] registry plus op counts for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaReceipt {
    /// Content fingerprint of the database before the edit.
    pub parent_fp: u128,
    /// Fingerprint of the edit script itself.
    pub delta_fp: u128,
    /// Content fingerprint after the edit (equals `parent_fp` for
    /// identity and label-only deltas).
    pub child_fp: u128,
    /// Structural direction (decides cache subsumption soundness).
    pub kind: DeltaKind,
    /// Facts actually inserted (duplicates excluded).
    pub facts_added: u64,
    /// Facts removed.
    pub facts_removed: u64,
    /// Elements newly interned.
    pub values_added: u64,
    /// Labels flipped (training databases only).
    pub labels_flipped: u64,
    /// Did the lineage registry already know `(parent_fp, delta_fp)`,
    /// sparing the child fingerprint recompute?
    pub registry_hit: bool,
}

impl DeltaReceipt {
    /// One-line human-readable summary (the `append` task/CLI output).
    pub fn summary(&self) -> String {
        format!(
            "applied {} delta: +{} facts, -{} facts, +{} values, {} flips; \
             {:032x} -> {:032x}{}",
            self.kind,
            self.facts_added,
            self.facts_removed,
            self.values_added,
            self.labels_flipped,
            self.parent_fp,
            self.child_fp,
            if self.registry_hit {
                " (lineage registry hit)"
            } else {
                ""
            }
        )
    }

    /// Binary wire encoding in the `serde::bytes` conventions.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(&RECEIPT_MAGIC);
        w.u128(self.parent_fp);
        w.u128(self.delta_fp);
        w.u128(self.child_fp);
        w.u8(self.kind.code());
        w.u64(self.facts_added);
        w.u64(self.facts_removed);
        w.u64(self.values_added);
        w.u64(self.labels_flipped);
        w.verdict(self.registry_hit);
        w.finish()
    }

    /// Decode [`DeltaReceipt::to_bytes`]; `None` on any corruption.
    pub fn from_bytes(bytes: &[u8]) -> Option<DeltaReceipt> {
        let mut r = ByteReader::with_magic(bytes, &RECEIPT_MAGIC)?;
        let out = DeltaReceipt {
            parent_fp: r.u128()?,
            delta_fp: r.u128()?,
            child_fp: r.u128()?,
            kind: DeltaKind::from_code(r.u8()?)?,
            facts_added: r.u64()?,
            facts_removed: r.u64()?,
            values_added: r.u64()?,
            labels_flipped: r.u64()?,
            registry_hit: r.verdict()?,
        };
        r.finished().then_some(out)
    }
}

// ----------------------------------------------------------------------
// Applying deltas
// ----------------------------------------------------------------------

#[derive(Default)]
struct OpCounts {
    facts_added: u64,
    facts_removed: u64,
    values_added: u64,
    labels_flipped: u64,
}

/// The shared op loop. `lab` present ⇒ training semantics (labels
/// allowed and required); absent ⇒ structural ops only.
fn apply_ops(
    db: &mut Database,
    mut lab: Option<&mut Labeling>,
    delta: &Delta,
) -> Result<OpCounts, DeltaError> {
    let mut c = OpCounts::default();
    let intern = |db: &mut Database, name: &str, c: &mut OpCounts| -> Val {
        if db.val_by_name(name).is_none() {
            c.values_added += 1;
        }
        db.value(name)
    };
    for op in delta.ops() {
        match op {
            DeltaOp::AddValue { name } => {
                intern(db, name, &mut c);
            }
            DeltaOp::AddFact { rel, args } | DeltaOp::RemoveFact { rel, args } => {
                let rel_id: RelId = db
                    .schema()
                    .rel_by_name(rel)
                    .ok_or_else(|| DeltaError(format!("unknown relation {rel:?}")))?;
                if args.len() != db.schema().arity(rel_id) {
                    return Err(DeltaError(format!(
                        "arity mismatch for {rel}: got {}, schema says {}",
                        args.len(),
                        db.schema().arity(rel_id)
                    )));
                }
                if matches!(op, DeltaOp::AddFact { .. }) {
                    let vals: Vec<Val> = args.iter().map(|a| intern(db, a, &mut c)).collect();
                    if db.add_fact(rel_id, vals) {
                        c.facts_added += 1;
                    }
                } else {
                    let vals: Vec<Val> = args
                        .iter()
                        .map(|a| {
                            db.val_by_name(a)
                                .ok_or_else(|| DeltaError(format!("unknown element {a:?}")))
                        })
                        .collect::<Result<_, _>>()?;
                    if !db.remove_fact(rel_id, &vals) {
                        return Err(DeltaError(format!(
                            "removes absent fact {rel}({})",
                            args.join(",")
                        )));
                    }
                    c.facts_removed += 1;
                }
            }
            DeltaOp::AddEntity { name, label } => {
                match (&mut lab, label) {
                    (Some(lab), Some(l)) => {
                        let v = intern(db, name, &mut c);
                        if db.add_entity(v) {
                            c.facts_added += 1;
                        }
                        lab.set(v, *l);
                    }
                    (Some(_), None) => {
                        return Err(DeltaError(format!(
                            "add-entity {name} needs a label (+/-) on a training database"
                        )))
                    }
                    (None, None) => {
                        let v = intern(db, name, &mut c);
                        if db.add_entity(v) {
                            c.facts_added += 1;
                        }
                    }
                    (None, Some(_)) => {
                        return Err(DeltaError(format!(
                            "add-entity {name} carries a label but the target database is \
                             unlabeled; apply to a training database"
                        )))
                    }
                };
            }
            DeltaOp::FlipLabel { name } => {
                let lab = lab.as_mut().ok_or_else(|| {
                    DeltaError(format!(
                        "flip-label {name} needs a labeled (training) database"
                    ))
                })?;
                let v = db
                    .val_by_name(name)
                    .ok_or_else(|| DeltaError(format!("unknown element {name:?}")))?;
                let old = lab.try_get(v).ok_or_else(|| {
                    DeltaError(format!("flip-label {name}: element has no label"))
                })?;
                lab.set(v, old.flip());
                c.labels_flipped += 1;
            }
        }
    }
    Ok(c)
}

fn finish_receipt(
    work: &mut Database,
    delta: &Delta,
    parent_fp: u128,
    counts: OpCounts,
    lineage: Option<&Lineage>,
) -> DeltaReceipt {
    let delta_fp = delta.fingerprint();
    let known_child = lineage.and_then(|l| l.child_of(parent_fp, delta_fp));
    let child_fp = match known_child {
        // The registry already computed this child's fingerprint for the
        // same (parent content, edit script): prime the OnceLock instead
        // of rehashing every fact.
        Some(c) => {
            work.prime_fingerprint(c);
            c
        }
        None => work.fingerprint(),
    };
    let receipt = DeltaReceipt {
        parent_fp,
        delta_fp,
        child_fp,
        kind: delta.kind(),
        facts_added: counts.facts_added,
        facts_removed: counts.facts_removed,
        values_added: counts.values_added,
        labels_flipped: counts.labels_flipped,
        registry_hit: known_child.is_some(),
    };
    if let (Some(l), None) = (lineage, known_child) {
        l.record(&receipt);
    }
    receipt
}

impl Database {
    /// Apply a structural delta (label ops are an error here — use
    /// [`TrainingDb::apply`]). Atomic: on `Err` the database is
    /// unchanged. Without a [`Lineage`] the edit still produces a
    /// receipt, it just isn't recorded anywhere; prefer
    /// [`Database::apply_via`] (or `Engine::apply_delta`) so the caches
    /// can reuse verdicts across the edit.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaReceipt, DeltaError> {
        self.apply_inner(delta, None)
    }

    /// [`Database::apply`] recording the fingerprint edge in `lineage`
    /// (and skipping the child-fingerprint recompute when the registry
    /// already knows this `(parent, delta)` pair).
    pub fn apply_via(
        &mut self,
        delta: &Delta,
        lineage: &Lineage,
    ) -> Result<DeltaReceipt, DeltaError> {
        self.apply_inner(delta, Some(lineage))
    }

    fn apply_inner(
        &mut self,
        delta: &Delta,
        lineage: Option<&Lineage>,
    ) -> Result<DeltaReceipt, DeltaError> {
        let parent_fp = self.fingerprint();
        let mut work = self.clone();
        let counts = apply_ops(&mut work, None, delta)?;
        let receipt = finish_receipt(&mut work, delta, parent_fp, counts, lineage);
        *self = work;
        Ok(receipt)
    }
}

impl TrainingDb {
    /// Apply a delta (structural ops and label ops). Atomic: on `Err`
    /// the training database is unchanged.
    pub fn apply(&mut self, delta: &Delta) -> Result<DeltaReceipt, DeltaError> {
        self.apply_inner(delta, None)
    }

    /// [`TrainingDb::apply`] recording the fingerprint edge in
    /// `lineage`. Label-only deltas record an identity edge (same
    /// fingerprint), so repeated relabels of the same parent are
    /// registry hits.
    pub fn apply_via(
        &mut self,
        delta: &Delta,
        lineage: &Lineage,
    ) -> Result<DeltaReceipt, DeltaError> {
        self.apply_inner(delta, Some(lineage))
    }

    fn apply_inner(
        &mut self,
        delta: &Delta,
        lineage: Option<&Lineage>,
    ) -> Result<DeltaReceipt, DeltaError> {
        let parent_fp = self.db.fingerprint();
        let mut work = self.db.clone();
        let mut lab = self.labeling.clone();
        let counts = apply_ops(&mut work, Some(&mut lab), delta)?;
        let receipt = finish_receipt(&mut work, delta, parent_fp, counts, lineage);
        self.db = work;
        self.labeling = lab;
        Ok(receipt)
    }
}

// ----------------------------------------------------------------------
// The lineage registry
// ----------------------------------------------------------------------

/// How an ancestor database relates to a descendant, derived from a
/// uniform-direction chain of lineage edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Containment {
    /// The ancestor is contained in the descendant (insert-only chain):
    /// every fact (and element) of the ancestor is in the descendant.
    Subset,
    /// The ancestor contains the descendant (delete-only chain).
    Superset,
}

/// Cap on registered edges: lineage is metadata about *recent* edit
/// history, not an unbounded provenance store. Past the cap new edges
/// are silently not recorded (subsumption degrades to exact-key
/// caching, which is always sound).
const MAX_EDGES: usize = 1 << 16;
/// Caps on the ancestor walk, bounding subsumption probe cost per miss.
const MAX_ANCESTORS: usize = 8;
const MAX_WALK: usize = 64;

#[derive(Default)]
struct LineageTable {
    /// `(parent_fp, delta_fp) -> (child_fp, kind)` — the apply memo.
    children: HashMap<(u128, u128), (u128, DeltaKind)>,
    /// `child_fp -> [(parent_fp, containment)]` for the walkable
    /// (insert-only / delete-only) edges.
    parents: HashMap<u128, Vec<(u128, Containment)>>,
}

/// The process- or engine-scoped registry of fingerprint lineage: which
/// database contents are edits of which, and in which direction. Owned
/// by `engine::Engine`; consulted by the caches' subsumption reads.
pub struct Lineage {
    inner: Mutex<LineageTable>,
    /// Mirror of `children.len()` so the no-edge fast path (every cache
    /// miss probes it) never takes the lock.
    edge_count: AtomicU64,
    registry_hits: AtomicU64,
    /// Edges imported from a persisted lineage table.
    restored: AtomicU64,
}

impl Lineage {
    pub fn new() -> Lineage {
        Lineage {
            inner: Mutex::new(LineageTable::default()),
            edge_count: AtomicU64::new(0),
            registry_hits: AtomicU64::new(0),
            restored: AtomicU64::new(0),
        }
    }

    /// No edges registered? The fast path every subsumption probe checks
    /// before doing any work.
    pub fn no_edges(&self) -> bool {
        self.edge_count.load(Ordering::Relaxed) == 0
    }

    /// Registered edges.
    pub fn edge_count(&self) -> u64 {
        self.edge_count.load(Ordering::Relaxed)
    }

    /// Times [`Lineage::child_of`] answered from the memo — each one is
    /// a child-fingerprint recompute (or a re-parse) avoided.
    pub fn registry_hits(&self) -> u64 {
        self.registry_hits.load(Ordering::Relaxed)
    }

    /// Edges imported from a persisted table.
    pub fn restored(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }

    /// Zero the event counters (the edge table itself is untouched).
    pub fn reset_stats(&self) {
        self.registry_hits.store(0, Ordering::Relaxed);
        self.restored.store(0, Ordering::Relaxed);
    }

    /// The memoized child fingerprint for applying `delta_fp` to
    /// `parent_fp`, if this exact edit was seen before.
    pub fn child_of(&self, parent_fp: u128, delta_fp: u128) -> Option<u128> {
        let t = self.inner.lock().unwrap();
        let child = t.children.get(&(parent_fp, delta_fp)).map(|&(c, _)| c);
        if child.is_some() {
            self.registry_hits.fetch_add(1, Ordering::Relaxed);
        }
        child
    }

    /// Record a receipt's fingerprint edge.
    pub fn record(&self, receipt: &DeltaReceipt) {
        self.insert(
            receipt.parent_fp,
            receipt.delta_fp,
            receipt.child_fp,
            receipt.kind,
        );
    }

    /// Import one persisted edge (counts as `restored`).
    pub fn import_edge(&self, parent_fp: u128, delta_fp: u128, child_fp: u128, kind: DeltaKind) {
        self.insert(parent_fp, delta_fp, child_fp, kind);
        self.restored.fetch_add(1, Ordering::Relaxed);
    }

    fn insert(&self, parent_fp: u128, delta_fp: u128, child_fp: u128, kind: DeltaKind) {
        let mut t = self.inner.lock().unwrap();
        if t.children.len() >= MAX_EDGES {
            return;
        }
        if t.children
            .insert((parent_fp, delta_fp), (child_fp, kind))
            .is_none()
        {
            self.edge_count.fetch_add(1, Ordering::Relaxed);
        }
        let containment = match kind {
            DeltaKind::InsertOnly => Containment::Subset,
            DeltaKind::DeleteOnly => Containment::Superset,
            // Identity/label-only edges relate equal fingerprints (the
            // exact key already matches); mixed edges admit no sound
            // containment.
            DeltaKind::Identity | DeltaKind::LabelOnly | DeltaKind::Mixed => return,
        };
        if child_fp == parent_fp {
            return;
        }
        let ups = t.parents.entry(child_fp).or_default();
        if !ups.iter().any(|&(p, c)| p == parent_fp && c == containment) {
            ups.push((parent_fp, containment));
        }
    }

    /// Dump every edge for persistence.
    pub fn export_edges(&self) -> Vec<(u128, u128, u128, DeltaKind)> {
        let t = self.inner.lock().unwrap();
        t.children
            .iter()
            .map(|(&(p, d), &(c, k))| (p, d, c, k))
            .collect()
    }

    /// Ancestors of `fp` reachable through uniform-direction edge
    /// chains, with how each contains (or is contained in) `fp`.
    /// Insert-only chains compose to `Subset` (ancestor ⊆ `fp`),
    /// delete-only chains to `Superset`; a direction change breaks the
    /// containment, so mixed chains are not followed. Bounded by
    /// [`MAX_ANCESTORS`]/[`MAX_WALK`] so a probe stays O(1)-ish.
    pub fn ancestors(&self, fp: u128) -> Vec<(u128, Containment)> {
        if self.no_edges() {
            return Vec::new();
        }
        let t = self.inner.lock().unwrap();
        let mut out = Vec::new();
        let mut queue: Vec<(u128, Containment)> = match t.parents.get(&fp) {
            Some(ups) => ups.clone(),
            None => return Vec::new(),
        };
        let mut seen: Vec<(u128, Containment)> = queue.clone();
        let mut walked = 0;
        while let Some((anc, cont)) = queue.pop() {
            walked += 1;
            out.push((anc, cont));
            if out.len() >= MAX_ANCESTORS || walked >= MAX_WALK {
                break;
            }
            if let Some(ups) = t.parents.get(&anc) {
                for &(p, c) in ups {
                    // Only uniform-direction chains keep a sound
                    // containment through composition.
                    if c == cont && !seen.contains(&(p, c)) {
                        seen.push((p, c));
                        queue.push((p, c));
                    }
                }
            }
        }
        out
    }
}

impl Default for Lineage {
    fn default() -> Lineage {
        Lineage::new()
    }
}

static GLOBAL: OnceLock<Arc<Lineage>> = OnceLock::new();

/// The process-wide lineage registry, shared by `Engine::global()` so
/// engine-less entry points and the global engine see the same edges.
pub fn global_lineage_arc() -> Arc<Lineage> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Lineage::new())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::schema::Schema;

    fn graph(edges: &[(&str, &str)]) -> Database {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut b = DbBuilder::new(s);
        for &(x, y) in edges {
            b = b.fact("E", &[x, y]);
        }
        b.build()
    }

    #[test]
    fn insert_only_apply_matches_hand_built() {
        let mut d = graph(&[("a", "b")]);
        let delta = Delta::new()
            .add_fact("E", &["b", "c"])
            .add_entity("c", None);
        let r = d.apply(&delta).unwrap();
        assert_eq!(r.kind, DeltaKind::InsertOnly);
        assert_eq!((r.facts_added, r.values_added), (2, 1));
        let mut want = graph(&[("a", "b"), ("b", "c")]);
        let c = want.value("c");
        want.add_entity(c);
        assert_eq!(d.fingerprint(), want.fingerprint());
        assert_eq!(r.child_fp, d.fingerprint());
        assert_ne!(r.parent_fp, r.child_fp);
    }

    #[test]
    fn delete_only_apply_and_absent_removal_errors() {
        let mut d = graph(&[("a", "b"), ("b", "c")]);
        let r = d
            .apply(&Delta::new().remove_fact("E", &["b", "c"]))
            .unwrap();
        assert_eq!(r.kind, DeltaKind::DeleteOnly);
        assert_eq!(r.facts_removed, 1);
        let fp = d.fingerprint();
        let err = d
            .apply(&Delta::new().remove_fact("E", &["b", "c"]))
            .unwrap_err();
        assert!(err.to_string().contains("absent fact"), "{err}");
        // Atomic: the failed apply left the database unchanged.
        assert_eq!(d.fingerprint(), fp);
    }

    #[test]
    fn structural_apply_rejects_label_ops() {
        let mut d = graph(&[("a", "b")]);
        assert!(d.apply(&Delta::new().flip_label("a")).is_err());
        assert!(d
            .apply(&Delta::new().add_entity("a", Some(Label::Positive)))
            .is_err());
    }

    #[test]
    fn training_apply_flips_labels_without_changing_fingerprint() {
        let mut d = graph(&[("a", "b")]);
        let a = d.value("a");
        let b = d.value("b");
        d.add_entity(a);
        d.add_entity(b);
        let mut lab = Labeling::new();
        lab.set(a, Label::Positive);
        lab.set(b, Label::Negative);
        let mut t = TrainingDb::new(d, lab);
        let fp = t.db.fingerprint();
        let r = t.apply(&Delta::new().flip_label("b")).unwrap();
        assert_eq!(r.kind, DeltaKind::LabelOnly);
        assert_eq!(r.labels_flipped, 1);
        assert_eq!(r.child_fp, fp, "labels live outside the fingerprint");
        assert_eq!(t.labeling.get(b), Label::Positive);
    }

    #[test]
    fn lineage_memo_skips_recompute_and_counts_hits() {
        let lineage = Lineage::new();
        let delta = Delta::new().add_fact("E", &["b", "c"]);
        let mut d1 = graph(&[("a", "b")]);
        let r1 = d1.apply_via(&delta, &lineage).unwrap();
        assert!(!r1.registry_hit);
        assert_eq!(lineage.edge_count(), 1);
        // Same parent content + same delta: the registry supplies the
        // child fingerprint.
        let mut d2 = graph(&[("a", "b")]);
        let r2 = d2.apply_via(&delta, &lineage).unwrap();
        assert!(r2.registry_hit);
        assert_eq!(r2.child_fp, r1.child_fp);
        assert_eq!(lineage.registry_hits(), 1);
        assert_eq!(d2.fingerprint(), r1.child_fp);
    }

    #[test]
    fn ancestors_follow_uniform_chains_only() {
        let lineage = Lineage::new();
        let mut d = graph(&[("a", "b")]);
        let fp0 = d.fingerprint();
        d.apply_via(&Delta::new().add_fact("E", &["b", "c"]), &lineage)
            .unwrap();
        let fp1 = d.fingerprint();
        d.apply_via(&Delta::new().add_fact("E", &["c", "d"]), &lineage)
            .unwrap();
        let fp2 = d.fingerprint();
        // Both ancestors are subsets through the insert-only chain.
        let anc = lineage.ancestors(fp2);
        assert!(anc.contains(&(fp1, Containment::Subset)));
        assert!(anc.contains(&(fp0, Containment::Subset)));
        // Now delete: the new edge is Superset, and composition stops at
        // the direction change.
        d.apply_via(&Delta::new().remove_fact("E", &["a", "b"]), &lineage)
            .unwrap();
        let fp3 = d.fingerprint();
        let anc3 = lineage.ancestors(fp3);
        assert_eq!(anc3, vec![(fp2, Containment::Superset)]);
    }

    #[test]
    fn delta_text_round_trips() {
        let delta = Delta::new()
            .add_value("x")
            .add_fact("E", &["x", "y"])
            .remove_fact("E", &["a", "b"])
            .add_entity("x", Some(Label::Positive))
            .add_entity("y", None)
            .flip_label("z");
        let text = delta.to_text();
        assert_eq!(Delta::parse(&text).unwrap(), delta);
        // And the binary wire form.
        assert_eq!(Delta::from_bytes(&delta.to_bytes()).unwrap(), delta);
    }

    #[test]
    fn delta_parse_rejects_garbage() {
        for bad in [
            "frobnicate x",
            "add-fact E(a,",
            "add-fact (a,b)",
            "add-entity x ?",
            "add-fact",
        ] {
            assert!(Delta::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(Delta::parse("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn delta_fingerprint_is_order_sensitive_and_content_stable() {
        let d1 = Delta::new().add_fact("E", &["a", "b"]).add_value("z");
        let d2 = Delta::new().add_value("z").add_fact("E", &["a", "b"]);
        let d1_again = Delta::new().add_fact("E", &["a", "b"]).add_value("z");
        assert_eq!(d1.fingerprint(), d1_again.fingerprint());
        assert_ne!(d1.fingerprint(), d2.fingerprint());
        assert_ne!(d1.fingerprint(), Delta::new().fingerprint());
    }

    #[test]
    fn receipt_round_trips_through_bytes() {
        let r = DeltaReceipt {
            parent_fp: 7,
            delta_fp: 11,
            child_fp: 13,
            kind: DeltaKind::Mixed,
            facts_added: 2,
            facts_removed: 1,
            values_added: 3,
            labels_flipped: 0,
            registry_hit: true,
        };
        assert_eq!(DeltaReceipt::from_bytes(&r.to_bytes()).unwrap(), r);
        assert!(DeltaReceipt::from_bytes(b"garbage").is_none());
        assert_eq!(DeltaKind::from_code(9), None);
    }
}
