//! Dense integer identifiers for relation symbols and domain elements.
//!
//! Both identifiers index into per-[`crate::Database`] vectors, so all hot
//! data structures (candidate sets in the homomorphism solver, pebble
//! positions in the cover game) are flat arrays rather than hash maps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A relation symbol, scoped to one [`crate::Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u32);

/// A domain element, scoped to one [`crate::Database`].
///
/// Values are dense: a database with `n` elements uses exactly
/// `Val(0) .. Val(n-1)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Val(pub u32);

impl RelId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Val {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(Val(1) < Val(2));
        assert_eq!(Val(7).index(), 7);
        assert_eq!(RelId(3).index(), 3);
        assert_eq!(format!("{:?}/{:?}", RelId(1), Val(2)), "r1/v2");
    }
}
