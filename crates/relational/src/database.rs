//! Databases: finite sets of facts over a schema, with the indexes the
//! homomorphism solver and cover-game solver rely on.

use crate::ids::{RelId, Val};
use crate::schema::Schema;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global count of full fingerprint computations (every
/// fact is rehashed). Observable via [`fingerprint_computations`] so
/// tests can assert that the delta/lineage path *avoids* recomputes.
static FP_COMPUTES: AtomicU64 = AtomicU64::new(0);

/// How many times any [`Database::fingerprint`] in this process fell
/// back to a full recompute (monotone counter).
pub fn fingerprint_computations() -> u64 {
    FP_COMPUTES.load(Ordering::Relaxed)
}

/// The 64-bit finalizer (splitmix64-style) shared by the database
/// fingerprint and the delta-script fingerprint in [`crate::delta`].
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A single fact `R(ā)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    pub rel: RelId,
    pub args: Vec<Val>,
}

impl Fact {
    pub fn new(rel: RelId, args: Vec<Val>) -> Fact {
        Fact { rel, args }
    }
}

/// A finite database over a [`Schema`].
///
/// Elements are dense [`Val`]s with optional human-readable names; facts
/// are deduplicated (a database is a *set* of facts). Three indexes are
/// maintained incrementally:
///
/// * facts grouped by relation,
/// * facts by `(relation, position, value)` — the forward-checking index
///   of the homomorphism solver,
/// * facts by value — the cover enumeration index of the k-cover game.
#[derive(Clone)]
pub struct Database {
    schema: Schema,
    val_names: Vec<String>,
    name_to_val: HashMap<String, Val>,
    facts: Vec<Fact>,
    fact_set: HashSet<Fact>,
    by_rel: Vec<Vec<usize>>,
    by_rel_pos_val: HashMap<(RelId, u32, Val), Vec<usize>>,
    by_val: Vec<Vec<usize>>,
    /// Cached content fingerprint (see [`Database::fingerprint`]);
    /// invalidated by any mutation.
    fingerprint: std::sync::OnceLock<u128>,
}

impl Database {
    pub fn new(schema: Schema) -> Database {
        let rel_count = schema.rel_count();
        Database {
            schema,
            val_names: Vec::new(),
            name_to_val: HashMap::new(),
            facts: Vec::new(),
            fact_set: HashSet::new(),
            by_rel: vec![Vec::new(); rel_count],
            by_rel_pos_val: HashMap::new(),
            by_val: Vec::new(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Intern a named element, creating it on first use.
    pub fn value(&mut self, name: &str) -> Val {
        if let Some(&v) = self.name_to_val.get(name) {
            return v;
        }
        let v = Val(self.val_names.len() as u32);
        self.val_names.push(name.to_string());
        self.name_to_val.insert(name.to_string(), v);
        self.by_val.push(Vec::new());
        self.invalidate_fingerprint();
        v
    }

    /// Create a fresh anonymous element.
    pub fn fresh_value(&mut self) -> Val {
        let name = format!("_v{}", self.val_names.len());
        self.value(&name)
    }

    pub fn val_name(&self, v: Val) -> &str {
        &self.val_names[v.index()]
    }

    pub fn val_by_name(&self, name: &str) -> Option<Val> {
        self.name_to_val.get(name).copied()
    }

    /// Number of elements ever interned. Note: the paper's `dom(D)` is the
    /// set of elements occurring in facts; see [`Database::active_dom`].
    pub fn dom_size(&self) -> usize {
        self.val_names.len()
    }

    pub fn dom(&self) -> impl Iterator<Item = Val> + '_ {
        (0..self.val_names.len() as u32).map(Val)
    }

    /// `dom(D)` in the paper's sense: elements that occur in some fact.
    pub fn active_dom(&self) -> Vec<Val> {
        self.dom()
            .filter(|v| !self.by_val[v.index()].is_empty())
            .collect()
    }

    /// Add a fact; returns `false` if it was already present.
    ///
    /// # Panics
    /// Panics if the arity does not match the schema or an argument is an
    /// unknown element.
    pub fn add_fact(&mut self, rel: RelId, args: Vec<Val>) -> bool {
        assert_eq!(
            args.len(),
            self.schema.arity(rel),
            "arity mismatch for {}",
            self.schema.name(rel)
        );
        for &a in &args {
            assert!(a.index() < self.val_names.len(), "unknown value {a:?}");
        }
        let fact = Fact::new(rel, args);
        if self.fact_set.contains(&fact) {
            return false;
        }
        let idx = self.facts.len();
        self.by_rel[rel.index()].push(idx);
        for (pos, &a) in fact.args.iter().enumerate() {
            self.by_rel_pos_val
                .entry((rel, pos as u32, a))
                .or_default()
                .push(idx);
            // `by_val` deduplicates within a fact (an element may repeat).
            if fact.args[..pos].iter().all(|&b| b != a) {
                self.by_val[a.index()].push(idx);
            }
        }
        self.fact_set.insert(fact.clone());
        self.facts.push(fact);
        self.invalidate_fingerprint();
        true
    }

    /// Remove a fact; returns `false` if it was not present. Maintains
    /// all three indexes (the removal slot is backfilled with the last
    /// fact, `swap_remove`-style, with its index entries rewritten).
    pub fn remove_fact(&mut self, rel: RelId, args: &[Val]) -> bool {
        let fact = Fact::new(rel, args.to_vec());
        if !self.fact_set.remove(&fact) {
            return false;
        }
        let idx = self
            .by_rel_pos_val
            .get(&(rel, 0, args[0]))
            .and_then(|idxs| idxs.iter().copied().find(|&i| self.facts[i].args == args))
            .expect("fact_set and positional index out of sync");
        self.unindex(idx);
        let last = self.facts.len() - 1;
        if idx != last {
            // The last fact moves into `idx`: rewrite its entries first,
            // then swap_remove leaves every index consistent.
            self.reindex(last, idx);
        }
        self.facts.swap_remove(idx);
        self.invalidate_fingerprint();
        true
    }

    fn remove_from(list: &mut Vec<usize>, idx: usize) {
        // Order-preserving removal: `entities()` order flows from the
        // relative order inside `by_rel`, so no swap_remove here.
        if let Some(p) = list.iter().position(|&i| i == idx) {
            list.remove(p);
        }
    }

    fn replace_in(list: &mut [usize], old: usize, new: usize) {
        for i in list {
            if *i == old {
                *i = new;
            }
        }
    }

    /// Drop fact index `idx` from every index list it occupies.
    fn unindex(&mut self, idx: usize) {
        let fact = self.facts[idx].clone();
        Self::remove_from(&mut self.by_rel[fact.rel.index()], idx);
        for (pos, &a) in fact.args.iter().enumerate() {
            if let Some(list) = self.by_rel_pos_val.get_mut(&(fact.rel, pos as u32, a)) {
                Self::remove_from(list, idx);
                if list.is_empty() {
                    self.by_rel_pos_val.remove(&(fact.rel, pos as u32, a));
                }
            }
            // Mirror the within-fact dedup of `add_fact`.
            if fact.args[..pos].iter().all(|&b| b != a) {
                Self::remove_from(&mut self.by_val[a.index()], idx);
            }
        }
    }

    /// Rewrite every index entry for the fact at `old` to point at `new`
    /// (the fact itself is about to be moved by `swap_remove`).
    fn reindex(&mut self, old: usize, new: usize) {
        let fact = self.facts[old].clone();
        Self::replace_in(&mut self.by_rel[fact.rel.index()], old, new);
        for (pos, &a) in fact.args.iter().enumerate() {
            if let Some(list) = self.by_rel_pos_val.get_mut(&(fact.rel, pos as u32, a)) {
                Self::replace_in(list, old, new);
            }
            if fact.args[..pos].iter().all(|&b| b != a) {
                Self::replace_in(&mut self.by_val[a.index()], old, new);
            }
        }
    }

    /// Add a fact identified by relation and element names, interning
    /// elements on the fly.
    pub fn add_named_fact(&mut self, rel_name: &str, args: &[&str]) -> bool {
        let rel = self
            .schema
            .rel_by_name(rel_name)
            .unwrap_or_else(|| panic!("unknown relation {rel_name:?}"));
        let vals: Vec<Val> = args.iter().map(|a| self.value(a)).collect();
        self.add_fact(rel, vals)
    }

    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    pub fn fact(&self, idx: usize) -> &Fact {
        &self.facts[idx]
    }

    pub fn has_fact(&self, rel: RelId, args: &[Val]) -> bool {
        // Cheap membership without allocating: probe the positional index.
        match self.by_rel_pos_val.get(&(rel, 0, args[0])) {
            None => false,
            Some(idxs) => idxs.iter().any(|&i| self.facts[i].args == args),
        }
    }

    /// Indices of facts of relation `rel`.
    pub fn facts_of_rel(&self, rel: RelId) -> &[usize] {
        &self.by_rel[rel.index()]
    }

    /// Indices of facts with value `v` at position `pos` of relation `rel`.
    pub fn facts_with(&self, rel: RelId, pos: u32, v: Val) -> &[usize] {
        self.by_rel_pos_val.get(&(rel, pos, v)).map_or(&[], |x| x)
    }

    /// Indices of facts containing `v` anywhere.
    pub fn facts_of_val(&self, v: Val) -> &[usize] {
        &self.by_val[v.index()]
    }

    /// Relations that actually have at least one fact.
    pub fn populated_rels(&self) -> Vec<RelId> {
        self.schema
            .rel_ids()
            .filter(|r| !self.by_rel[r.index()].is_empty())
            .collect()
    }

    /// The entities: elements `e` with `η(e) ∈ D`.
    pub fn entities(&self) -> Vec<Val> {
        let eta = self.schema.entity_rel_required();
        self.by_rel[eta.index()]
            .iter()
            .map(|&i| self.facts[i].args[0])
            .collect()
    }

    /// Mark an element as an entity (insert `η(v)`).
    pub fn add_entity(&mut self, v: Val) -> bool {
        let eta = self.schema.entity_rel_required();
        self.add_fact(eta, vec![v])
    }

    /// Is `η(v) ∈ D`?
    pub fn is_entity(&self, v: Val) -> bool {
        let eta = self.schema.entity_rel_required();
        self.has_fact(eta, &[v])
    }

    /// Total size `|D|` measured as the number of cells (fact arguments);
    /// the usual yardstick in combined-complexity statements.
    pub fn size_cells(&self) -> usize {
        self.facts.iter().map(|f| f.args.len()).sum()
    }

    /// A 128-bit structural content fingerprint, used as the
    /// database-identity component of homomorphism memo keys
    /// (see [`crate::hom::cache`]).
    ///
    /// The fingerprint covers exactly the structure homomorphism semantics
    /// depends on: the number of interned elements, the relation arities,
    /// and the *set* of facts as index tuples — element and relation names
    /// are not hashed, and fact insertion order does not matter. It is
    /// computed lazily and cached; any mutation ([`Database::value`],
    /// [`Database::add_fact`]) invalidates the cache, and
    /// [`crate::builder::DbBuilder::build`] forces computation so built
    /// databases pay the cost once, up front.
    pub fn fingerprint(&self) -> u128 {
        *self.fingerprint.get_or_init(|| self.compute_fingerprint())
    }

    /// Drop the cached content fingerprint. Every mutator funnels
    /// through here — one invalidation point means the delta/lineage
    /// machinery in [`crate::delta`] cannot be bypassed by a future
    /// mutation path.
    fn invalidate_fingerprint(&mut self) {
        self.fingerprint = std::sync::OnceLock::new();
    }

    /// Seed the fingerprint cache with a value the lineage registry
    /// already computed for this exact content, skipping the full
    /// rehash. Debug builds cross-check against a real recompute.
    pub(crate) fn prime_fingerprint(&mut self, fp: u128) {
        // Already cached with the same value (label-only deltas never
        // invalidate): nothing to seed, and debug builds skip the
        // cross-check recompute so fingerprint_computations() stays
        // flat across repeated label-only applies.
        if self.fingerprint.get() == Some(&fp) {
            return;
        }
        debug_assert_eq!(
            self.compute_fingerprint(),
            fp,
            "lineage-primed fingerprint does not match database content"
        );
        self.fingerprint = std::sync::OnceLock::from(fp);
    }

    fn compute_fingerprint(&self) -> u128 {
        FP_COMPUTES.fetch_add(1, Ordering::Relaxed);
        let mix = mix64;
        let mut lo = mix(0xA076_1D64_78BD_642F ^ self.val_names.len() as u64);
        let mut hi = mix(0xE703_7ED1_A0B4_28DB ^ self.schema.rel_count() as u64);
        for r in self.schema.rel_ids() {
            lo = mix(lo ^ self.schema.arity(r) as u64);
            hi = mix(hi.rotate_left(7) ^ self.schema.arity(r) as u64);
        }
        // Facts form a set; combine per-fact hashes commutatively so the
        // fingerprint is independent of insertion order.
        let (mut sum, mut xor) = (0u64, 0u64);
        for f in &self.facts {
            let mut h = mix(0x9E37_79B9_7F4A_7C15 ^ f.rel.index() as u64);
            for &a in &f.args {
                h = mix(h ^ a.index() as u64);
            }
            sum = sum.wrapping_add(h);
            xor ^= h.rotate_left((h % 63) as u32);
        }
        lo = mix(lo ^ sum);
        hi = mix(hi ^ xor);
        ((hi as u128) << 64) | lo as u128
    }

    /// Render a fact for debugging / the text format.
    pub fn fact_to_string(&self, f: &Fact) -> String {
        let args: Vec<&str> = f.args.iter().map(|&a| self.val_name(a)).collect();
        format!("{}({})", self.schema.name(f.rel), args.join(","))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database[{} elems, {} facts]",
            self.dom_size(),
            self.fact_count()
        )?;
        let mut lines: Vec<String> = self.facts.iter().map(|x| self.fact_to_string(x)).collect();
        lines.sort();
        for l in lines {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn add_facts_and_dedup() {
        let mut d = Database::new(graph_schema());
        assert!(d.add_named_fact("E", &["a", "b"]));
        assert!(!d.add_named_fact("E", &["a", "b"]));
        assert!(d.add_named_fact("E", &["b", "a"]));
        assert_eq!(d.fact_count(), 2);
        assert_eq!(d.dom_size(), 2);
        assert_eq!(d.size_cells(), 4);
    }

    #[test]
    fn indexes_are_consistent() {
        let mut d = Database::new(graph_schema());
        d.add_named_fact("E", &["a", "b"]);
        d.add_named_fact("E", &["a", "c"]);
        d.add_named_fact("E", &["b", "c"]);
        let e = d.schema().rel_by_name("E").unwrap();
        let a = d.val_by_name("a").unwrap();
        let c = d.val_by_name("c").unwrap();
        assert_eq!(d.facts_of_rel(e).len(), 3);
        assert_eq!(d.facts_with(e, 0, a).len(), 2);
        assert_eq!(d.facts_with(e, 1, c).len(), 2);
        assert_eq!(d.facts_of_val(a).len(), 2);
        assert!(d.has_fact(e, &[a, c]));
        assert!(!d.has_fact(e, &[c, a]));
    }

    #[test]
    fn self_loop_counted_once_in_by_val() {
        let mut d = Database::new(graph_schema());
        d.add_named_fact("E", &["a", "a"]);
        let a = d.val_by_name("a").unwrap();
        assert_eq!(d.facts_of_val(a).len(), 1);
    }

    #[test]
    fn entities_roundtrip() {
        let mut d = Database::new(graph_schema());
        d.add_named_fact("E", &["a", "b"]);
        let a = d.val_by_name("a").unwrap();
        let b = d.val_by_name("b").unwrap();
        d.add_entity(a);
        assert!(d.is_entity(a));
        assert!(!d.is_entity(b));
        assert_eq!(d.entities(), vec![a]);
    }

    #[test]
    fn active_dom_excludes_isolated_values() {
        let mut d = Database::new(graph_schema());
        let a = d.value("a");
        let _lonely = d.value("z");
        d.add_entity(a);
        assert_eq!(d.active_dom(), vec![a]);
        assert_eq!(d.dom_size(), 2);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut d = Database::new(graph_schema());
        d.add_named_fact("E", &["a", "b"]);
        let fp1 = d.fingerprint();
        assert_eq!(fp1, d.fingerprint(), "stable across calls");

        // Mutation changes it.
        d.add_named_fact("E", &["b", "a"]);
        let fp2 = d.fingerprint();
        assert_ne!(fp1, fp2);

        // Same facts in a different insertion order: same fingerprint.
        let mut d2 = Database::new(graph_schema());
        d2.value("a");
        d2.value("b");
        d2.add_named_fact("E", &["b", "a"]);
        d2.add_named_fact("E", &["a", "b"]);
        assert_eq!(d2.fingerprint(), fp2);

        // An extra interned (even isolated) element changes it: dom size
        // is part of homomorphism semantics.
        d2.value("z");
        assert_ne!(d2.fingerprint(), fp2);
    }

    #[test]
    fn remove_fact_keeps_indexes_consistent() {
        let mut d = Database::new(graph_schema());
        d.add_named_fact("E", &["a", "b"]);
        d.add_named_fact("E", &["a", "c"]);
        d.add_named_fact("E", &["b", "c"]);
        let e = d.schema().rel_by_name("E").unwrap();
        let a = d.val_by_name("a").unwrap();
        let b = d.val_by_name("b").unwrap();
        let c = d.val_by_name("c").unwrap();

        // Remove a middle fact: the last fact backfills its slot.
        assert!(d.remove_fact(e, &[a, c]));
        assert!(!d.remove_fact(e, &[a, c]), "second removal is a no-op");
        assert_eq!(d.fact_count(), 2);
        assert!(d.has_fact(e, &[a, b]));
        assert!(d.has_fact(e, &[b, c]));
        assert!(!d.has_fact(e, &[a, c]));
        assert_eq!(d.facts_of_rel(e).len(), 2);
        assert_eq!(d.facts_with(e, 0, a).len(), 1);
        assert_eq!(d.facts_with(e, 1, c).len(), 1);
        assert_eq!(d.facts_of_val(a).len(), 1);
        assert_eq!(d.facts_of_val(c).len(), 1);
        for &i in d.facts_of_val(b) {
            assert!(d.fact(i).args.contains(&b), "stale by_val entry");
        }

        // Removal then re-addition restores the original fingerprint.
        let fp = d.fingerprint();
        d.add_fact(e, vec![a, c]);
        d.remove_fact(e, &[a, c]);
        assert_eq!(d.fingerprint(), fp);
    }

    #[test]
    fn remove_entity_fact_preserves_entity_order() {
        let mut d = Database::new(graph_schema());
        for name in ["a", "b", "c", "d"] {
            let v = d.value(name);
            d.add_entity(v);
        }
        let eta = d.schema().entity_rel_required();
        let b = d.val_by_name("b").unwrap();
        assert!(d.remove_fact(eta, &[b]));
        let names: Vec<&str> = d.entities().iter().map(|&v| d.val_name(v)).collect();
        assert_eq!(names, ["a", "c", "d"], "relative entity order preserved");
        assert!(!d.is_entity(b));
    }

    #[test]
    fn remove_self_loop_cleans_by_val() {
        let mut d = Database::new(graph_schema());
        d.add_named_fact("E", &["a", "a"]);
        d.add_named_fact("E", &["a", "b"]);
        let e = d.schema().rel_by_name("E").unwrap();
        let a = d.val_by_name("a").unwrap();
        assert!(d.remove_fact(e, &[a, a]));
        assert_eq!(d.facts_of_val(a).len(), 1);
        assert_eq!(d.facts_with(e, 0, a).len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut d = Database::new(graph_schema());
        let a = d.value("a");
        let e = d.schema().rel_by_name("E").unwrap();
        d.add_fact(e, vec![a]);
    }
}
