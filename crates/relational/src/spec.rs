//! A portable, serde-friendly representation of schemas, databases, and
//! training databases, plus a small text format.
//!
//! The in-memory [`Database`] uses interned ids and derived indexes that
//! make direct serialization awkward; [`DatabaseSpec`] is the stable
//! interchange form used by the examples and the repro harness.
//!
//! Text format (one item per line, `#` comments):
//!
//! ```text
//! rel edge/2
//! fact edge(a,b)
//! fact edge(b,c)
//! entity a +
//! entity c -
//! ```

use crate::database::Database;
use crate::labeling::{Label, Labeling, TrainingDb};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Portable form of a (training) database.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseSpec {
    /// `(name, arity)` pairs, not including the entity symbol `η`.
    pub relations: Vec<(String, usize)>,
    /// Facts as `(relation name, argument names)`.
    pub facts: Vec<(String, Vec<String>)>,
    /// Entities with optional labels (`None` for evaluation databases).
    pub entities: Vec<(String, Option<bool>)>,
}

/// Errors from parsing the text format or instantiating a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "database spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl DatabaseSpec {
    /// Build the entity schema declared by this spec.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::entity_schema();
        for (name, arity) in &self.relations {
            s.add_relation(name, *arity);
        }
        s
    }

    /// Instantiate as a plain database (labels, if any, are ignored).
    pub fn to_database(&self) -> Result<Database, SpecError> {
        let schema = self.schema();
        let mut db = Database::new(schema);
        for (rel, args) in &self.facts {
            let rel_id = db
                .schema()
                .rel_by_name(rel)
                .ok_or_else(|| SpecError(format!("unknown relation {rel:?}")))?;
            if db.schema().arity(rel_id) != args.len() {
                return Err(SpecError(format!(
                    "arity mismatch for {rel:?}: got {} args",
                    args.len()
                )));
            }
            let vals: Vec<_> = args.iter().map(|a| db.value(a)).collect();
            db.add_fact(rel_id, vals);
        }
        for (name, _) in &self.entities {
            let v = db.value(name);
            db.add_entity(v);
        }
        Ok(db)
    }

    /// Instantiate as a training database; every entity must carry a label.
    pub fn to_training(&self) -> Result<TrainingDb, SpecError> {
        let db = self.to_database()?;
        let mut labeling = Labeling::new();
        for (name, label) in &self.entities {
            let l = label.ok_or_else(|| SpecError(format!("entity {name:?} has no label")))?;
            let v = db.val_by_name(name).unwrap();
            labeling.set(v, if l { Label::Positive } else { Label::Negative });
        }
        Ok(TrainingDb::new(db, labeling))
    }

    /// Extract a spec back out of a database (inverse of `to_database`).
    pub fn from_database(db: &Database, labeling: Option<&Labeling>) -> DatabaseSpec {
        let schema = db.schema();
        let eta = schema.entity_rel();
        let relations = schema
            .rel_ids()
            .filter(|&r| Some(r) != eta)
            .map(|r| (schema.name(r).to_string(), schema.arity(r)))
            .collect();
        let facts = db
            .facts()
            .iter()
            .filter(|f| Some(f.rel) != eta)
            .map(|f| {
                (
                    schema.name(f.rel).to_string(),
                    f.args.iter().map(|&a| db.val_name(a).to_string()).collect(),
                )
            })
            .collect();
        let entities = db
            .entities()
            .into_iter()
            .map(|e| {
                (
                    db.val_name(e).to_string(),
                    labeling
                        .and_then(|l| l.try_get(e))
                        .map(|l| l == Label::Positive),
                )
            })
            .collect();
        DatabaseSpec {
            relations,
            facts,
            entities,
        }
    }

    /// Parse the line-oriented text format.
    pub fn parse(text: &str) -> Result<DatabaseSpec, SpecError> {
        let mut spec = DatabaseSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| SpecError(format!("line {}: {msg}", lineno + 1));
            let (kind, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| err("expected `rel`, `fact`, or `entity`"))?;
            let rest = rest.trim();
            match kind {
                "rel" => {
                    let (name, arity) = rest
                        .split_once('/')
                        .ok_or_else(|| err("expected name/arity"))?;
                    let arity: usize = arity.parse().map_err(|_| err("bad arity"))?;
                    spec.relations.push((name.to_string(), arity));
                }
                "fact" => {
                    let open = rest.find('(').ok_or_else(|| err("expected `('`"))?;
                    if !rest.ends_with(')') {
                        return Err(err("expected `)`"));
                    }
                    let name = rest[..open].trim().to_string();
                    let args: Vec<String> = rest[open + 1..rest.len() - 1]
                        .split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect();
                    if args.is_empty() {
                        return Err(err("facts need at least one argument"));
                    }
                    spec.facts.push((name, args));
                }
                "entity" => {
                    let mut parts = rest.split_whitespace();
                    let name = parts.next().ok_or_else(|| err("entity needs a name"))?;
                    let label = match parts.next() {
                        None => None,
                        Some("+") => Some(true),
                        Some("-") => Some(false),
                        Some(other) => {
                            return Err(err(&format!("bad label {other:?} (use + or -)")))
                        }
                    };
                    spec.entities.push((name.to_string(), label));
                }
                other => return Err(err(&format!("unknown directive {other:?}"))),
            }
        }
        Ok(spec)
    }

    /// Render in the text format (inverse of [`DatabaseSpec::parse`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, arity) in &self.relations {
            out.push_str(&format!("rel {name}/{arity}\n"));
        }
        for (rel, args) in &self.facts {
            out.push_str(&format!("fact {rel}({})\n", args.join(",")));
        }
        for (name, label) in &self.entities {
            match label {
                None => out.push_str(&format!("entity {name}\n")),
                Some(true) => out.push_str(&format!("entity {name} +\n")),
                Some(false) => out.push_str(&format!("entity {name} -\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a toy instance
rel edge/2
fact edge(a,b)
fact edge(b,c)
entity a +
entity c -
entity b
";

    #[test]
    fn parse_and_instantiate() {
        let spec = DatabaseSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.relations, vec![("edge".to_string(), 2)]);
        assert_eq!(spec.facts.len(), 2);
        let db = spec.to_database().unwrap();
        assert_eq!(db.entities().len(), 3);
        assert_eq!(db.fact_count(), 2 + 3); // edges + eta facts
    }

    #[test]
    fn training_requires_labels() {
        let spec = DatabaseSpec::parse(SAMPLE).unwrap();
        assert!(spec.to_training().is_err());
        let labeled = DatabaseSpec::parse(&SAMPLE.replace("entity b", "entity b +")).unwrap();
        let t = labeled.to_training().unwrap();
        assert_eq!(t.positives().len(), 2);
        assert_eq!(t.negatives().len(), 1);
    }

    #[test]
    fn text_roundtrip() {
        let spec = DatabaseSpec::parse(SAMPLE).unwrap();
        let again = DatabaseSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn from_database_roundtrip() {
        let spec = DatabaseSpec::parse(SAMPLE).unwrap();
        let db = spec.to_database().unwrap();
        let back = DatabaseSpec::from_database(&db, None);
        let db2 = back.to_database().unwrap();
        assert_eq!(db.fact_count(), db2.fact_count());
        assert_eq!(db.dom_size(), db2.dom_size());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = DatabaseSpec::parse("rel broken").unwrap_err();
        assert!(e.0.contains("line 1"), "{e}");
        let e = DatabaseSpec::parse("rel r/1\nentity x ?").unwrap_err();
        assert!(e.0.contains("line 2"), "{e}");
        assert!(DatabaseSpec::parse("fact f()").is_err());
        assert!(DatabaseSpec::parse("bogus x").is_err());
    }

    #[test]
    fn unknown_relation_rejected() {
        let spec = DatabaseSpec::parse("fact nosuch(a)").unwrap();
        assert!(spec.to_database().is_err());
    }

    #[test]
    fn serde_json_shape() {
        // The derives exist for interop; check they serialize stably via
        // the Debug-equality of a clone through serde_round (using the
        // text format as the actual medium keeps us dependency-light).
        let spec = DatabaseSpec::parse(SAMPLE).unwrap();
        let clone = spec.clone();
        assert_eq!(spec, clone);
    }
}
