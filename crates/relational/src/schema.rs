//! Schemas and entity schemas (§2, §3 of the paper).

use crate::ids::RelId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The conventional name of the distinguished entity relation `η`.
pub const ENTITY_REL_NAME: &str = "eta";

/// A relational schema: named relation symbols with fixed arities, plus an
/// optional distinguished unary *entity* symbol `η` (making it an entity
/// schema in the sense of Kimelfeld–Ré / §3 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    rels: Vec<RelInfo>,
    #[serde(skip)]
    by_name: HashMap<String, RelId>,
    entity: Option<RelId>,
}

#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct RelInfo {
    name: String,
    arity: usize,
}

impl Schema {
    /// An empty schema with no relations.
    pub fn new() -> Schema {
        Schema {
            rels: Vec::new(),
            by_name: HashMap::new(),
            entity: None,
        }
    }

    /// An entity schema: starts with the unary `η` relation already present.
    pub fn entity_schema() -> Schema {
        let mut s = Schema::new();
        let eta = s.add_relation(ENTITY_REL_NAME, 1);
        s.entity = Some(eta);
        s
    }

    /// Add a relation symbol. Panics if the name is already taken or the
    /// arity is zero (the paper requires `k > 0`).
    pub fn add_relation(&mut self, name: &str, arity: usize) -> RelId {
        assert!(arity > 0, "relation arity must be positive");
        assert!(
            !self.by_name.contains_key(name),
            "duplicate relation symbol {name:?}"
        );
        let id = RelId(self.rels.len() as u32);
        self.rels.push(RelInfo {
            name: name.to_string(),
            arity,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Designate an existing unary relation as the entity symbol.
    pub fn set_entity(&mut self, rel: RelId) {
        assert_eq!(self.arity(rel), 1, "entity symbol must be unary");
        self.entity = Some(rel);
    }

    /// The distinguished entity symbol `η`, if this is an entity schema.
    pub fn entity_rel(&self) -> Option<RelId> {
        self.entity
    }

    /// The entity symbol, panicking when absent. Most of the separability
    /// API requires an entity schema; this gives those call sites a crisp
    /// failure.
    pub fn entity_rel_required(&self) -> RelId {
        self.entity
            .expect("schema has no distinguished entity relation")
    }

    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.rels.len() as u32).map(RelId)
    }

    pub fn arity(&self, rel: RelId) -> usize {
        self.rels[rel.index()].arity
    }

    pub fn name(&self, rel: RelId) -> &str {
        &self.rels[rel.index()].name
    }

    pub fn rel_by_name(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Maximum arity over all relations (the FPT parameter of Cor 4.2).
    pub fn max_arity(&self) -> usize {
        self.rels.iter().map(|r| r.arity).max().unwrap_or(0)
    }

    /// Rebuild the name index (needed after deserialization, which skips
    /// the derived map).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .rels
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), RelId(i as u32)))
            .collect();
    }
}

impl Default for Schema {
    fn default() -> Schema {
        Schema::new()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", r.name, r.arity)?;
            if self.entity == Some(RelId(i as u32)) {
                write!(f, " (η)")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_schema_has_eta() {
        let s = Schema::entity_schema();
        let eta = s.entity_rel().unwrap();
        assert_eq!(s.name(eta), ENTITY_REL_NAME);
        assert_eq!(s.arity(eta), 1);
        assert_eq!(s.rel_by_name(ENTITY_REL_NAME), Some(eta));
    }

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::entity_schema();
        let r = s.add_relation("R", 2);
        let t = s.add_relation("T", 3);
        assert_eq!(s.rel_count(), 3);
        assert_eq!(s.arity(r), 2);
        assert_eq!(s.arity(t), 3);
        assert_eq!(s.max_arity(), 3);
        assert_eq!(s.rel_by_name("T"), Some(t));
        assert_eq!(s.rel_by_name("missing"), None);
        assert_eq!(s.to_string(), "eta/1 (η), R/2, T/3");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut s = Schema::new();
        s.add_relation("R", 1);
        s.add_relation("R", 2);
    }

    #[test]
    #[should_panic(expected = "unary")]
    fn non_unary_entity_panics() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2);
        s.set_entity(r);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut clone = s.clone();
        clone.by_name.clear();
        assert_eq!(clone.rel_by_name("E"), None);
        clone.rebuild_index();
        assert_eq!(clone.rel_by_name("E"), s.rel_by_name("E"));
    }
}
