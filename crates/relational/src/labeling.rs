//! Labelings and training databases (§3 of the paper).

use crate::database::Database;
use crate::ids::Val;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A ±1 example label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    Positive,
    Negative,
}

impl Label {
    /// The paper's numeric convention: +1 / -1.
    pub fn to_i32(self) -> i32 {
        match self {
            Label::Positive => 1,
            Label::Negative => -1,
        }
    }

    pub fn from_sign(x: i32) -> Label {
        if x >= 0 {
            Label::Positive
        } else {
            Label::Negative
        }
    }

    pub fn flip(self) -> Label {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }
}

/// A labeling `λ : η(D) → {1, -1}`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Labeling {
    map: HashMap<Val, Label>,
}

impl Labeling {
    pub fn new() -> Labeling {
        Labeling::default()
    }

    pub fn set(&mut self, e: Val, label: Label) {
        self.map.insert(e, label);
    }

    /// The label of entity `e`.
    ///
    /// # Panics
    /// Panics for unlabeled entities: a training database must label all of
    /// `η(D)` (checked in [`TrainingDb::new`]).
    pub fn get(&self, e: Val) -> Label {
        *self
            .map
            .get(&e)
            .unwrap_or_else(|| panic!("unlabeled entity {e:?}"))
    }

    pub fn try_get(&self, e: Val) -> Option<Label> {
        self.map.get(&e).copied()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of entities on which two labelings disagree (both must label
    /// the same set).
    pub fn disagreement(&self, other: &Labeling) -> usize {
        self.map
            .iter()
            .filter(|(e, l)| other.get(**e) != **l)
            .count()
    }
}

impl FromIterator<(Val, Label)> for Labeling {
    fn from_iter<I: IntoIterator<Item = (Val, Label)>>(iter: I) -> Labeling {
        Labeling {
            map: iter.into_iter().collect(),
        }
    }
}

/// A training database `(D, λ)`: a database over an entity schema together
/// with a total labeling of its entities.
#[derive(Clone, Debug)]
pub struct TrainingDb {
    pub db: Database,
    pub labeling: Labeling,
}

impl TrainingDb {
    /// # Panics
    /// Panics if some entity of `db` is unlabeled (a labeling must
    /// partition `η(D)`), or if the schema has no entity relation.
    pub fn new(db: Database, labeling: Labeling) -> TrainingDb {
        for e in db.entities() {
            if labeling.try_get(e).is_none() {
                panic!("unlabeled entity {:?} ({})", e, db.val_name(e));
            }
        }
        TrainingDb { db, labeling }
    }

    pub fn entities(&self) -> Vec<Val> {
        self.db.entities()
    }

    pub fn positives(&self) -> Vec<Val> {
        self.db
            .entities()
            .into_iter()
            .filter(|&e| self.labeling.get(e) == Label::Positive)
            .collect()
    }

    pub fn negatives(&self) -> Vec<Val> {
        self.db
            .entities()
            .into_iter()
            .filter(|&e| self.labeling.get(e) == Label::Negative)
            .collect()
    }

    /// All (positive, negative) entity pairs — the pairs every separability
    /// test in the paper quantifies over.
    pub fn opposing_pairs(&self) -> Vec<(Val, Val)> {
        let pos = self.positives();
        let neg = self.negatives();
        let mut out = Vec::with_capacity(pos.len() * neg.len());
        for &p in &pos {
            for &n in &neg {
                out.push((p, n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DbBuilder;
    use crate::schema::Schema;

    #[test]
    fn label_arithmetic() {
        assert_eq!(Label::Positive.to_i32(), 1);
        assert_eq!(Label::Negative.to_i32(), -1);
        assert_eq!(Label::from_sign(0), Label::Positive);
        assert_eq!(Label::from_sign(-3), Label::Negative);
        assert_eq!(Label::Positive.flip(), Label::Negative);
    }

    #[test]
    fn disagreement_counts() {
        let mut a = Labeling::new();
        let mut b = Labeling::new();
        for i in 0..4 {
            a.set(Val(i), Label::Positive);
            b.set(
                Val(i),
                if i < 2 {
                    Label::Positive
                } else {
                    Label::Negative
                },
            );
        }
        assert_eq!(a.disagreement(&b), 2);
        assert_eq!(b.disagreement(&a), 2);
    }

    #[test]
    fn opposing_pairs_cross_product() {
        let t = DbBuilder::new(Schema::entity_schema())
            .positive("p1")
            .positive("p2")
            .negative("n1")
            .training();
        assert_eq!(t.opposing_pairs().len(), 2);
        assert_eq!(t.positives().len(), 2);
        assert_eq!(t.negatives().len(), 1);
    }
}
