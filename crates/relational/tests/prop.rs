//! Property tests for the relational substrate: the homomorphism solver
//! against brute force, isomorphism relation laws, product projections,
//! and the text format.

use proptest::prelude::*;
use relational::hom::brute_force_exists;
use relational::hom::par::{par_all_pairs, par_map};
use relational::iso::{isomorphic, same_orbit};
use relational::spec::DatabaseSpec;
use relational::{
    exists_cached, homomorphism_exists, pointed_power, Database, HomCache, Schema, Val,
};

/// Build a graph database from an edge list over `n` nodes, with the
/// first `ents` nodes marked as entities.
fn graph(n: usize, edges: &[(usize, usize)], ents: usize) -> Database {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    let mut db = Database::new(s);
    let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
    let e = db.schema().rel_by_name("E").unwrap();
    for &(a, b) in edges {
        db.add_fact(e, vec![vals[a % n], vals[b % n]]);
    }
    for &v in vals.iter().take(ents) {
        db.add_entity(v);
    }
    db
}

/// Strategy: a small digraph (n nodes, up to 2n edges).
fn small_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..5).prop_flat_map(|n| (Just(n), proptest::collection::vec((0..n, 0..n), 0..(2 * n))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hom_solver_matches_brute_force((n1, e1) in small_graph(), (n2, e2) in small_graph()) {
        let d1 = graph(n1, &e1, 0);
        let d2 = graph(n2, &e2, 0);
        prop_assert_eq!(
            homomorphism_exists(&d1, &d2, &[]),
            brute_force_exists(&d1, &d2, &[])
        );
        // Pointed variant.
        let a = Val(0);
        let b = Val(0);
        prop_assert_eq!(
            homomorphism_exists(&d1, &d2, &[(a, b)]),
            brute_force_exists(&d1, &d2, &[(a, b)])
        );
    }

    #[test]
    fn hom_is_reflexive_and_transitive_on_witnesses((n, e) in small_graph()) {
        let d = graph(n, &e, 0);
        // Identity: D -> D always.
        prop_assert!(homomorphism_exists(&d, &d, &[]));
        // Every found hom is valid (checked inside find via debug, but
        // re-verify explicitly).
        if let Some(h) = relational::find_homomorphism(&d, &d, &[]) {
            for f in d.facts() {
                let args: Vec<Val> = f.args.iter().map(|a| h[a]).collect();
                prop_assert!(d.has_fact(f.rel, &args));
            }
        }
    }

    #[test]
    fn iso_is_an_equivalence((n, e) in small_graph()) {
        let d = graph(n, &e, 0);
        // Reflexive.
        prop_assert!(isomorphic(&d, &d, &[]));
        // Orbit relation is symmetric.
        for a in 0..n.min(3) {
            for b in 0..n.min(3) {
                prop_assert_eq!(
                    same_orbit(&d, Val(a as u32), Val(b as u32)),
                    same_orbit(&d, Val(b as u32), Val(a as u32))
                );
            }
        }
    }

    #[test]
    fn iso_implies_hom_both_ways((n, e) in small_graph(), perm_seed in 0usize..24) {
        // Build an isomorphic copy by permuting names.
        let d = graph(n, &e, 0);
        let mut order: Vec<usize> = (0..n).collect();
        // A cheap permutation from the seed.
        order.rotate_left(perm_seed % n);
        if perm_seed % 2 == 0 && n >= 2 {
            order.swap(0, 1);
        }
        let e2: Vec<(usize, usize)> = e.iter().map(|&(a, b)| (order[a % n], order[b % n])).collect();
        let d2 = graph(n, &e2, 0);
        prop_assert!(isomorphic(&d, &d2, &[]));
        prop_assert!(homomorphism_exists(&d, &d2, &[]));
        prop_assert!(homomorphism_exists(&d2, &d, &[]));
    }

    #[test]
    fn product_projects_to_every_factor((n, e) in small_graph(), i in 0usize..4, j in 0usize..4) {
        let d = graph(n, &e, 0);
        let a = Val((i % n) as u32);
        let b = Val((j % n) as u32);
        // Skip degenerate no-fact cases (no usable point structure).
        if let Ok((p, pt)) = pointed_power(&d, &[a, b], 100_000) {
            prop_assert!(homomorphism_exists(&p, &d, &[(pt, a)]));
            prop_assert!(homomorphism_exists(&p, &d, &[(pt, b)]));
            // The diagonal embedding u ↦ (u, u) always exists when the
            // two points coincide.
            if a == b {
                prop_assert!(homomorphism_exists(&d, &p, &[(a, pt)]));
            }
        }
    }

    #[test]
    fn spec_roundtrip((n, e) in small_graph(), ents in 0usize..3) {
        let d = graph(n, &e, ents.min(n));
        let spec = DatabaseSpec::from_database(&d, None);
        let text = spec.to_text();
        let spec2 = DatabaseSpec::parse(&text).unwrap();
        let d2 = spec2.to_database().unwrap();
        prop_assert_eq!(d.fact_count(), d2.fact_count());
        prop_assert_eq!(d.entities().len(), d2.entities().len());
        // Semantically identical: isomorphic via the identity naming.
        prop_assert!(isomorphic(&d, &d2, &[]) || d.dom_size() != d2.dom_size());
    }

    #[test]
    fn cached_and_parallel_paths_agree_with_sequential(
        (n1, e1) in small_graph(),
        (n2, e2) in small_graph(),
        fixes in proptest::collection::vec((0usize..6, 0usize..6), 0..3),
    ) {
        let d1 = graph(n1, &e1, 0);
        let d2 = graph(n2, &e2, 0);
        // Random fixed pairs, deliberately allowed to fall outside either
        // domain (the out-of-domain convention must agree everywhere) and
        // to contradict each other.
        let fixed: Vec<(Val, Val)> =
            fixes.iter().map(|&(a, b)| (Val(a as u32), Val(b as u32))).collect();
        let expected = homomorphism_exists(&d1, &d2, &fixed);
        prop_assert_eq!(expected, brute_force_exists(&d1, &d2, &fixed));

        // A private cache answers identically on first computation and
        // again from the memo table; the global cache agrees too.
        let cache = HomCache::new();
        prop_assert_eq!(expected, cache.exists(&d1, &d2, &fixed));
        prop_assert_eq!(expected, cache.exists(&d1, &d2, &fixed));
        let contradictory = {
            let mut srcs: Vec<Val> = fixed.iter().map(|p| p.0).collect();
            srcs.sort_unstable();
            srcs.dedup();
            srcs.len() != fixed.len()
        };
        if !contradictory {
            // Contradictions short-circuit uncached; everything else must
            // have been memoized by now.
            prop_assert!(cache.hits() >= 1);
        }
        prop_assert_eq!(expected, exists_cached(&d1, &d2, &fixed));
        prop_assert_eq!(expected, exists_cached(&d1, &d2, &fixed));

        // The parallel drivers see the same answers as sequential loops.
        let pairs: Vec<(Val, Val)> = (0..n1.min(3) as u32)
            .flat_map(|a| (0..n2.min(3) as u32).map(move |b| (Val(a), Val(b))))
            .collect();
        prop_assert_eq!(
            par_all_pairs(&pairs, |a, b| cache.exists(&d1, &d2, &[(a, b)])),
            pairs.iter().all(|&(a, b)| homomorphism_exists(&d1, &d2, &[(a, b)]))
        );
        let seq: Vec<bool> =
            pairs.iter().map(|&(a, b)| homomorphism_exists(&d1, &d2, &[(a, b)])).collect();
        prop_assert_eq!(par_map(&pairs, |&(a, b)| cache.exists(&d1, &d2, &[(a, b)])), seq);
    }

    #[test]
    fn refinement_never_separates_orbit_mates((n, e) in small_graph()) {
        let d = graph(n, &e, 0);
        let colors = relational::iso::refine_colors(&d, &[]);
        for a in 0..n {
            for b in 0..n {
                if same_orbit(&d, Val(a as u32), Val(b as u32)) {
                    prop_assert_eq!(colors[a], colors[b], "colors must be orbit invariants");
                }
            }
        }
    }
}
