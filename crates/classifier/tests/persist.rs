//! `Model::save`/`Model::load` round-trip and corruption behavior,
//! mirroring the all-or-nothing contract of `Engine::load`.

use classifier::Model;
use cq::parse::parse_cq;
use linsep::LinearClassifier;
use numeric::qint;
use relational::{DbBuilder, Schema};
use std::fs;
use std::path::Path;

fn schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s.add_relation("T", 3);
    s
}

fn compiled() -> Model {
    let s = schema();
    let stat = cqsep::Statistic::new(vec![
        parse_cq(&s, "q(x) :- eta(x)").unwrap(),
        parse_cq(&s, "q(x) :- eta(x), E(x,y)").unwrap(),
        parse_cq(&s, "q(x) :- eta(x), E(x,y), E(y,x)").unwrap(),
        parse_cq(&s, "q(x) :- eta(x), T(x,y,z), E(y,z)").unwrap(),
        parse_cq(&s, "q(u) :- eta(u), E(u,v)").unwrap(), // dup of feature 1
    ]);
    let cls = LinearClassifier::new(
        "3/2".parse().unwrap(),
        vec![qint(1), qint(2), qint(-1), "1/3".parse().unwrap(), qint(4)],
    );
    Model::compile(&stat, &cls)
}

/// The serving pattern under test: load if a good artifact exists,
/// otherwise compile cold.
fn load_or_compile(path: &Path) -> (Model, bool) {
    match Model::load(path) {
        Some(m) => (m, true),
        None => (compiled(), false),
    }
}

#[test]
fn save_load_round_trip_preserves_model_and_predictions() {
    let dir = tempdir("roundtrip");
    let path = dir.join("model.bin");
    let m = compiled();
    m.save(&path).unwrap();
    let loaded = Model::load(&path).expect("saved model loads");
    assert_eq!(m, loaded);
    assert_eq!(m.trie_nodes(), loaded.trie_nodes());
    assert_eq!(m.compiled_dimension(), loaded.compiled_dimension());

    // Loaded model predicts identically.
    let d = DbBuilder::new(schema())
        .fact("E", &["a", "b"])
        .fact("E", &["b", "a"])
        .fact("T", &["a", "b", "c"])
        .fact("E", &["b", "c"])
        .entity("a")
        .entity("b")
        .entity("c")
        .build();
    let engine = engine::Engine::new();
    let (orig, _) = m.classify_with(&engine, &d);
    let (redo, _) = loaded.classify_with(&engine, &d);
    for e in d.entities() {
        assert_eq!(orig.get(e), redo.get(e));
    }
}

#[test]
fn missing_file_falls_back_to_cold_compile() {
    let dir = tempdir("missing");
    let (m, warm) = load_or_compile(&dir.join("nope.bin"));
    assert!(!warm);
    assert_eq!(m, compiled());
}

#[test]
fn every_truncation_falls_back_to_cold_compile() {
    let dir = tempdir("truncate");
    let path = dir.join("model.bin");
    let m = compiled();
    m.save(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    // Step through prefixes (stride keeps the test fast; boundaries
    // near the start are covered exhaustively).
    for len in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(7)) {
        fs::write(&path, &bytes[..len]).unwrap();
        let (got, warm) = load_or_compile(&path);
        assert!(!warm, "truncation at {len} must not load");
        assert_eq!(got, m);
    }
}

#[test]
fn corrupt_bytes_fall_back_to_cold_compile() {
    let dir = tempdir("corrupt");
    let path = dir.join("model.bin");
    let m = compiled();
    m.save(&path).unwrap();
    let good = fs::read(&path).unwrap();

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    fs::write(&path, &bad).unwrap();
    assert!(Model::load(&path).is_none());

    // Trailing garbage: count fields and payload disagree.
    let mut bad = good.clone();
    bad.push(0xAB);
    fs::write(&path, &bad).unwrap();
    assert!(Model::load(&path).is_none());

    // Restored intact file loads again.
    fs::write(&path, &good).unwrap();
    let (got, warm) = load_or_compile(&path);
    assert!(warm);
    assert_eq!(got, m);
}

#[test]
fn save_is_atomic_no_tmp_left_behind() {
    let dir = tempdir("atomic");
    let path = dir.join("model.bin");
    compiled().save(&path).unwrap();
    assert!(path.exists());
    assert!(!dir.join("model.bin.tmp").exists());
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("classifier-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}
