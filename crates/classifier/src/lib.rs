//! Compiled classifier artifact: a trained statistic + linear
//! classifier compiled into a persistable [`Model`] for batch serving.
//!
//! The naive serving path re-runs one full homomorphism search per
//! (feature, entity) pair, so cost scales as features × entities with
//! zero sharing. Compilation restructures the feature bank:
//!
//! 1. **Core-dedup** ([`cq::dedup_by_core`]): equivalent features have
//!    identical indicator columns, so each equivalence class keeps one
//!    core and its members' classifier weights are *folded* onto it —
//!    predictions are provably unchanged.
//! 2. **Shared-prefix trie**: the deduplicated cores are laid out as
//!    canonical atom paths in a prefix-sharing forest. Evaluating one
//!    entity walks the forest once with a frontier of partial
//!    homomorphisms: shared prefixes are mapped once and extended per
//!    branch, and a prefix that fails to map prunes its whole subtree
//!    (see [`trie`]'s module docs for the invariants).
//!
//! A [`Model`] persists via [`Model::save`]/[`Model::load`] in the
//! workspace's shared `serde::bytes` wire style — magic-tagged,
//! temp-file+rename, all-or-nothing decode, so a corrupt or truncated
//! file falls back to a clean cold compile.

mod codec;
mod trie;

use cq::Cq;
use cqsep::Statistic;
use engine::{Ctx, Engine, Interrupted};
use linsep::LinearClassifier;
use numeric::Rat;
use relational::{Database, Label, Labeling, Schema, Val};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use trie::Trie;

/// Counters from compiled batch prediction. All additive; the per-task
/// totals are the sum over entities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifierStats {
    /// Entities evaluated.
    pub entities: u64,
    /// Trie nodes entered.
    pub nodes_visited: u64,
    /// Subtrees pruned because their prefix frontier came up empty.
    pub prefix_prunes: u64,
    /// Times a node's frontier was reused by an additional sibling
    /// branch (children beyond the first served from shared work).
    pub reuse_hits: u64,
    /// Partial assignments materialized after projection and dedup.
    pub frontier_assignments: u64,
    /// Per-feature exact homomorphism checks taken because a frontier
    /// overflowed the cap.
    pub hom_fallbacks: u64,
}

impl ClassifierStats {
    /// Accumulate another batch's counters.
    pub fn merge(&mut self, other: &ClassifierStats) {
        self.entities += other.entities;
        self.nodes_visited += other.nodes_visited;
        self.prefix_prunes += other.prefix_prunes;
        self.reuse_hits += other.reuse_hits;
        self.frontier_assignments += other.frontier_assignments;
        self.hom_fallbacks += other.hom_fallbacks;
    }

    /// One-line human-readable summary.
    pub fn report(&self) -> String {
        format!(
            "entities {} · nodes visited {} · prefix prunes {} · reuse hits {} \
             · frontier assignments {} · hom fallbacks {}",
            self.entities,
            self.nodes_visited,
            self.prefix_prunes,
            self.reuse_hits,
            self.frontier_assignments,
            self.hom_fallbacks
        )
    }
}

/// Frontier width at which the evaluator stops carrying partial
/// assignments down a branch and answers its features by exact
/// homomorphism checks instead. Purely a performance valve —
/// predictions do not depend on it.
pub const DEFAULT_FRONTIER_CAP: usize = 4096;

/// A compiled, persistable classifier: deduplicated feature cores, the
/// weight-folded linear classifier over them, and the shared-prefix
/// evaluation trie.
#[derive(Debug)]
pub struct Model {
    pub(crate) schema: Schema,
    /// Deduplicated feature cores in path-canonical form (free
    /// variable `x0`, variables renamed along the canonical path).
    pub(crate) features: Vec<Cq>,
    /// Original feature index → index into `features`.
    pub(crate) class_of: Vec<usize>,
    /// The classifier with duplicate features' weights folded onto
    /// their class representative (same scores as the original).
    pub(crate) folded: LinearClassifier,
    pub(crate) frontier_cap: usize,
    trie: Trie,
    /// Canonical database + free value per compiled feature, for the
    /// exact-check fallback. Derived, not serialized.
    canon: Vec<(Database, Val)>,
}

impl PartialEq for Model {
    fn eq(&self, other: &Model) -> bool {
        // The trie and canonical databases are derived deterministically
        // from the serialized fields, so comparing those suffices.
        self.schema == other.schema
            && self.features == other.features
            && self.class_of == other.class_of
            && self.folded == other.folded
            && self.frontier_cap == other.frontier_cap
    }
}

impl Model {
    /// Compile a trained statistic and its classifier. Deduplicates the
    /// feature bank by core, folds weights per equivalence class, and
    /// builds the shared-prefix trie.
    ///
    /// # Panics
    /// Panics when the classifier arity does not match the statistic
    /// dimension.
    pub fn compile(statistic: &Statistic, classifier: &LinearClassifier) -> Model {
        assert_eq!(
            statistic.dimension(),
            classifier.arity(),
            "classifier arity must match statistic dimension"
        );
        let schema = match statistic.features.first() {
            Some(q) => q.schema().clone(),
            None => Schema::entity_schema(),
        };
        let dedup = cq::dedup_by_core(&statistic.features);
        // Store cores in path-canonical variable numbering so the trie
        // layout is a pure function of the stored features (save/load
        // rebuilds the identical trie).
        let features: Vec<Cq> = dedup
            .cores
            .iter()
            .map(|core| {
                Cq::new(
                    core.schema().clone(),
                    vec![cq::Var(0)],
                    trie::canonical_path(core),
                )
            })
            .collect();
        let mut weights = vec![Rat::zero(); features.len()];
        for (i, w) in classifier.weights.iter().enumerate() {
            weights[dedup.class_of[i]] += w;
        }
        let folded = LinearClassifier::new(classifier.threshold.clone(), weights);
        Model::from_parts(
            schema,
            features,
            dedup.class_of,
            folded,
            DEFAULT_FRONTIER_CAP,
        )
        .expect("deduplicated features always compile")
    }

    /// Compile a [`cqsep::SeparatorModel`].
    pub fn compile_separator(model: &cqsep::SeparatorModel) -> Model {
        Model::compile(&model.statistic, &model.classifier)
    }

    /// Assemble a model from its serialized fields, rebuilding the
    /// derived trie and canonical databases. `None` when the parts are
    /// inconsistent (wrong arity, out-of-range class, duplicate feature
    /// paths) — the all-or-nothing contract of [`Model::load`].
    pub(crate) fn from_parts(
        schema: Schema,
        features: Vec<Cq>,
        class_of: Vec<usize>,
        folded: LinearClassifier,
        frontier_cap: usize,
    ) -> Option<Model> {
        if folded.arity() != features.len() {
            return None;
        }
        if class_of.iter().any(|&c| c >= features.len()) {
            return None;
        }
        if features.iter().any(|q| !q.is_unary()) {
            return None;
        }
        let trie = Trie::build(&features)?;
        let canon = features
            .iter()
            .map(|q| {
                let (db, frees) = q.canonical_db();
                (db, frees[0])
            })
            .collect();
        Some(Model {
            schema,
            features,
            class_of,
            folded,
            frontier_cap,
            trie,
            canon,
        })
    }

    /// Replace the frontier cap — a memory knob, not a semantics knob:
    /// a feature whose partial-homomorphism frontier outgrows the cap
    /// falls back to the exact per-feature search, so predictions are
    /// identical at every cap.
    pub fn with_frontier_cap(mut self, cap: usize) -> Model {
        assert!(cap >= 1, "frontier cap must be at least 1");
        self.frontier_cap = cap;
        self
    }

    /// The schema the model classifies over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Dimension of the statistic the model was compiled from.
    pub fn original_dimension(&self) -> usize {
        self.class_of.len()
    }

    /// Number of features after core-deduplication.
    pub fn compiled_dimension(&self) -> usize {
        self.features.len()
    }

    /// Nodes in the shared-prefix trie (≤ total atoms of the deduped
    /// bank; the gap is the sharing).
    pub fn trie_nodes(&self) -> usize {
        self.trie.node_count()
    }

    /// ±1 predictions for `entities` of `d`, plus evaluation counters.
    /// Entities stream through in blocks on the engine's worker pool
    /// with an interrupt check between blocks.
    pub fn predict_in(
        &self,
        ctx: &Ctx,
        d: &Database,
        entities: &[Val],
    ) -> Result<(Vec<i32>, ClassifierStats), Interrupted> {
        ctx.check()?;
        const BLOCK: usize = 64;
        let engine = ctx.engine();
        let mut preds = Vec::with_capacity(entities.len());
        let mut stats = ClassifierStats::default();
        for chunk in entities.chunks(BLOCK) {
            let results = engine.par_map(chunk, |&e| {
                let (row, s) = self.eval_one(engine, d, e);
                (self.folded.classify(&row), s)
            });
            for (p, s) in results {
                preds.push(p);
                stats.merge(&s);
            }
            ctx.check()?;
        }
        Ok((preds, stats))
    }

    /// Classify every entity of `d`, as [`cqsep::SeparatorModel::classify`]
    /// does, through the compiled trie.
    pub fn classify_in(
        &self,
        ctx: &Ctx,
        d: &Database,
    ) -> Result<(Labeling, ClassifierStats), Interrupted> {
        let entities = d.entities();
        let (preds, stats) = self.predict_in(ctx, d, &entities)?;
        let labeling = entities
            .into_iter()
            .zip(preds)
            .map(|(e, p)| (e, Label::from_sign(p)))
            .collect();
        Ok((labeling, stats))
    }

    /// [`Model::classify_in`] under an engine's unbounded context.
    pub fn classify_with(&self, engine: &Engine, d: &Database) -> (Labeling, ClassifierStats) {
        self.classify_in(&engine.ctx(), d)
            .expect("unbounded ctx cannot interrupt")
    }

    /// The ±1 feature matrix in the *original* statistic dimension
    /// (duplicate features repeat their class column) — a drop-in,
    /// agreement-testable replacement for `Statistic::apply_in`.
    pub fn apply_in(
        &self,
        ctx: &Ctx,
        d: &Database,
        entities: &[Val],
    ) -> Result<Vec<Vec<i32>>, Interrupted> {
        ctx.check()?;
        const BLOCK: usize = 64;
        let engine = ctx.engine();
        let mut rows = Vec::with_capacity(entities.len());
        for chunk in entities.chunks(BLOCK) {
            rows.extend(engine.par_map(chunk, |&e| {
                let (row, _) = self.eval_one(engine, d, e);
                self.class_of.iter().map(|&c| row[c]).collect::<Vec<i32>>()
            }));
            ctx.check()?;
        }
        Ok(rows)
    }

    /// Evaluate one entity: the deduped ±1 row and its counters.
    fn eval_one(&self, engine: &Engine, d: &Database, e: Val) -> (Vec<i32>, ClassifierStats) {
        let mut truths = vec![false; self.features.len()];
        let mut stats = ClassifierStats {
            entities: 1,
            ..ClassifierStats::default()
        };
        let fallback = |j: u32| {
            let (db, x) = &self.canon[j as usize];
            engine.hom_exists(db, d, &[(*x, e)])
        };
        self.trie
            .eval_entity(d, e, self.frontier_cap, &fallback, &mut truths, &mut stats);
        let row = truths.iter().map(|&t| if t { 1 } else { -1 }).collect();
        (row, stats)
    }

    /// Persist the model to `path` (single file, sibling temp file +
    /// atomic rename, magic `"CQSEPMD1"`).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        serde::bytes::write_atomic(path, &codec::encode(self))
    }

    /// Load a model from `path`. All-or-nothing: a missing, truncated,
    /// or corrupt file yields `None` — callers fall back to a cold
    /// [`Model::compile`].
    pub fn load(path: &Path) -> Option<Model> {
        std::fs::read(path).ok().and_then(codec::decode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse::parse_cq;
    use numeric::qint;
    use relational::DbBuilder;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn q(text: &str) -> Cq {
        parse_cq(&schema(), text).unwrap()
    }

    fn db() -> Database {
        // a → b → c, c → c (self-loop), d isolated.
        DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "c"])
            .entity("a")
            .entity("b")
            .entity("c")
            .entity("d")
            .build()
    }

    fn bank() -> Statistic {
        Statistic::new(vec![
            q("q(x) :- eta(x)"),
            q("q(x) :- eta(x), E(x,y)"),
            q("q(x) :- eta(x), E(x,z)"), // duplicate of the previous
            q("q(x) :- eta(x), E(x,y), E(y,z)"),
            q("q(x) :- eta(x), E(x,x)"),
            q("q(x) :- eta(x), E(y,x)"),
        ])
    }

    #[test]
    fn compile_dedups_and_folds_weights() {
        let stat = bank();
        let weights = vec![qint(1), qint(2), qint(5), qint(3), qint(4), qint(6)];
        let cls = LinearClassifier::new(qint(1), weights);
        let model = Model::compile(&stat, &cls);
        assert_eq!(model.original_dimension(), 6);
        assert_eq!(model.compiled_dimension(), 5);
        // The two out-edge duplicates folded: 2 + 5 = 7.
        assert_eq!(model.folded.weights[1], qint(7));
        // Trie shares the eta(x0) prefix: fewer nodes than total atoms.
        let total_atoms: usize = model.features.iter().map(|f| f.atoms().len()).sum();
        assert!(model.trie_nodes() < total_atoms);
    }

    #[test]
    fn compiled_rows_agree_with_naive_indicators() {
        let stat = bank();
        let cls = LinearClassifier::new(qint(0), vec![qint(1); 6]);
        let model = Model::compile(&stat, &cls);
        let d = db();
        let entities = d.entities();
        let engine = Engine::new();
        let naive = stat.apply_with(&engine, &d, &entities);
        let compiled = model.apply_in(&engine.ctx(), &d, &entities).unwrap();
        assert_eq!(naive, compiled);
    }

    #[test]
    fn classification_agrees_with_separator_model() {
        let sep = cqsep::SeparatorModel {
            statistic: bank(),
            classifier: LinearClassifier::new(
                qint(1),
                vec![qint(1), qint(-2), qint(3), qint(1), qint(-1), qint(2)],
            ),
        };
        let model = Model::compile_separator(&sep);
        let d = db();
        let engine = Engine::new();
        let naive = sep.classify(&d);
        let (compiled, stats) = model.classify_with(&engine, &d);
        for e in d.entities() {
            assert_eq!(naive.get(e), compiled.get(e));
        }
        assert_eq!(stats.entities, 4);
        assert!(stats.nodes_visited > 0);
    }

    #[test]
    fn prefix_prune_fires_for_isolated_entity() {
        // Entity d has no incident edges: every non-trivial feature is
        // pruned right below the shared eta(x0) root.
        let stat = bank();
        let cls = LinearClassifier::new(qint(0), vec![qint(1); 6]);
        let model = Model::compile(&stat, &cls);
        let d = db();
        let engine = Engine::new();
        let iso = d.val_by_name("d").unwrap();
        let (_, stats) = model.predict_in(&engine.ctx(), &d, &[iso]).unwrap();
        assert!(stats.prefix_prunes > 0, "{}", stats.report());
    }

    #[test]
    fn tiny_frontier_cap_keeps_predictions_exact() {
        let stat = bank();
        let cls = LinearClassifier::new(qint(0), vec![qint(1); 6]);
        let mut model = Model::compile(&stat, &cls);
        model.frontier_cap = 1;
        let d = db();
        let entities = d.entities();
        let engine = Engine::new();
        let naive = stat.apply_with(&engine, &d, &entities);
        let compiled = model.apply_in(&engine.ctx(), &d, &entities).unwrap();
        assert_eq!(naive, compiled);
    }

    #[test]
    fn empty_statistic_compiles() {
        let stat = Statistic::new(vec![]);
        let cls = LinearClassifier::new(qint(1), vec![]);
        let model = Model::compile(&stat, &cls);
        let d = db();
        let engine = Engine::new();
        let (labeling, _) = model.classify_with(&engine, &d);
        // Score 0 < threshold 1: everything negative.
        for e in d.entities() {
            assert_eq!(labeling.get(e), Label::Negative);
        }
    }

    #[test]
    fn deadline_interrupts_prediction() {
        let stat = bank();
        let cls = LinearClassifier::new(qint(0), vec![qint(1); 6]);
        let model = Model::compile(&stat, &cls);
        let d = db();
        let engine = Engine::new();
        let ctx = engine.ctx_with_deadline(std::time::Duration::ZERO);
        assert!(model.predict_in(&ctx, &d, &d.entities()).is_err());
    }
}
