//! The shared-prefix atom trie and its frontier evaluator.
//!
//! Every compiled feature is laid out as a *canonical atom path*: a
//! connectivity-aware ordering of its atoms starting from the free
//! variable, with variables renamed by first appearance along that
//! order (free variable = 0). Isomorphic prefixes of different features
//! thereby become *literally identical* atom sequences, and inserting
//! all paths into a trie shares them: one node per distinct prefix
//! atom, features marked on the node completing their path.
//!
//! Evaluation of one entity `e` walks the trie once, maintaining a
//! **frontier** of partial homomorphisms (variable assignments with
//! `x0 ↦ e`) for the current prefix:
//!
//! * extending the frontier over a node's atom uses the database's
//!   `facts_with` position index (forward checking, not scan);
//! * an **empty frontier prunes the entire subtree** — every feature
//!   below keeps verdict "false" without any further work;
//! * the frontier computed at a node is **shared by all child
//!   branches** — the partial-homomorphism work for a common prefix is
//!   paid once, not once per feature;
//! * between nodes the frontier is **projected onto the live
//!   variables** (those still used somewhere below) and deduplicated,
//!   which is sound because equal live-projections have identical
//!   futures, and keeps frontier width bounded by data, not by path
//!   depth;
//! * if the width still exceeds the cap, the evaluator falls back to
//!   one exact homomorphism check per feature in the subtree
//!   (correctness never depends on the cap).

use crate::ClassifierStats;
use cq::{Atom, Cq, Var};
use relational::{Database, Val};
use std::collections::{BTreeSet, HashSet};

/// One atom of a compiled path, plus the shape of the assignment after
/// matching it.
#[derive(Debug, PartialEq, Eq)]
struct Node {
    atom: Atom,
    /// Number of variables bound once this atom is matched. The parent
    /// frontier's assignments have length `bound_after - new vars`.
    bound_after: u32,
    children: Vec<usize>,
    /// Feature whose path ends at this node, if any.
    feature: Option<u32>,
    /// Variables (bound at or before this node) still used somewhere
    /// in the subtree below — the projection target for the frontier.
    live: Vec<u32>,
}

/// The compiled forest: all feature paths, prefix-shared.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Trie {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    /// Features whose body is empty (true on every entity).
    empty_features: Vec<u32>,
}

/// The canonical atom path of a unary feature: connectivity-aware
/// ordering from the free variable, variables renamed by first
/// appearance (free variable becomes `Var(0)`). Deterministic in the
/// *set* of atoms, so re-deriving it from a stored (sorted) `Cq`
/// reproduces the exact same path.
pub(crate) fn canonical_path(q: &Cq) -> Vec<Atom> {
    assert!(q.is_unary(), "compiled features must be unary");
    let free = q.free_var();
    let mut remaining: Vec<&Atom> = q.atoms().iter().collect();
    let mut rename: std::collections::HashMap<Var, u32> = std::collections::HashMap::new();
    rename.insert(free, 0);
    let mut next = 1u32;
    let mut path = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Prefer atoms touching an already-bound variable; an atom with
        // no bound variable is only picked when the query is genuinely
        // disconnected from the free variable.
        let connected: Vec<usize> = (0..remaining.len())
            .filter(|&i| remaining[i].args.iter().any(|v| rename.contains_key(v)))
            .collect();
        let pool = if connected.is_empty() {
            (0..remaining.len()).collect()
        } else {
            connected
        };
        // Deterministic pick: smallest (relation, arg pattern), where a
        // bound arg compares by its canonical id and an unbound arg by
        // its first-occurrence position within the atom.
        let best = pool
            .into_iter()
            .min_by_key(|&i| atom_key(remaining[i], &rename))
            .expect("pool is non-empty");
        let atom = remaining.swap_remove(best);
        let args: Vec<Var> = atom
            .args
            .iter()
            .map(|v| {
                let id = *rename.entry(*v).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                Var(id)
            })
            .collect();
        path.push(Atom::new(atom.rel, args));
    }
    path
}

/// Comparison key for the canonical-path atom choice.
fn atom_key(atom: &Atom, rename: &std::collections::HashMap<Var, u32>) -> (u32, Vec<(u8, u32)>) {
    let mut firsts: Vec<Var> = Vec::new();
    let args = atom
        .args
        .iter()
        .map(|v| match rename.get(v) {
            Some(&id) => (0u8, id),
            None => {
                let pos = firsts.iter().position(|w| w == v).unwrap_or_else(|| {
                    firsts.push(*v);
                    firsts.len() - 1
                });
                (1u8, pos as u32)
            }
        })
        .collect();
    (atom.rel.0, args)
}

impl Trie {
    /// Build the forest over the (already deduplicated) features.
    /// Returns `None` if two features share a full path — impossible
    /// for core-deduplicated banks, but reachable from a corrupted
    /// model file, which must fail cleanly.
    pub(crate) fn build(features: &[Cq]) -> Option<Trie> {
        let mut trie = Trie {
            nodes: Vec::new(),
            roots: Vec::new(),
            empty_features: Vec::new(),
        };
        for (id, q) in features.iter().enumerate() {
            let path = canonical_path(q);
            if path.is_empty() {
                trie.empty_features.push(id as u32);
                continue;
            }
            let mut bound = 1u32; // x0 ↦ e is pre-bound
            let mut at: Option<usize> = None;
            for atom in path {
                let new_vars = atom
                    .args
                    .iter()
                    .filter(|v| v.0 >= bound)
                    .collect::<HashSet<_>>()
                    .len() as u32;
                let kids = match at {
                    None => &trie.roots,
                    Some(i) => &trie.nodes[i].children,
                };
                let found = kids.iter().copied().find(|&k| trie.nodes[k].atom == atom);
                let k = found.unwrap_or_else(|| {
                    let k = trie.nodes.len();
                    trie.nodes.push(Node {
                        atom,
                        bound_after: bound + new_vars,
                        children: Vec::new(),
                        feature: None,
                        live: Vec::new(),
                    });
                    match at {
                        None => trie.roots.push(k),
                        Some(i) => trie.nodes[i].children.push(k),
                    }
                    k
                });
                bound = trie.nodes[k].bound_after;
                at = Some(k);
            }
            let end = at.expect("non-empty path has a final node");
            if trie.nodes[end].feature.is_some() {
                return None; // duplicate path: not a deduplicated bank
            }
            trie.nodes[end].feature = Some(id as u32);
        }
        trie.compute_live_sets();
        Some(trie)
    }

    /// Fill every node's `live` set: variables bound at or before the
    /// node that some descendant atom still reads. Children always have
    /// larger indices than their parent (created later along the path),
    /// so one reverse sweep is a post-order traversal.
    fn compute_live_sets(&mut self) {
        let n = self.nodes.len();
        let mut below: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for i in (0..n).rev() {
            let mut used = BTreeSet::new();
            for &c in &self.nodes[i].children {
                used.extend(self.nodes[c].atom.args.iter().map(|v| v.0));
                used.extend(below[c].iter().copied());
            }
            self.nodes[i].live = used
                .iter()
                .copied()
                .filter(|&v| v < self.nodes[i].bound_after)
                .collect();
            below[i] = used;
        }
    }

    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluate one entity: set `truths[f] = true` for every feature
    /// whose query selects `e` in `d`. `fallback` must answer the exact
    /// per-feature homomorphism question; it is consulted only when the
    /// frontier overflows `cap`.
    pub(crate) fn eval_entity<F: Fn(u32) -> bool>(
        &self,
        d: &Database,
        e: Val,
        cap: usize,
        fallback: &F,
        truths: &mut [bool],
        stats: &mut ClassifierStats,
    ) {
        for &f in &self.empty_features {
            truths[f as usize] = true;
        }
        let root_frontier = vec![vec![e]];
        if self.roots.len() > 1 {
            stats.reuse_hits += self.roots.len() as u64 - 1;
        }
        for &r in &self.roots {
            self.descend(d, r, &root_frontier, cap, fallback, truths, stats);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn descend<F: Fn(u32) -> bool>(
        &self,
        d: &Database,
        idx: usize,
        frontier: &[Vec<Val>],
        cap: usize,
        fallback: &F,
        truths: &mut [bool],
        stats: &mut ClassifierStats,
    ) {
        stats.nodes_visited += 1;
        let node = &self.nodes[idx];
        if node.children.is_empty() {
            // Leaf: only non-emptiness matters, stop at the first
            // extension instead of materializing the frontier.
            if any_extension(d, &node.atom, frontier) {
                if let Some(f) = node.feature {
                    truths[f as usize] = true;
                }
            } else {
                stats.prefix_prunes += 1;
            }
            return;
        }
        let mut ext: Vec<Vec<Val>> = Vec::new();
        for base in frontier {
            extend_one(d, &node.atom, base, node.bound_after, &mut ext);
        }
        if ext.is_empty() {
            // The prefix fails to map: every feature below is false.
            stats.prefix_prunes += 1;
            return;
        }
        if let Some(f) = node.feature {
            truths[f as usize] = true;
        }
        project_dedup(&mut ext, &node.live);
        stats.frontier_assignments += ext.len() as u64;
        if ext.len() > cap {
            // Frontier too wide to carry further: answer each feature
            // below exactly instead. Correctness is cap-independent.
            let mut feats = Vec::new();
            for &c in &node.children {
                self.collect_features(c, &mut feats);
            }
            for f in feats {
                stats.hom_fallbacks += 1;
                if fallback(f) {
                    truths[f as usize] = true;
                }
            }
            return;
        }
        // The shared frontier is reused by every sibling branch.
        stats.reuse_hits += node.children.len() as u64 - 1;
        for &c in &node.children {
            self.descend(d, c, &ext, cap, fallback, truths, stats);
        }
    }

    fn collect_features(&self, idx: usize, out: &mut Vec<u32>) {
        if let Some(f) = self.nodes[idx].feature {
            out.push(f);
        }
        for &c in &self.nodes[idx].children {
            self.collect_features(c, out);
        }
    }
}

/// Extend one assignment over `atom`, appending every consistent
/// binding of the atom's new variables to `out`. Candidate facts come
/// from the database's per-position index when any argument is already
/// bound.
fn extend_one(d: &Database, atom: &Atom, base: &[Val], bound_after: u32, out: &mut Vec<Vec<Val>>) {
    let candidates = candidate_facts(d, atom, base);
    for &fi in candidates {
        let fact = d.fact(fi);
        if let Some(new_vals) = match_fact(atom, base, &fact.args) {
            let mut ext = Vec::with_capacity(bound_after as usize);
            ext.extend_from_slice(base);
            ext.extend(new_vals);
            out.push(ext);
        }
    }
}

/// Does any assignment of the frontier extend over `atom`?
fn any_extension(d: &Database, atom: &Atom, frontier: &[Vec<Val>]) -> bool {
    frontier.iter().any(|base| {
        candidate_facts(d, atom, base)
            .iter()
            .any(|&fi| match_fact(atom, base, &d.fact(fi).args).is_some())
    })
}

/// The smallest available index slice of candidate facts for `atom`
/// under `base`: the sparsest `facts_with` position among the bound
/// arguments, or the relation's full fact list when none is bound.
fn candidate_facts<'d>(d: &'d Database, atom: &Atom, base: &[Val]) -> &'d [usize] {
    let mut best: Option<&'d [usize]> = None;
    for (pos, v) in atom.args.iter().enumerate() {
        if (v.0 as usize) < base.len() {
            let list = d.facts_with(atom.rel, pos as u32, base[v.index()]);
            if best.is_none_or(|b| list.len() < b.len()) {
                best = Some(list);
            }
        }
    }
    best.unwrap_or_else(|| d.facts_of_rel(atom.rel))
}

/// Match one fact against the atom under `base`; `Some(new_vals)` binds
/// the atom's new variables in first-occurrence order.
fn match_fact(atom: &Atom, base: &[Val], fact_args: &[Val]) -> Option<Vec<Val>> {
    let mut new_vals: Vec<Val> = Vec::new();
    for (v, &fv) in atom.args.iter().zip(fact_args) {
        let vi = v.index();
        if vi < base.len() {
            if base[vi] != fv {
                return None;
            }
        } else {
            let k = vi - base.len();
            if k < new_vals.len() {
                if new_vals[k] != fv {
                    return None;
                }
            } else {
                // New variables are numbered by first appearance within
                // the atom, so each is seen exactly when k == len.
                debug_assert_eq!(k, new_vals.len());
                new_vals.push(fv);
            }
        }
    }
    Some(new_vals)
}

/// Deduplicate the frontier by its projection onto the live variables.
/// Assignments equal on the live set have identical futures, so one
/// representative (kept at full length — deeper nodes index by
/// position) suffices.
fn project_dedup(frontier: &mut Vec<Vec<Val>>, live: &[u32]) {
    if frontier.len() <= 1 {
        return;
    }
    let mut seen: HashSet<Vec<Val>> = HashSet::with_capacity(frontier.len());
    frontier.retain(|a| {
        let key: Vec<Val> = live.iter().map(|&v| a[v as usize]).collect();
        seen.insert(key)
    });
}
