//! Binary model format, in the workspace's shared `serde::bytes` wire
//! style (the same conventions as the engine's cache tables).
//!
//! ```text
//! model:  "CQSEPMD1"
//!         | u32 rel_count | rel_count × (str name, u64 arity)
//!         | u8 has_entity | (u32 entity_rel if has_entity)
//!         | u32 n_features | n_features × feature
//!         | u64 original_dim | original_dim × u32 class
//!         | str threshold | n_features × str weight
//!         | u64 frontier_cap
//! feature: u32 n_atoms | n_atoms × (u32 rel, arity(rel) × u32 var)
//! ```
//!
//! Features are stored in path-canonical form (free variable `x0`), so
//! the free variable list is implicit and the trie rebuilds bit-for-bit
//! identically on load. Rationals are length-prefixed UTF-8 in their
//! `Display`/`FromStr` syntax (`"-2/3"`), matching the text model
//! format in `cqsep::persist`.
//!
//! Decoding is all-or-nothing: any out-of-range relation, non-dense
//! variable id, unparsable rational, duplicate feature path, or
//! trailing garbage rejects the whole file.

use crate::Model;
use cq::{Atom, Cq, Var};
use linsep::LinearClassifier;
use numeric::Rat;
use relational::{RelId, Schema};
use serde::bytes::{ByteReader, ByteWriter};
use std::collections::HashSet;

const MODEL_MAGIC: [u8; 8] = *b"CQSEPMD1";

pub(crate) fn encode(m: &Model) -> Vec<u8> {
    let mut w = ByteWriter::with_magic(&MODEL_MAGIC);
    let schema = &m.schema;
    w.u32(schema.rel_count() as u32);
    for rel in schema.rel_ids() {
        w.str(schema.name(rel));
        w.u64(schema.arity(rel) as u64);
    }
    match schema.entity_rel() {
        Some(rel) => {
            w.verdict(true);
            w.u32(rel.0);
        }
        None => w.verdict(false),
    }
    w.u32(m.features.len() as u32);
    for q in &m.features {
        w.u32(q.atoms().len() as u32);
        for a in q.atoms() {
            w.u32(a.rel.0);
            for v in &a.args {
                w.u32(v.0);
            }
        }
    }
    w.u64(m.class_of.len() as u64);
    for &c in &m.class_of {
        w.u32(c as u32);
    }
    w.str(&m.folded.threshold.to_string());
    for weight in &m.folded.weights {
        w.str(&weight.to_string());
    }
    w.u64(m.frontier_cap as u64);
    w.finish()
}

pub(crate) fn decode(bytes: Vec<u8>) -> Option<Model> {
    let mut r = ByteReader::with_magic(&bytes, &MODEL_MAGIC)?;
    let schema = decode_schema(&mut r)?;
    let n_features = r.u32()? as usize;
    let mut features = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        features.push(decode_feature(&mut r, &schema)?);
    }
    let original_dim = r.u64()? as usize;
    let mut class_of = Vec::with_capacity(original_dim);
    for _ in 0..original_dim {
        class_of.push(r.u32()? as usize);
    }
    let threshold: Rat = r.str()?.parse().ok()?;
    let mut weights = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        weights.push(r.str()?.parse::<Rat>().ok()?);
    }
    let frontier_cap = r.u64()? as usize;
    if !r.finished() {
        return None;
    }
    Model::from_parts(
        schema,
        features,
        class_of,
        LinearClassifier::new(threshold, weights),
        frontier_cap,
    )
}

fn decode_schema(r: &mut ByteReader<'_>) -> Option<Schema> {
    let rel_count = r.u32()?;
    let mut schema = Schema::new();
    let mut names: HashSet<String> = HashSet::new();
    for _ in 0..rel_count {
        let name = r.str()?;
        let arity = r.u64()? as usize;
        // `Schema::add_relation` panics on these; fail the decode instead.
        if arity == 0 || !names.insert(name.clone()) {
            return None;
        }
        schema.add_relation(&name, arity);
    }
    if r.verdict()? {
        let rel = RelId(r.u32()?);
        if rel.0 >= rel_count || schema.arity(rel) != 1 {
            return None;
        }
        schema.set_entity(rel);
    }
    Some(schema)
}

fn decode_feature(r: &mut ByteReader<'_>, schema: &Schema) -> Option<Cq> {
    let n_atoms = r.u32()? as usize;
    let mut atoms = Vec::with_capacity(n_atoms);
    let mut positions = 0u64;
    for _ in 0..n_atoms {
        let rel = RelId(r.u32()?);
        if rel.index() >= schema.rel_count() {
            return None;
        }
        let arity = schema.arity(rel);
        let mut args = Vec::with_capacity(arity);
        for _ in 0..arity {
            args.push(Var(r.u32()?));
        }
        positions += arity as u64;
        atoms.push(Atom::new(rel, args));
    }
    // Path-canonical variables are dense: ids are bounded by the number
    // of argument positions (+ the free variable). Anything larger is
    // corruption — and would over-allocate in `Cq::canonical_db`.
    let bound = positions + 1;
    if atoms
        .iter()
        .flat_map(|a| a.args.iter())
        .any(|v| u64::from(v.0) >= bound)
    {
        return None;
    }
    Some(Cq::new(schema.clone(), vec![Var(0)], atoms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_FRONTIER_CAP;
    use cq::parse::parse_cq;
    use cqsep::Statistic;
    use numeric::qint;

    fn model() -> Model {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let stat = Statistic::new(vec![
            parse_cq(&s, "q(x) :- eta(x), E(x,y)").unwrap(),
            parse_cq(&s, "q(x) :- eta(x), E(x,y), E(y,z)").unwrap(),
            parse_cq(&s, "q(a) :- eta(a), E(a,b)").unwrap(),
        ]);
        let cls = LinearClassifier::new(
            "1/2".parse().unwrap(),
            vec![qint(2), "-1/3".parse().unwrap(), qint(1)],
        );
        Model::compile(&stat, &cls)
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = model();
        let decoded = decode(encode(&m)).expect("round trip decodes");
        assert_eq!(m, decoded);
        assert_eq!(m.trie_nodes(), decoded.trie_nodes());
        assert_eq!(m.frontier_cap, DEFAULT_FRONTIER_CAP);
    }

    #[test]
    fn truncations_never_decode() {
        let bytes = encode(&model());
        for len in 0..bytes.len() {
            assert!(
                decode(bytes[..len].to_vec()).is_none(),
                "truncation at {len} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut bytes = encode(&model());
        bytes.push(0);
        assert!(decode(bytes).is_none());
    }

    #[test]
    fn bad_magic_is_corruption() {
        let mut bytes = encode(&model());
        bytes[0] ^= 0xFF;
        assert!(decode(bytes).is_none());
    }

    #[test]
    fn out_of_range_variable_is_corruption() {
        let m = model();
        let good = encode(&m);
        // Find the first atom's first var field and blast it: rather
        // than byte-surgery, rebuild with a poisoned feature through
        // the writer to keep the offsets honest.
        let mut w = ByteWriter::with_magic(&MODEL_MAGIC);
        let schema = &m.schema;
        w.u32(schema.rel_count() as u32);
        for rel in schema.rel_ids() {
            w.str(schema.name(rel));
            w.u64(schema.arity(rel) as u64);
        }
        w.verdict(true);
        w.u32(schema.entity_rel().unwrap().0);
        w.u32(1); // one feature: eta(x_9999999)
        w.u32(1);
        w.u32(schema.entity_rel().unwrap().0);
        w.u32(9_999_999);
        w.u64(1);
        w.u32(0);
        w.str("0");
        w.str("1");
        w.u64(DEFAULT_FRONTIER_CAP as u64);
        assert!(decode(w.finish()).is_none());
        assert!(decode(good).is_some(), "the unpoisoned encoding decodes");
    }
}
