//! Throughput benchmark for the task layer: a mixed check/classify
//! batch pushed through `service::run_task_with` on a single-threaded
//! engine vs the default (all-cores) engine. Outcomes are verified for
//! agreement before anything is timed, and the measured tasks/sec plus
//! the engine counters are recorded in `BENCH_service.json` at the
//! repository root (the same shape as `BENCH_lp.json`), merged around
//! the `"loadgen"` section owned by the service crate's load bench. No
//! speedup is asserted — single-task parallelism depends on the host —
//! but on multi-core hosts the default engine must never lose by more
//! than noise (single-core hosts record a note instead of asserting on
//! scheduler jitter), and the batch must do real hom/game/LP work on a
//! cold engine.

use bench::{time_median, with_engine_stats};
use cqsep::Engine;
use relational::spec::DatabaseSpec;
use relational::TrainingDb;
use service::json::{escape, Json};
use service::{run_task_with, ClassSpec, Outcome, Task};
use workloads::lowerbound;

fn spec_text(train: &TrainingDb) -> String {
    DatabaseSpec::from_database(&train.db, Some(&train.labeling)).to_text()
}

/// The mixed batch: separability reports and classification runs over
/// the paper's small lower-bound families. Sized so one cold pass takes
/// well under a second per engine leg on a typical host.
fn service_batch() -> Vec<Task> {
    let example = spec_text(&lowerbound::example_6_2());
    let cycles = spec_text(&lowerbound::twin_cycles(3));
    let paths = spec_text(&lowerbound::twin_paths(4));
    let alternating = spec_text(&lowerbound::alternating_paths(4));
    let check = |train: &String| Task::Check {
        train: train.clone(),
        classes: vec![ClassSpec::Cq, ClassSpec::Ghw(1)],
    };
    let classify = |train: &String, class: ClassSpec| Task::Classify {
        train: train.clone(),
        eval: train.clone(),
        class,
    };
    vec![
        // Separability reports: the twin families are inseparable for
        // both classes, which is a valid (and cheap-to-render) answer.
        check(&example),
        check(&cycles),
        check(&paths),
        // Classification: only (family, class) pairs known separable —
        // an inseparable pair is a task *failure*, not a benchmark.
        classify(&example, ClassSpec::Cq),
        classify(&example, ClassSpec::Cqm(1)),
        classify(&paths, ClassSpec::Cq),
        classify(&paths, ClassSpec::Ghw(1)),
        classify(&alternating, ClassSpec::Ghw(1)),
    ]
}

/// Run the whole batch on a fresh engine built by `mk`, returning the
/// outputs. Fresh engines keep every pass cold: the hom/game caches
/// would otherwise absorb all solver work after the first repetition
/// and the two legs would time nothing but memo lookups.
fn run_batch(mk: &dyn Fn() -> Engine, tasks: &[Task]) -> Vec<String> {
    let engine = mk();
    tasks
        .iter()
        .map(|t| match run_task_with(&engine, t) {
            Ok(out) => out.output,
            Err(e) => panic!("{} task failed: {e}", t.kind()),
        })
        .collect()
}

#[test]
fn service_throughput_single_vs_default_threads() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = Engine::new().effective_parallelism();
    let tasks = service_batch();
    let checks = tasks.iter().filter(|t| t.kind() == "check").count();
    let classifies = tasks.len() - checks;

    let single = || Engine::new().with_threads(1);
    let default = Engine::new;

    // Agreement before speed: both engines must produce identical
    // reports and labelings for every task in the batch.
    let single_out = run_batch(&single, &tasks);
    let default_out = run_batch(&default, &tasks);
    assert_eq!(
        single_out, default_out,
        "engine parallelism must not change any task's output"
    );

    // One instrumented cold pass: the batch must exercise all three
    // solver layers for the throughput numbers to mean anything.
    let stats_engine = Engine::new();
    let (_, stats) = with_engine_stats(&stats_engine, || {
        for t in &tasks {
            let out = run_task_with(&stats_engine, t).expect("task failed");
            std::hint::black_box(out);
        }
    });
    assert!(stats.hom.solves > 0, "batch did no hom-engine work");
    assert!(stats.game.games_solved > 0, "batch did no game-engine work");
    let lp_activity = stats.lp.lps_solved + stats.lp.perceptron_hits + stats.lp.conflict_prunes;
    assert!(lp_activity > 0, "batch did no LP-engine work");
    assert_eq!(stats.restored_entries, 0, "nothing was loaded from disk");

    // The batch is only a few ms per leg, so medians need enough
    // repetitions to shrug off scheduler hiccups.
    let single_s = time_median(9, || {
        std::hint::black_box(run_batch(&single, &tasks));
    });
    let default_s = time_median(9, || {
        std::hint::black_box(run_batch(&default, &tasks));
    });
    let per_sec = |s: f64| tasks.len() as f64 / s;

    // The default engine must never lose to the single-threaded one by
    // more than noise: with adaptive parallelism, an engine that cannot
    // actually fan out (single-core host) takes the same sequential
    // paths. On multi-core hosts this is a weak floor, not a speedup
    // claim — single-task parallelism depends on the workload shape.
    if cores >= 2 {
        assert!(
            default_s <= single_s * 1.25,
            "default engine lost to single-threaded: default={default_s:.6}s single={single_s:.6}s"
        );
    } else {
        // One core: both legs run the adaptive sequential paths and the
        // only difference is scheduler noise, which on a busy CI box can
        // exceed any fixed tolerance. Record, note, and move on — the
        // same convention the LP bench uses for host-dependent legs.
        eprintln!(
            "note: {cores} core(s), effective budget {effective_threads} — \
             skipping the parallel-speedup assertion \
             (default={default_s:.6}s single={single_s:.6}s)"
        );
    }

    let round = |x: f64, places: f64| (x * places).round() / places;
    let batch = Json::Obj(vec![
        ("tasks".to_string(), Json::Num(tasks.len() as f64)),
        ("check_tasks".to_string(), Json::Num(checks as f64)),
        ("classify_tasks".to_string(), Json::Num(classifies as f64)),
        (
            "single_thread_s".to_string(),
            Json::Num(round(single_s, 1e6)),
        ),
        (
            "default_threads_s".to_string(),
            Json::Num(round(default_s, 1e6)),
        ),
        (
            "single_thread_tasks_per_s".to_string(),
            Json::Num(round(per_sec(single_s), 1e2)),
        ),
        (
            "default_tasks_per_s".to_string(),
            Json::Num(round(per_sec(default_s), 1e2)),
        ),
        (
            "speedup".to_string(),
            Json::Num(round(single_s / default_s, 1e2)),
        ),
        ("hom_solves".to_string(), Json::Num(stats.hom.solves as f64)),
        (
            "games_solved".to_string(),
            Json::Num(stats.game.games_solved as f64),
        ),
        ("lp_activity".to_string(), Json::Num(lp_activity as f64)),
        (
            "warm_start_hits".to_string(),
            Json::Num(stats.lp.warm_start_hits as f64),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    merge_bench_json(
        path,
        vec![
            ("available_parallelism".to_string(), Json::Num(cores as f64)),
            (
                "effective_threads".to_string(),
                Json::Num(effective_threads as f64),
            ),
            ("service_batch".to_string(), batch),
        ],
    );
}

/// Replace `updates` keys in the root-level BENCH_service.json object,
/// preserving every other key (the loadgen bench owns `"loadgen"`).
fn merge_bench_json(path: &str, updates: Vec<(String, Json)>) {
    let mut fields: Vec<(String, Json)> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Obj(fields)) => fields,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    for (key, value) in updates {
        match fields.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key, value)),
        }
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        out.push_str(&format!("  {}: {v}{comma}\n", escape(k)));
    }
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH_service.json");
}

/// The service layer's `Outcome` flattener feeds the same throughput
/// path the server uses; sanity-check it end to end on one engine so
/// the benchmark's numbers describe the real serving pipeline.
#[test]
fn execute_in_matches_run_task_with() {
    let engine = Engine::new();
    for task in service_batch() {
        let direct = run_task_with(&engine, &task).expect("task failed");
        match service::execute_in(&engine.ctx(), &task) {
            Outcome::Success(out) => assert_eq!(out.output, direct.output),
            other => panic!("execute_in diverged: {other:?}"),
        }
    }
}
