//! Property tests for the delta layer's cache subsumption: across
//! randomized workloads and edits, a warm engine (whose caches may
//! answer grown/shrunk-database queries through fingerprint-lineage
//! subsumption instead of fresh searches) must agree verdict-for-verdict
//! with an uncached oracle — including when a tiny cache capacity forces
//! eviction between the warm-up and the re-query. Debug-friendly sizes;
//! the wall-clock acceptance claim lives in `bench_incremental.rs`.

use cq::{enumerate_feature_queries, EnumConfig};
use engine::Engine;
use relational::{Database, Delta, DeltaKind, Val};
use workloads::synthetic::graph_schema;
use workloads::{family_by_name, sample_labeled};

const SEEDS: [u64; 4] = [11, 23, 47, 91];

/// The `CQ[1]` feature bank as (canonical database, free variable).
fn bank() -> Vec<(Database, Val)> {
    enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(1).syntactic())
        .iter()
        .map(|q| {
            let (canon, frees) = q.canonical_db();
            (canon, frees[0])
        })
        .collect()
}

/// Every feature verdict over every entity of `d`, through `engine`.
fn verdicts(engine: &Engine, bank: &[(Database, Val)], d: &Database) -> Vec<bool> {
    d.entities()
        .iter()
        .flat_map(|&e| {
            bank.iter()
                .map(move |(canon, root)| engine.hom_exists(canon, d, &[(*root, e)]))
        })
        .collect()
}

/// An insert-only edit derived from the seed: one fresh entity wired to
/// two existing vertices (deterministic but workload-dependent).
fn grow(d: &Database, seed: u64) -> Delta {
    let ents = d.entities();
    let a = d.val_name(ents[seed as usize % ents.len()]).to_string();
    let b = d
        .val_name(ents[(seed as usize / 3) % ents.len()])
        .to_string();
    Delta::new()
        .add_entity("fresh", None)
        .add_fact("E", &[&a, "fresh"])
        .add_fact("E", &["fresh", &b])
}

/// A delete-only edit: drop one non-η fact picked by the seed.
fn shrink(d: &Database, seed: u64) -> Option<Delta> {
    let eta = d.schema().entity_rel();
    let victims: Vec<_> = d.facts().iter().filter(|f| Some(f.rel) != eta).collect();
    if victims.is_empty() {
        return None;
    }
    let f = victims[seed as usize % victims.len()];
    let rel = d.schema().name(f.rel).to_string();
    let args: Vec<String> = f.args.iter().map(|&v| d.val_name(v).to_string()).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    Some(Delta::new().remove_fact(&rel, &refs))
}

/// Warm an engine on `d`, apply `delta`, re-query the grown/shrunk
/// database, and compare every verdict against an uncached oracle.
/// Returns the warm engine's subsumption hits for accumulation.
fn check_edit(engine: Engine, bank: &[(Database, Val)], d: &Database, delta: &Delta) -> u64 {
    verdicts(&engine, bank, d);
    let mut edited = d.clone();
    let receipt = engine
        .apply_delta(&mut edited, delta)
        .expect("derived edits apply cleanly");
    assert!(matches!(
        receipt.kind,
        DeltaKind::InsertOnly | DeltaKind::DeleteOnly
    ));
    let warm = verdicts(&engine, bank, &edited);
    let oracle = Engine::new().without_cache();
    assert_eq!(
        warm,
        verdicts(&oracle, bank, &edited),
        "subsumption changed a verdict (delta kind {})",
        receipt.kind
    );
    engine.stats().sub.hom_subsumption_hits
}

#[test]
fn insert_only_subsumption_is_sound_and_fires() {
    let bank = bank();
    let family = family_by_name("out_edge").unwrap();
    let mut sub_hits = 0;
    for seed in SEEDS {
        let d = sample_labeled(&family, 8, 0.25, seed).db;
        sub_hits += check_edit(Engine::new(), &bank, &d, &grow(&d, seed));
    }
    assert!(
        sub_hits > 0,
        "no insert-only subsumption hit across {} workloads",
        SEEDS.len()
    );
}

#[test]
fn delete_only_subsumption_is_sound_and_fires() {
    let bank = bank();
    let family = family_by_name("two_cycle").unwrap();
    let mut sub_hits = 0;
    for seed in SEEDS {
        let d = sample_labeled(&family, 8, 0.3, seed).db;
        let Some(delta) = shrink(&d, seed) else {
            continue;
        };
        sub_hits += check_edit(Engine::new(), &bank, &d, &delta);
    }
    assert!(
        sub_hits > 0,
        "no delete-only subsumption hit across {} workloads",
        SEEDS.len()
    );
}

/// Eviction interplay: with a cache capacity far smaller than the
/// warm-up's entry count, entries the subsumption probe would want may
/// be gone — the answers must still match the oracle (a missing
/// ancestor entry degrades to a fresh search, never to a wrong
/// verdict).
#[test]
fn tiny_cache_eviction_never_breaks_subsumption() {
    let bank = bank();
    let family = family_by_name("out_path2").unwrap();
    for seed in SEEDS {
        let d = sample_labeled(&family, 8, 0.25, seed).db;
        check_edit(Engine::with_capacity(4), &bank, &d, &grow(&d, seed));
        if let Some(delta) = shrink(&d, seed) {
            check_edit(Engine::with_capacity(4), &bank, &d, &delta);
        }
    }
}

/// Cross-database games keep one stable side across the edit: cached
/// positive game verdicts must transfer (and stay sound) when only the
/// right-hand database grows.
#[test]
fn game_subsumption_across_growth_agrees_with_oracle() {
    let family = family_by_name("out_edge").unwrap();
    let mut sub_hits = 0;
    for seed in SEEDS {
        let train = sample_labeled(&family, 6, 0.3, seed);
        let eval = sample_labeled(&family, 6, 0.3, seed ^ 0xA5A5).db;
        let engine = Engine::new();
        let pairs: Vec<(Val, Val)> = train
            .entities()
            .iter()
            .flat_map(|&a| eval.entities().into_iter().map(move |b| (a, b)))
            .collect();
        for &(a, b) in &pairs {
            engine.cover_implies(&train.db, &[a], &eval, &[b], 1);
        }
        let mut grown = eval.clone();
        engine
            .apply_delta(&mut grown, &grow(&eval, seed))
            .expect("growth applies cleanly");
        let oracle = Engine::new().without_cache();
        for &(a, b) in &pairs {
            assert_eq!(
                engine.cover_implies(&train.db, &[a], &grown, &[b], 1),
                oracle.cover_implies(&train.db, &[a], &grown, &[b], 1),
                "game verdict changed under growth (seed {seed})"
            );
        }
        sub_hits += engine.stats().sub.game_subsumption_hits;
    }
    assert!(
        sub_hits > 0,
        "no game subsumption hit across {} workloads",
        SEEDS.len()
    );
}
