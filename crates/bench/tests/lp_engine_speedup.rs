//! Speedup acceptance test for the exact LP engine: the hybrid
//! small/big `Rat` simplex must beat the seed `BigRational` simplex on
//! identical LP batches, and the parallel ≤ℓ-subset sweep must beat
//! the sequential one on a sweep-exhausting parity workload. Both
//! comparisons are verified for agreement before they are timed, and
//! the measured times plus the engine counters are recorded in
//! `BENCH_lp.json` at the repository root. The parallel-sweep speedup
//! assertion is skipped (with a note) on hosts with fewer than 4
//! cores, matching the other engine tests; the solver comparison and
//! all agreement checks run everywhere.

use bench::{lp_batch, search_workload, time_median, with_engine_stats, with_lp_stats};
use cqsep::sep_dim::{search_columns_seq_with, search_columns_with};
use cqsep::Engine;
use linsep::{solve_lp, solve_lp_big, LpOutcome, LpOutcomeBig};
use numeric::BigRational;

type BigLp = (Vec<Vec<BigRational>>, Vec<BigRational>, Vec<BigRational>);

#[test]
fn hybrid_lp_engine_beats_seed_path() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- Leg 1: hybrid Rat simplex vs seed BigRational simplex ----
    let batch = lp_batch(24, 8, 16, 0x5EED);
    let big_batch: Vec<BigLp> = batch
        .iter()
        .map(|(a, b, c)| {
            (
                a.iter()
                    .map(|row| row.iter().map(|x| x.to_big()).collect())
                    .collect(),
                b.iter().map(|x| x.to_big()).collect(),
                c.iter().map(|x| x.to_big()).collect(),
            )
        })
        .collect();

    // Agreement before speed: same verdict, same optimum, same vertex.
    for ((a, b, c), (ab, bb, cb)) in batch.iter().zip(&big_batch) {
        match (solve_lp(a, b, c), solve_lp_big(ab, bb, cb)) {
            (LpOutcome::Infeasible, LpOutcomeBig::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcomeBig::Unbounded) => {}
            (LpOutcome::Optimal { x, value }, LpOutcomeBig::Optimal { x: xb, value: vb }) => {
                assert_eq!(value.to_big(), vb, "optimal values diverge");
                assert_eq!(x.len(), xb.len());
                for (xi, xbi) in x.iter().zip(&xb) {
                    assert_eq!(xi.to_big(), *xbi, "optimal vertices diverge");
                }
            }
            (fast, slow) => panic!("verdicts diverge: hybrid={fast:?} big={slow:?}"),
        }
    }

    let big_lp_s = time_median(3, || {
        for (a, b, c) in &big_batch {
            std::hint::black_box(solve_lp_big(a, b, c));
        }
    });
    let (_, lp_stats) = with_lp_stats(|| {
        for (a, b, c) in &batch {
            std::hint::black_box(solve_lp(a, b, c));
        }
    });
    let rat_lp_s = time_median(3, || {
        for (a, b, c) in &batch {
            std::hint::black_box(solve_lp(a, b, c));
        }
    });
    // Conservative floor: the hybrid solver is typically several times
    // faster than the BigRational one.
    assert!(
        rat_lp_s * 1.1 < big_lp_s,
        "hybrid simplex must beat the seed solver: rat={rat_lp_s:.6}s big={big_lp_s:.6}s"
    );

    // ---- Leg 2: parallel subset sweep vs sequential ----
    // Each leg runs on its own isolated `Engine`, which makes the
    // counter accounting exact: the parity workload exhausts the sweep,
    // so both legs decide the identical multiset of column subsets and
    // their per-engine LP counters must agree figure for figure
    // (promotions are process-global and excluded), with zero hom- or
    // game-engine traffic on either engine.
    let (columns, labels) = search_workload(4);
    let par_engine = Engine::new();
    let seq_engine = Engine::new();
    let (par_verdict, par_stats) = with_engine_stats(&par_engine, || {
        search_columns_with(&par_engine, &columns, &labels, 3)
    });
    let (seq_verdict, seq_stats) = with_engine_stats(&seq_engine, || {
        search_columns_seq_with(&seq_engine, &columns, &labels, 3)
    });
    assert!(
        seq_verdict.is_none() && par_verdict.is_none(),
        "parity workload must exhaust the sweep: seq={seq_verdict:?} par={par_verdict:?}"
    );
    let sweep_stats = par_stats.lp;
    assert!(
        sweep_stats.conflict_prunes >= 1 && sweep_stats.lps_solved >= 1,
        "sweep must mix cheap prunes and real LPs: {sweep_stats:?}"
    );
    assert_eq!(
        (
            sweep_stats.lps_solved,
            sweep_stats.simplex_pivots,
            sweep_stats.perceptron_hits,
            sweep_stats.conflict_prunes,
        ),
        (
            seq_stats.lp.lps_solved,
            seq_stats.lp.simplex_pivots,
            seq_stats.lp.perceptron_hits,
            seq_stats.lp.conflict_prunes,
        ),
        "exhausting sweeps must do identical LP work"
    );
    for st in [&par_stats, &seq_stats] {
        assert_eq!(st.hom.solves, 0, "pure LP sweep touched the hom engine");
        assert_eq!(
            st.game.games_solved, 0,
            "pure LP sweep touched the game engine"
        );
        assert_eq!(st.restored_entries, 0, "nothing was loaded from disk");
    }
    let seq_sweep_s = time_median(3, || {
        std::hint::black_box(search_columns_seq_with(&seq_engine, &columns, &labels, 3));
    });
    let par_sweep_s = time_median(3, || {
        std::hint::black_box(search_columns_with(&par_engine, &columns, &labels, 3));
    });
    if cores >= 4 {
        // Close to linear in cores on this workload; assert a floor.
        assert!(
            par_sweep_s * 1.2 < seq_sweep_s,
            "parallel sweep must beat sequential: par={par_sweep_s:.6}s seq={seq_sweep_s:.6}s"
        );
    } else {
        eprintln!("skipping parallel-sweep speedup assertion: only {cores} core(s) available");
    }

    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"lp_batch\": {{\n    \"instances\": {},\n    \"big_rational_s\": {big_lp_s:.6},\n    \"hybrid_rat_s\": {rat_lp_s:.6},\n    \"speedup\": {:.2},\n    \"lps_solved\": {},\n    \"simplex_pivots\": {},\n    \"bignum_promotions\": {}\n  }},\n  \"subset_sweep\": {{\n    \"columns\": {},\n    \"rows\": {},\n    \"ell\": 3,\n    \"sequential_s\": {seq_sweep_s:.6},\n    \"parallel_s\": {par_sweep_s:.6},\n    \"speedup\": {:.2},\n    \"conflict_prunes\": {},\n    \"lps_solved\": {}\n  }}\n}}\n",
        batch.len(),
        big_lp_s / rat_lp_s,
        lp_stats.lps_solved,
        lp_stats.simplex_pivots,
        lp_stats.bignum_promotions,
        columns.len(),
        labels.len(),
        seq_sweep_s / par_sweep_s,
        sweep_stats.conflict_prunes,
        sweep_stats.lps_solved,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp.json");
    std::fs::write(path, json).expect("write BENCH_lp.json");
}
