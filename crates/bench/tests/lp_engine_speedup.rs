//! Speedup acceptance test for the exact LP engine: the hybrid
//! small/big `Rat` simplex must beat the seed `BigRational` simplex on
//! identical LP batches, the warm-started sparse revised simplex must
//! beat the cold dense tableau on the sweep-exhausting parity workload,
//! and the adaptive parallel ≤ℓ-subset sweep must never lose to the
//! sequential reference (on single-core hosts it *is* the sequential
//! path — that is the adaptive fallback under test). All comparisons
//! are verified for agreement before they are timed, and the measured
//! times plus the engine counters are recorded in `BENCH_lp.json` at
//! the repository root.
//!
//! Core-count honesty: the JSON records the host's
//! `available_parallelism` and the engine's effective thread budget as
//! separate fields, and the parallel-speedup assertion is *skipped with
//! a printed note* — never silently passed, never failed — when the
//! host cannot express parallelism (fewer than 2 cores).

use bench::{lp_batch, search_workload, time_median, with_engine_stats, with_lp_stats};
use cqsep::sep_dim::{search_columns_seq_with, search_columns_with, search_columns_with_backend};
use cqsep::Engine;
use linsep::{solve_lp, solve_lp_big, LpBackend, LpOutcome, LpOutcomeBig};
use numeric::BigRational;

type BigLp = (Vec<Vec<BigRational>>, Vec<BigRational>, Vec<BigRational>);

#[test]
fn hybrid_lp_engine_beats_seed_path() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective_threads = Engine::new().effective_parallelism();

    // ---- Leg 1: hybrid Rat simplex vs seed BigRational simplex ----
    let batch = lp_batch(24, 8, 16, 0x5EED);
    let big_batch: Vec<BigLp> = batch
        .iter()
        .map(|(a, b, c)| {
            (
                a.iter()
                    .map(|row| row.iter().map(|x| x.to_big()).collect())
                    .collect(),
                b.iter().map(|x| x.to_big()).collect(),
                c.iter().map(|x| x.to_big()).collect(),
            )
        })
        .collect();

    // Agreement before speed: same verdict, same optimum, same vertex.
    for ((a, b, c), (ab, bb, cb)) in batch.iter().zip(&big_batch) {
        match (solve_lp(a, b, c), solve_lp_big(ab, bb, cb)) {
            (LpOutcome::Infeasible, LpOutcomeBig::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcomeBig::Unbounded) => {}
            (LpOutcome::Optimal { x, value }, LpOutcomeBig::Optimal { x: xb, value: vb }) => {
                assert_eq!(value.to_big(), vb, "optimal values diverge");
                assert_eq!(x.len(), xb.len());
                for (xi, xbi) in x.iter().zip(&xb) {
                    assert_eq!(xi.to_big(), *xbi, "optimal vertices diverge");
                }
            }
            (fast, slow) => panic!("verdicts diverge: hybrid={fast:?} big={slow:?}"),
        }
    }

    let big_lp_s = time_median(3, || {
        for (a, b, c) in &big_batch {
            std::hint::black_box(solve_lp_big(a, b, c));
        }
    });
    let (_, lp_stats) = with_lp_stats(|| {
        for (a, b, c) in &batch {
            std::hint::black_box(solve_lp(a, b, c));
        }
    });
    let rat_lp_s = time_median(3, || {
        for (a, b, c) in &batch {
            std::hint::black_box(solve_lp(a, b, c));
        }
    });
    // Conservative floor: the hybrid solver is typically several times
    // faster than the BigRational one.
    assert!(
        rat_lp_s * 1.1 < big_lp_s,
        "hybrid simplex must beat the seed solver: rat={rat_lp_s:.6}s big={big_lp_s:.6}s"
    );

    // ---- Leg 2: adaptive subset sweep vs sequential reference ----
    // Each leg runs on its own isolated `Engine`, which makes the
    // counter accounting exact: the parity workload exhausts the sweep,
    // so both legs decide the identical multiset of column subsets and
    // their pre-LP tier counters must agree figure for figure. Pivot
    // counters are *not* compared: the sweep warm-starts the sparse
    // solver while the DFS reference cold-starts every LP, so identical
    // verdicts are reached through different pivot counts — that gap is
    // the optimization.
    let (columns, labels) = search_workload(4);
    let par_engine = Engine::new();
    let seq_engine = Engine::new();
    let (par_verdict, par_stats) = with_engine_stats(&par_engine, || {
        search_columns_with(&par_engine, &columns, &labels, 3)
    });
    let (seq_verdict, seq_stats) = with_engine_stats(&seq_engine, || {
        search_columns_seq_with(&seq_engine, &columns, &labels, 3)
    });
    assert!(
        seq_verdict.is_none() && par_verdict.is_none(),
        "parity workload must exhaust the sweep: seq={seq_verdict:?} par={par_verdict:?}"
    );
    let sweep_stats = par_stats.lp;
    assert!(
        sweep_stats.conflict_prunes >= 1 && sweep_stats.lps_solved >= 1,
        "sweep must mix cheap prunes and real LPs: {sweep_stats:?}"
    );
    assert_eq!(
        (
            sweep_stats.lps_solved,
            sweep_stats.perceptron_hits,
            sweep_stats.conflict_prunes,
        ),
        (
            seq_stats.lp.lps_solved,
            seq_stats.lp.perceptron_hits,
            seq_stats.lp.conflict_prunes,
        ),
        "exhausting sweeps must decide identical subset multisets"
    );
    assert!(
        sweep_stats.warm_start_hits >= 1,
        "the 119-LP sweep must land warm starts: {sweep_stats:?}"
    );
    for st in [&par_stats, &seq_stats] {
        assert_eq!(st.hom.solves, 0, "pure LP sweep touched the hom engine");
        assert_eq!(
            st.game.games_solved, 0,
            "pure LP sweep touched the game engine"
        );
        assert_eq!(st.restored_entries, 0, "nothing was loaded from disk");
    }
    let seq_sweep_s = time_median(5, || {
        std::hint::black_box(search_columns_seq_with(&seq_engine, &columns, &labels, 3));
    });
    let par_sweep_s = time_median(5, || {
        std::hint::black_box(search_columns_with(&par_engine, &columns, &labels, 3));
    });
    if cores >= 4 {
        // Close to linear in cores on this workload; assert a floor.
        assert!(
            par_sweep_s * 1.2 < seq_sweep_s,
            "parallel sweep must beat sequential: par={par_sweep_s:.6}s seq={seq_sweep_s:.6}s"
        );
    } else if cores >= 2 {
        eprintln!(
            "note: only {cores} cores — requiring parity with sequential, not a speedup floor"
        );
    } else {
        eprintln!("skipping parallel-sweep speedup assertion: only {cores} core(s) available");
    }
    // The adaptive guard holds on every host: when real parallelism is
    // unavailable the sweep must take the direct sequential path, so it
    // can never lose badly to the sequential reference. This is the
    // regression test for the historical 0.82× parallel slowdown.
    assert!(
        par_sweep_s <= seq_sweep_s * 1.1,
        "adaptive sweep lost to sequential: par={par_sweep_s:.6}s seq={seq_sweep_s:.6}s"
    );

    // ---- Leg 3: warm sparse backend vs cold dense backend ----
    // Same sweep, same enumeration order, backend pinned explicitly:
    // the warm-started sparse revised simplex must beat the cold dense
    // tableau on the identical 119-LP workload (the headline win).
    let sparse_engine = Engine::new();
    let dense_engine = Engine::new();
    let sparse_verdict =
        search_columns_with_backend(&sparse_engine, &columns, &labels, 3, LpBackend::SparseWarm);
    let dense_verdict =
        search_columns_with_backend(&dense_engine, &columns, &labels, 3, LpBackend::DenseCold);
    assert_eq!(
        sparse_verdict, dense_verdict,
        "LP backends disagree on the sweep verdict"
    );
    let sparse_sweep_s = time_median(5, || {
        std::hint::black_box(search_columns_with_backend(
            &sparse_engine,
            &columns,
            &labels,
            3,
            LpBackend::SparseWarm,
        ));
    });
    let dense_sweep_s = time_median(5, || {
        std::hint::black_box(search_columns_with_backend(
            &dense_engine,
            &columns,
            &labels,
            3,
            LpBackend::DenseCold,
        ));
    });
    assert!(
        sparse_sweep_s < dense_sweep_s,
        "warm sparse backend must beat cold dense: sparse={sparse_sweep_s:.6}s dense={dense_sweep_s:.6}s"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"available_parallelism\": {cores},\n",
            "  \"effective_threads\": {threads},\n",
            "  \"lp_batch\": {{\n",
            "    \"instances\": {instances},\n",
            "    \"big_rational_s\": {big_lp_s:.6},\n",
            "    \"hybrid_rat_s\": {rat_lp_s:.6},\n",
            "    \"speedup\": {batch_speedup:.2},\n",
            "    \"lps_solved\": {batch_lps},\n",
            "    \"simplex_pivots\": {batch_pivots},\n",
            "    \"bignum_promotions\": {batch_promotions}\n",
            "  }},\n",
            "  \"subset_sweep\": {{\n",
            "    \"columns\": {ncols},\n",
            "    \"rows\": {nrows},\n",
            "    \"ell\": 3,\n",
            "    \"sequential_s\": {seq_sweep_s:.6},\n",
            "    \"parallel_s\": {par_sweep_s:.6},\n",
            "    \"speedup\": {sweep_speedup:.2},\n",
            "    \"conflict_prunes\": {prunes},\n",
            "    \"lps_solved\": {sweep_lps},\n",
            "    \"warm_start_hits\": {warm_hits},\n",
            "    \"warm_start_misses\": {warm_misses},\n",
            "    \"sparse_pivots\": {sparse_pivots},\n",
            "    \"basis_reuse_depth\": {reuse_depth}\n",
            "  }},\n",
            "  \"lp_backend\": {{\n",
            "    \"dense_cold_s\": {dense_sweep_s:.6},\n",
            "    \"sparse_warm_s\": {sparse_sweep_s:.6},\n",
            "    \"speedup\": {backend_speedup:.2}\n",
            "  }}\n",
            "}}\n",
        ),
        cores = cores,
        threads = effective_threads,
        instances = batch.len(),
        big_lp_s = big_lp_s,
        rat_lp_s = rat_lp_s,
        batch_speedup = big_lp_s / rat_lp_s,
        batch_lps = lp_stats.lps_solved,
        batch_pivots = lp_stats.simplex_pivots,
        batch_promotions = lp_stats.bignum_promotions,
        ncols = columns.len(),
        nrows = labels.len(),
        seq_sweep_s = seq_sweep_s,
        par_sweep_s = par_sweep_s,
        sweep_speedup = seq_sweep_s / par_sweep_s,
        prunes = sweep_stats.conflict_prunes,
        sweep_lps = sweep_stats.lps_solved,
        warm_hits = sweep_stats.warm_start_hits,
        warm_misses = sweep_stats.warm_start_misses,
        sparse_pivots = sweep_stats.sparse_pivots,
        reuse_depth = sweep_stats.basis_reuse_depth,
        dense_sweep_s = dense_sweep_s,
        sparse_sweep_s = sparse_sweep_s,
        backend_speedup = dense_sweep_s / sparse_sweep_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp.json");
    std::fs::write(path, json).expect("write BENCH_lp.json");
}
