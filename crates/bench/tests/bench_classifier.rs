//! Compiled-classifier acceptance benchmark: naive per-feature sweep vs
//! the shared-prefix trie artifact on a planted-family serving workload
//! (thousands of entities × hundreds of features), recorded in
//! `BENCH_classifier.json` at the repository root.
//!
//! The workload models the production shape the artifact exists for: a
//! large sparse evaluation database and a redundant feature bank — the
//! enumerated `CQ[2]` statistic inflated with conjunctions of its own
//! features, the way stacked training rounds and per-tier sweeps
//! accumulate equivalent-up-to-core features in practice. The naive leg
//! evaluates every feature independently (a fresh backtracking hom
//! search per feature × entity, exactly what `Statistic::apply` does);
//! the compiled leg runs `Model::compile` once and streams entities
//! through the trie.
//!
//! Hard assertions (the CI contract):
//!
//! * both legs produce identical predictions for every entity;
//! * the compiled artifact is ≥ 3× faster than the naive sweep at equal
//!   parallelism (both legs pinned to one worker thread — raw per-core
//!   throughput, no parallel amortization credit).

use classifier::Model;
use cq::{enumerate_feature_queries, Cq, EnumConfig};
use cqsep::Statistic;
use engine::Engine;
use linsep::LinearClassifier;
use numeric::qint;
use std::fmt::Write as _;
use std::time::Instant;
use workloads::synthetic::graph_schema;
use workloads::{family_by_name, sample_labeled};

/// Evaluation-database size (entities = vertices).
const ENTITIES: usize = 1500;
/// Target size of the inflated feature bank.
const BANK_TARGET: usize = 240;
/// Required sequential predict-time speedup.
const MIN_SPEEDUP: f64 = 3.0;

/// The redundant bank: every enumerated `CQ[2]` feature, plus pairwise
/// conjunctions `q_i ∧ q_j` (hom-equivalent to a core the dedup layer
/// must rediscover — `q ∧ q` collapses to `q` exactly), until the bank
/// reaches [`BANK_TARGET`].
fn inflated_bank() -> Vec<Cq> {
    let base = enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(2).syntactic());
    let mut bank = base.clone();
    'outer: for i in 0..base.len() {
        for j in 0..base.len() {
            if bank.len() >= BANK_TARGET {
                break 'outer;
            }
            bank.push(base[i].conjoin(&base[j]));
        }
    }
    bank
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "sized for release builds (the naive leg alone is minutes in debug); \
              debug-mode agreement coverage lives in classifier_agreement.rs"
)]
fn compiled_trie_beats_naive_sweep_sequentially() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // A large sparse digraph: average out-degree ~3, so per-entity
    // frontiers stay small and the workload is serving-shaped rather
    // than hom-search-bound.
    let family = family_by_name("out_path2").expect("built-in family");
    let density = 3.0 / (ENTITIES as f64 - 1.0);
    let eval = sample_labeled(&family, ENTITIES, density, 0x5EED_CAFE).db;
    let entities = eval.entities();

    let bank = inflated_bank();
    let statistic = Statistic::new(bank);
    let dim = statistic.dimension();
    // Deterministic non-degenerate weights: every residue class mod 7
    // appears, so folding genuinely mixes signs and magnitudes.
    let weights = (0..dim).map(|j| qint(j as i64 % 7 - 3)).collect();
    let naive_cls = LinearClassifier::new(qint(1), weights);

    // Both legs run on a single worker thread: the speedup claimed here
    // is algorithmic (core dedup + prefix sharing), not parallelism.
    let sequential = Engine::new().with_threads(1);

    let compile_start = Instant::now();
    let compiled = Model::compile(&statistic, &naive_cls);
    let compile_s = compile_start.elapsed().as_secs_f64();
    assert!(
        compiled.compiled_dimension() < dim,
        "the inflated bank must actually deduplicate ({} -> {})",
        dim,
        compiled.compiled_dimension()
    );

    let naive_start = Instant::now();
    let naive_rows = statistic.apply_with(&sequential, &eval, &entities);
    let naive_s = naive_start.elapsed().as_secs_f64();
    let naive_preds: Vec<i32> = naive_rows.iter().map(|r| naive_cls.classify(r)).collect();

    let compiled_start = Instant::now();
    let (compiled_preds, stats) = compiled
        .predict_in(&sequential.ctx(), &eval, &entities)
        .expect("unbounded ctx cannot interrupt");
    let compiled_s = compiled_start.elapsed().as_secs_f64();

    assert_eq!(
        naive_preds, compiled_preds,
        "naive and compiled predictions must agree on every entity"
    );

    let speedup = naive_s / compiled_s.max(1e-9);
    println!(
        "entities {}  features {} -> {} cores ({} trie nodes)",
        entities.len(),
        dim,
        compiled.compiled_dimension(),
        compiled.trie_nodes()
    );
    println!(
        "naive {naive_s:.3}s  compiled {compiled_s:.3}s (compile {compile_s:.3}s)  speedup {speedup:.1}x"
    );
    println!("stats: {}", stats.report());

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"available_parallelism\": {cores},\n",
            "  \"workload\": {{\n",
            "    \"family\": \"{family}\",\n",
            "    \"entities\": {entities},\n",
            "    \"density\": {density:.6},\n",
            "    \"facts\": {facts}\n",
            "  }},\n",
            "  \"bank\": {{\n",
            "    \"features\": {dim},\n",
            "    \"cores\": {cores_dim},\n",
            "    \"trie_nodes\": {nodes}\n",
            "  }},\n",
            "  \"sequential\": {{\n",
            "    \"naive_s\": {naive:.6},\n",
            "    \"compiled_s\": {compiled:.6},\n",
            "    \"compile_s\": {compile:.6},\n",
            "    \"speedup\": {speedup:.2},\n",
            "    \"min_speedup\": {min_speedup:.1},\n",
            "    \"agreement\": true\n",
            "  }},\n",
            "  \"classifier_stats\": {{\n",
            "    \"entities\": {s_entities},\n",
            "    \"nodes_visited\": {s_nodes},\n",
            "    \"prefix_prunes\": {s_prunes},\n",
            "    \"reuse_hits\": {s_reuse},\n",
            "    \"frontier_assignments\": {s_frontier},\n",
            "    \"hom_fallbacks\": {s_fallbacks}\n",
            "  }}\n",
            "}}\n",
        ),
        cores = cores,
        family = family.name,
        entities = entities.len(),
        density = density,
        facts = eval.fact_count(),
        dim = dim,
        cores_dim = compiled.compiled_dimension(),
        nodes = compiled.trie_nodes(),
        naive = naive_s,
        compiled = compiled_s,
        compile = compile_s,
        speedup = speedup,
        min_speedup = MIN_SPEEDUP,
        s_entities = stats.entities,
        s_nodes = stats.nodes_visited,
        s_prunes = stats.prefix_prunes,
        s_reuse = stats.reuse_hits,
        s_frontier = stats.frontier_assignments,
        s_fallbacks = stats.hom_fallbacks,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_classifier.json");
    std::fs::write(path, json).expect("write BENCH_classifier.json");

    // Counter sanity: the claimed amortization mechanisms actually ran.
    assert_eq!(stats.entities as usize, entities.len());
    assert!(stats.prefix_prunes > 0, "prefix pruning never fired");
    assert!(stats.reuse_hits > 0, "prefix sharing never fired");

    assert!(
        speedup >= MIN_SPEEDUP,
        "sequential speedup {speedup:.2}x below the {MIN_SPEEDUP:.1}x floor \
         (naive {naive_s:.3}s, compiled {compiled_s:.3}s)"
    );
}
