//! Generalization acceptance test: train/test accuracy of every
//! regularized language across the planted-query families, with and
//! without label noise, recorded in `BENCH_generalize.json` at the
//! repository root.
//!
//! For each [`workloads::planted_split`] family the harness fits a
//! strength sweep — `CQ[m]` for `m = 1..m*`, `GHW(1)`, `CQ[m*]-Sep[ℓ]`
//! for `ℓ = 1, 2`, and the exact min-error `CQ[m*]` path — on the
//! (possibly noisy) training database and scores held-out
//! accuracy/precision/recall on an independently sampled clean test
//! database. Everything is seed-deterministic: the same table
//! regenerates forever.
//!
//! Hard assertions (the CI contract):
//!
//! * every zero-noise family is exactly fit at its matching tier `m*`
//!   (fit_exact, zero training errors);
//! * at zero noise, the best matching-tier method reaches **100%
//!   held-out accuracy** — the planted target is recoverable;
//! * under noise, exact `CQ[m*]` fitting degrades to the majority
//!   fallback or overfits, while the min-error path's training error is
//!   bounded by the number of flipped labels.

use bench::with_engine_stats;
use cqsep::generalize::{evaluate_with, EvalReport, FitMethod};
use cqsep::Engine;
use std::fmt::Write as _;
use workloads::{families, planted_split, PlantedFamily, SampleConfig};

/// Per-family harness scale, tuned so the whole grid stays in CI-smoke
/// territory (seconds, not minutes) while every family shows both label
/// classes at every noise rate.
fn scale_of(family: &PlantedFamily) -> (usize, usize, u64) {
    match family.name {
        "out_edge" => (28, 18, 0xA11CE),
        "two_cycle" => (24, 16, 0xB0B),
        "out_path2" => (24, 16, 0xCAFE),
        "triangle" => (18, 12, 0xD00D),
        other => panic!("unknown family {other}"),
    }
}

/// The strength sweep for a family with matching tier `m*`.
fn methods_for(atoms: usize) -> Vec<FitMethod> {
    let mut ms: Vec<FitMethod> = (1..=atoms).map(FitMethod::Cqm).collect();
    ms.push(FitMethod::Ghw(1));
    ms.push(FitMethod::Sep { m: atoms, ell: 1 });
    ms.push(FitMethod::Sep { m: atoms, ell: 2 });
    ms.push(FitMethod::MinError(atoms));
    ms
}

/// Is `method` at the family's full regularization strength (fits the
/// planted target's own tier)?
fn matching_tier(method: FitMethod, atoms: usize) -> bool {
    match method {
        FitMethod::Cqm(m) | FitMethod::MinError(m) => m == atoms,
        FitMethod::Ghw(_) => true, // all planted targets have ghw 1
        FitMethod::Sep { m, .. } => m == atoms,
    }
}

const NOISE_RATES: [f64; 2] = [0.0, 0.15];

#[test]
fn heldout_accuracy_across_regularized_languages() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let engine = Engine::new();
    let effective_threads = engine.effective_parallelism();

    let mut family_blocks = Vec::new();
    for family in families() {
        let (train_n, test_n, seed) = scale_of(&family);
        let mut result_lines = Vec::new();
        for &noise in &NOISE_RATES {
            let cfg = SampleConfig {
                train_n,
                test_n,
                density: family.default_density,
                noise,
                seed,
            };
            let split = planted_split(&family, &cfg);
            assert_eq!(
                split.flips,
                (noise * train_n as f64) as usize,
                "{}: noise accounting",
                family.name
            );

            let mut best_matching_accuracy: f64 = 0.0;
            for method in methods_for(family.atoms) {
                let r = evaluate_with(&engine, &split.train, &split.test, method);
                assert_eq!(r.test_size(), test_n, "{}: {method}", family.name);
                println!(
                    "{:<10} noise {:.2}  {:<14} acc {:.3}  prec {:.3}  rec {:.3}  \
                     train_err {}  dim {:?}  exact {}",
                    family.name,
                    noise,
                    method.to_string(),
                    r.accuracy(),
                    r.precision(),
                    r.recall(),
                    r.train_errors,
                    r.dimension,
                    r.fit_exact,
                );

                if noise == 0.0 && matching_tier(method, family.atoms) {
                    // Zero-noise data is separable at the matching tier:
                    // the exact paths must fit perfectly.
                    match method {
                        FitMethod::Cqm(_) | FitMethod::MinError(_) => {
                            assert!(
                                r.fit_exact && r.train_errors == 0,
                                "{}: {method} must fit zero-noise data exactly",
                                family.name
                            );
                        }
                        _ => {}
                    }
                    best_matching_accuracy = best_matching_accuracy.max(r.accuracy());
                }
                if matches!(method, FitMethod::MinError(_)) {
                    assert!(
                        r.train_errors <= split.flips,
                        "{}: min-error {} exceeds {} flips at noise {noise}",
                        family.name,
                        r.train_errors,
                        split.flips
                    );
                }
                result_lines.push(render_result(noise, split.flips, method, &r));
            }
            if noise == 0.0 {
                // The CI contract: the planted target is recoverable —
                // some matching-tier method aces the held-out set.
                assert_eq!(
                    best_matching_accuracy, 1.0,
                    "{}: zero-noise best matching-tier held-out accuracy",
                    family.name
                );
            }
        }
        family_blocks.push(format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{name}\",\n",
                "      \"target\": \"{target}\",\n",
                "      \"atoms\": {atoms},\n",
                "      \"train_n\": {train_n},\n",
                "      \"test_n\": {test_n},\n",
                "      \"density\": {density},\n",
                "      \"seed\": {seed},\n",
                "      \"results\": [\n{results}\n      ]\n",
                "    }}",
            ),
            name = family.name,
            target = family.query_text,
            atoms = family.atoms,
            train_n = train_n,
            test_n = test_n,
            density = family.default_density,
            seed = seed,
            results = result_lines.join(",\n"),
        ));
    }

    // One more pass over a single family on a fresh engine purely to
    // attribute LP-engine traffic (the sweep above shares `engine`).
    let counter_engine = Engine::new();
    let family = families().remove(1); // two_cycle: exercises Sep[ℓ≥2]
    let (train_n, test_n, seed) = scale_of(&family);
    let cfg = SampleConfig {
        train_n,
        test_n,
        density: family.default_density,
        noise: 0.0,
        seed,
    };
    let split = planted_split(&family, &cfg);
    let (_, stats) = with_engine_stats(&counter_engine, || {
        for method in methods_for(family.atoms) {
            std::hint::black_box(evaluate_with(
                &counter_engine,
                &split.train,
                &split.test,
                method,
            ));
        }
    });

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"available_parallelism\": {cores},\n",
            "  \"effective_threads\": {threads},\n",
            "  \"noise_rates\": [0.0, 0.15],\n",
            "  \"families\": [\n{families}\n  ],\n",
            "  \"counter_pass\": {{\n",
            "    \"family\": \"{cfam}\",\n",
            "    \"lps_solved\": {lps},\n",
            "    \"simplex_pivots\": {pivots},\n",
            "    \"sparse_pivots\": {sparse},\n",
            "    \"warm_start_hits\": {whits},\n",
            "    \"warm_start_misses\": {wmiss},\n",
            "    \"conflict_prunes\": {prunes},\n",
            "    \"hom_searches\": {homs},\n",
            "    \"games_solved\": {games}\n",
            "  }}\n",
            "}}\n",
        ),
        cores = cores,
        threads = effective_threads,
        families = family_blocks.join(",\n"),
        cfam = family.name,
        lps = stats.lp.lps_solved,
        pivots = stats.lp.simplex_pivots,
        sparse = stats.lp.sparse_pivots,
        whits = stats.lp.warm_start_hits,
        wmiss = stats.lp.warm_start_misses,
        prunes = stats.lp.conflict_prunes,
        homs = stats.hom.solves,
        games = stats.game.games_solved,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_generalize.json");
    std::fs::write(path, json).expect("write BENCH_generalize.json");
}

fn render_result(noise: f64, flips: usize, method: FitMethod, r: &EvalReport) -> String {
    format!(
        concat!(
            "        {{\"noise\": {noise}, \"flips\": {flips}, \"method\": \"{method}\", ",
            "\"strength\": {strength}, \"fit_exact\": {exact}, \"train_errors\": {terr}, ",
            "\"dimension\": {dim}, \"accuracy\": {acc:.4}, \"precision\": {prec:.4}, ",
            "\"recall\": {rec:.4}, \"tp\": {tp}, \"fp\": {fp}, \"tn\": {tn}, \"fn\": {fnn}}}",
        ),
        noise = noise,
        flips = flips,
        method = method,
        strength = method.strength(),
        exact = r.fit_exact,
        terr = r.train_errors,
        dim = r
            .dimension
            .map(|d| d.to_string())
            .unwrap_or_else(|| "null".to_string()),
        acc = r.accuracy(),
        prec = r.precision(),
        rec = r.recall(),
        tp = r.tp,
        fp = r.fp,
        tn = r.tn,
        fnn = r.fn_,
    )
}
