//! Speedup acceptance tests for the homomorphism engine on an n≥32
//! synthetic workload.
//!
//! * Memoization: a warm memo-table sweep must beat the uncached
//!   sequential sweep by ≥2× — this holds on any host, single-core
//!   included, because a cache hit replaces an NP search with a hash
//!   lookup.
//! * Parallelism: with ≥4 cores, the parallel driver must run an
//!   embarrassingly-parallel batch of searches ≥2× faster than the
//!   sequential loop. Skipped (with a note) on hosts without enough
//!   cores, where no wall-clock win is physically available.

use bench::time_median;
use relational::hom::par::par_map;
use relational::{homomorphism_exists, HomCache, Val};
use workloads::cycle_with_chords;

const N: usize = 32;

fn all_pairs(t: &relational::TrainingDb) -> Vec<(Val, Val)> {
    let ents = t.entities();
    ents.iter()
        .flat_map(|&a| ents.iter().map(move |&b| (a, b)))
        .collect()
}

#[test]
fn warm_cache_sweep_is_at_least_2x_faster() {
    let t = cycle_with_chords(N, N / 3, 5);
    let pairs = all_pairs(&t);
    assert!(
        t.entities().len() >= 32,
        "workload must have n >= 32 entities"
    );

    let sequential = time_median(3, || {
        let mut acc = 0usize;
        for &(a, b) in &pairs {
            acc += homomorphism_exists(&t.db, &t.db, &[(a, b)]) as usize;
        }
        std::hint::black_box(acc);
    });

    let cache = HomCache::new();
    // Charge the cache once (the same cost as one sequential sweep)…
    for &(a, b) in &pairs {
        cache.exists(&t.db, &t.db, &[(a, b)]);
    }
    // …then every further sweep is pure lookups.
    let warm = time_median(3, || {
        let mut acc = 0usize;
        for &(a, b) in &pairs {
            acc += cache.exists(&t.db, &t.db, &[(a, b)]) as usize;
        }
        std::hint::black_box(acc);
    });

    assert!(
        cache.hits() >= 3 * pairs.len() as u64,
        "sweeps must hit the memo table"
    );
    assert!(
        warm * 2.0 < sequential,
        "warm cache sweep must be >=2x faster: warm={warm:.6}s sequential={sequential:.6}s"
    );
}

#[test]
fn parallel_driver_is_at_least_2x_faster_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping: only {cores} core(s) available, no parallel win possible");
        return;
    }
    let t = cycle_with_chords(N, N / 3, 5);
    let pairs = all_pairs(&t);

    let sequential = time_median(3, || {
        let out: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| homomorphism_exists(&t.db, &t.db, &[(a, b)]))
            .collect();
        std::hint::black_box(out);
    });
    let parallel = time_median(3, || {
        let out = par_map(&pairs, |&(a, b)| {
            homomorphism_exists(&t.db, &t.db, &[(a, b)])
        });
        std::hint::black_box(out);
    });

    assert!(
        parallel * 2.0 < sequential,
        "parallel driver must be >=2x faster on {cores} cores: \
         parallel={parallel:.6}s sequential={sequential:.6}s"
    );
}
