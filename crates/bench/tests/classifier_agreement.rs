//! Regression contract for the compiled classifier artifact: on every
//! planted family, the shared-prefix trie produces exactly the feature
//! rows and labels of the naive per-feature sweep. The trie is an
//! evaluation strategy, never a new model — any divergence here is a
//! compiler bug, not a modeling choice.

use classifier::Model;
use cq::EnumConfig;
use cqsep::sep_cqm;
use engine::Engine;
use workloads::{families, sample_labeled};

#[test]
fn compiled_model_agrees_with_naive_on_every_planted_family() {
    let engine = Engine::new();
    let ctx = engine.ctx();
    for family in families() {
        let train = sample_labeled(&family, 20, family.default_density, 0xFEED);
        // An independently sampled evaluation database: agreement must
        // hold off the training distribution's support, not just on it.
        let eval = sample_labeled(&family, 26, family.default_density, 0xBEEF).db;

        let model = sep_cqm::cqm_generate_with(&engine, &train, &EnumConfig::cqm(family.atoms))
            .unwrap_or_else(|| {
                panic!(
                    "{}: zero-noise instance must be CQ[{}]-separable",
                    family.name, family.atoms
                )
            });
        let compiled = Model::compile_separator(&model);
        assert!(
            compiled.compiled_dimension() <= compiled.original_dimension(),
            "{}: core dedup never grows the bank",
            family.name
        );

        // Feature rows agree in the original statistic dimension.
        let entities = eval.entities();
        let naive_rows = model.statistic.apply_with(&engine, &eval, &entities);
        let compiled_rows = compiled.apply_in(&ctx, &eval, &entities).unwrap();
        assert_eq!(naive_rows, compiled_rows, "{}: feature rows", family.name);

        // Labels agree entity by entity.
        let naive = model.classify_in(&ctx, &eval).unwrap();
        let (fast, stats) = compiled.classify_in(&ctx, &eval).unwrap();
        for &e in &entities {
            assert_eq!(
                naive.get(e),
                fast.get(e),
                "{}: entity {}",
                family.name,
                eval.val_name(e)
            );
        }
        assert_eq!(stats.entities as usize, entities.len(), "{}", family.name);
    }
}

/// A starved frontier cap forces the per-feature exact fallback mid-walk;
/// predictions still match the naive sweep on every family (the cap is a
/// memory knob, not a semantics knob).
#[test]
fn tiny_frontier_cap_stays_exact_on_every_planted_family() {
    let engine = Engine::new();
    let ctx = engine.ctx();
    for family in families() {
        let train = sample_labeled(&family, 16, family.default_density, 0xACED);
        let eval = sample_labeled(&family, 18, family.default_density, 0xCEDE).db;
        let model = sep_cqm::cqm_generate_with(&engine, &train, &EnumConfig::cqm(family.atoms))
            .expect("matching-tier separable");
        let compiled = Model::compile_separator(&model).with_frontier_cap(1);
        let naive = model.classify_in(&ctx, &eval).unwrap();
        let (fast, stats) = compiled.classify_in(&ctx, &eval).unwrap();
        for e in eval.entities() {
            assert_eq!(naive.get(e), fast.get(e), "{}", family.name);
        }
        // Single-atom features short-circuit at the leaf without ever
        // materializing a frontier, so only multi-atom families can
        // overflow a cap of 1.
        if family.atoms >= 2 {
            assert!(
                stats.hom_fallbacks > 0,
                "{}: cap 1 must actually trigger fallbacks",
                family.name
            );
        }
    }
}
