//! Speedup acceptance test for the cover-game engine, mirroring
//! `engine_speedup.rs` one layer up: a second `CoverPreorder` sweep over
//! the same database — answered from the memo table and fanned out on the
//! parallel driver — must beat the cold sequential uncached sweep by ≥2×.
//! Skipped (with a note) on hosts with fewer than 4 cores, matching the
//! hom-engine parallel test.

use bench::time_median;
use covergame::{CoverPreorder, GameCache};
use workloads::cycle_with_chords;

const N: usize = 16;
const K: usize = 1;

#[test]
fn warm_preorder_sweep_is_at_least_2x_faster() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping: only {cores} core(s) available");
        return;
    }
    let t = cycle_with_chords(N, N / 3, 5);
    let elems = t.entities();
    assert!(elems.len() >= N, "workload must have n >= {N} entities");

    let cold_sequential = time_median(3, || {
        std::hint::black_box(CoverPreorder::compute_seq(&t.db, &elems, K));
    });

    // Charge an isolated cache with one sweep (the same n² games the
    // sequential sweep played)…
    let cache = GameCache::new();
    let reference = CoverPreorder::compute_with(&t.db, &elems, K, &cache);
    let solved = cache.misses();
    // …then every further sweep is a skeleton build plus pure lookups.
    let warm = time_median(3, || {
        std::hint::black_box(CoverPreorder::compute_with(&t.db, &elems, K, &cache));
    });

    assert_eq!(
        cache.misses(),
        solved,
        "warm sweeps must not re-solve games"
    );
    assert!(cache.hits() > 0, "warm sweeps must hit the memo table");
    assert!(
        warm * 2.0 < cold_sequential,
        "warm parallel sweep must be >=2x faster: \
         warm={warm:.6}s cold_sequential={cold_sequential:.6}s"
    );

    // And the fast path must compute the same preorder.
    let seq = CoverPreorder::compute_seq(&t.db, &elems, K);
    assert_eq!(seq.leq, reference.leq, "cached/parallel sweep must agree");
}
