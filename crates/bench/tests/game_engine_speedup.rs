//! Speedup acceptance test for the cover-game engine, mirroring
//! `engine_speedup.rs` one layer up: a second `CoverPreorder` sweep over
//! the same database — answered from the memo table and fanned out on the
//! parallel driver — must beat the cold sequential uncached sweep by ≥2×.
//! The exact cache-accounting assertions run on every host; only the
//! timing comparison is skipped (with a note) on hosts with fewer than 4
//! cores, matching the hom-engine parallel test.

use bench::{time_median, with_engine_stats};
use covergame::CoverPreorder;
use cqsep::Engine;
use workloads::cycle_with_chords;

const N: usize = 16;
const K: usize = 1;

#[test]
fn warm_preorder_sweep_is_at_least_2x_faster() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = cycle_with_chords(N, N / 3, 5);
    let elems = t.entities();
    assert!(elems.len() >= N, "workload must have n >= {N} entities");

    // Charge an isolated engine with one sweep (the same n² games the
    // sequential sweep plays). On an isolated engine the accounting is
    // exact: every cold-sweep miss is exactly one game analysis…
    let engine = Engine::new();
    let (reference, cold_stats) = with_engine_stats(&engine, || engine.preorder(&t.db, &elems, K));
    let queries = cold_stats.game.cache_hits + cold_stats.game.cache_misses;
    assert!(
        cold_stats.game.cache_misses > 0,
        "cold sweep must solve games"
    );
    assert_eq!(
        cold_stats.game.games_solved, cold_stats.game.cache_misses,
        "every cold miss is exactly one analysis: {cold_stats:?}"
    );
    // …and every further sweep is a skeleton build plus pure lookups:
    // the same `queries` game queries, all hits, zero new analyses.
    let (_, warm_stats) = with_engine_stats(&engine, || engine.preorder(&t.db, &elems, K));
    assert_eq!(warm_stats.game.games_solved, 0, "{warm_stats:?}");
    assert_eq!(warm_stats.game.cache_misses, 0, "{warm_stats:?}");
    assert_eq!(warm_stats.game.fixpoint_sweeps, 0, "{warm_stats:?}");
    assert_eq!(warm_stats.game.cache_hits, queries, "{warm_stats:?}");

    // And the fast path must compute the same preorder.
    let seq = CoverPreorder::compute_seq(&t.db, &elems, K);
    assert_eq!(seq.leq, reference.leq, "cached/parallel sweep must agree");

    if cores < 4 {
        eprintln!("skipping speedup timing: only {cores} core(s) available");
        return;
    }
    let cold_sequential = time_median(3, || {
        std::hint::black_box(CoverPreorder::compute_seq(&t.db, &elems, K));
    });
    let warm = time_median(3, || {
        std::hint::black_box(engine.preorder(&t.db, &elems, K));
    });
    assert!(
        warm * 2.0 < cold_sequential,
        "warm parallel sweep must be >=2x faster: \
         warm={warm:.6}s cold_sequential={cold_sequential:.6}s"
    );
}
