//! Counter-accounting regression for the generalization harness: the
//! engine figures the bench tables are built from (`LpStats` including
//! the warm-start `BasisStore` traffic, hom-search and game counters)
//! must *add up* — per-fit deltas summed across a harness run equal the
//! totals of the identical run measured as one block on a fresh engine,
//! and the warm-start hit/miss split stays within the LP count.

use bench::{search_workload, with_engine_stats};
use cqsep::generalize::{evaluate_with, FitMethod};
use cqsep::sep_dim::search_columns_with;
use cqsep::Engine;
use linsep::LpStats;
use workloads::{family_by_name, planted_split, SampleConfig};

fn methods() -> Vec<FitMethod> {
    vec![
        FitMethod::Cqm(1),
        FitMethod::Cqm(2),
        FitMethod::Ghw(1),
        FitMethod::Sep { m: 2, ell: 1 },
        FitMethod::Sep { m: 2, ell: 2 },
        FitMethod::MinError(2),
    ]
}

/// The noisy two-cycle instance: inseparable at every exact tier, so
/// the `Sep[ℓ]` sweeps exhaust their subset space, the conflict pruner
/// fires, and the min-error branch-and-bound runs a real search.
fn noisy_split() -> workloads::PlantedSplit {
    let family = family_by_name("two_cycle").unwrap();
    let cfg = SampleConfig {
        train_n: 20,
        test_n: 12,
        density: family.default_density,
        noise: 0.2,
        seed: 33,
    };
    planted_split(&family, &cfg)
}

/// Accumulate the additive figures; `basis_reuse_depth` is a gauge
/// (high-water mark, passed through unchanged by delta captures), so it
/// is tracked as a running max instead of a sum.
fn add(into: &mut LpStats, s: &LpStats) {
    into.lps_solved += s.lps_solved;
    into.simplex_pivots += s.simplex_pivots;
    into.sparse_pivots += s.sparse_pivots;
    into.warm_start_hits += s.warm_start_hits;
    into.warm_start_misses += s.warm_start_misses;
    into.basis_reuse_depth = into.basis_reuse_depth.max(s.basis_reuse_depth);
    into.perceptron_hits += s.perceptron_hits;
    into.conflict_prunes += s.conflict_prunes;
}

fn assert_lp_eq(summed: &LpStats, total: &LpStats) {
    assert_eq!(summed.lps_solved, total.lps_solved, "lps_solved");
    assert_eq!(
        summed.simplex_pivots, total.simplex_pivots,
        "simplex_pivots"
    );
    assert_eq!(summed.sparse_pivots, total.sparse_pivots, "sparse_pivots");
    assert_eq!(
        summed.warm_start_hits, total.warm_start_hits,
        "warm_start_hits"
    );
    assert_eq!(
        summed.warm_start_misses, total.warm_start_misses,
        "warm_start_misses"
    );
    // The gauge is monotone on one engine, so the running max across
    // per-call captures is the block run's final high-water mark.
    assert_eq!(
        summed.basis_reuse_depth, total.basis_reuse_depth,
        "basis_reuse_depth"
    );
    assert_eq!(
        summed.perceptron_hits, total.perceptron_hits,
        "perceptron_hits"
    );
    assert_eq!(
        summed.conflict_prunes, total.conflict_prunes,
        "conflict_prunes"
    );
}

#[test]
fn per_fit_deltas_sum_to_isolated_engine_totals() {
    let split = noisy_split();

    // Leg 1: one isolated single-threaded engine, one `with_engine_stats`
    // capture per fit, deltas accumulated by hand. Single-threaded so the
    // subset sweep's early-exit race cannot blur the counts.
    let per_call = Engine::new().with_threads(1);
    let mut lp = LpStats::default();
    let (mut homs, mut games) = (0u64, 0u64);
    for method in methods() {
        let (r, stats) = with_engine_stats(&per_call, || {
            evaluate_with(&per_call, &split.train, &split.test, method)
        });
        assert_eq!(r.test_size(), 12, "{method}");
        // Every warm-capable LP is either a hit or a miss, and only LPs
        // can be warm-started: the split stays within the LP count.
        assert!(
            stats.lp.warm_start_hits + stats.lp.warm_start_misses <= stats.lp.lps_solved,
            "{method}: warm {}+{} > lps {}",
            stats.lp.warm_start_hits,
            stats.lp.warm_start_misses,
            stats.lp.lps_solved
        );
        add(&mut lp, &stats.lp);
        homs += stats.hom.solves;
        games += stats.game.games_solved;
    }

    // Leg 2: the identical run measured as one block on a fresh engine
    // with the same configuration. Counters are plain sums, the run is
    // deterministic, both cache stacks start cold: the totals must match
    // figure for figure. (`bignum_promotions` is excluded — it is the
    // one process-global figure `with_engine_stats` cannot attribute.)
    let block = Engine::new().with_threads(1);
    let (_, total) = with_engine_stats(&block, || {
        for method in methods() {
            std::hint::black_box(evaluate_with(&block, &split.train, &split.test, method));
        }
    });
    assert_lp_eq(&lp, &total.lp);
    assert_eq!(homs, total.hom.solves, "hom solves");
    assert_eq!(games, total.game.games_solved, "games solved");

    // Non-vacuity: at harness scale the separation decisions are made by
    // the conflict pruner and the integer perceptron (a conflicted column
    // pair kills a subset before any tableau is built), and the fits do
    // real hom/game work — the sums above must be about *something*.
    assert!(lp.conflict_prunes > 0, "{lp:?}");
    assert!(lp.perceptron_hits > 0, "{lp:?}");
    assert!(games > 0);
}

/// The same two-leg accounting under genuine LP traffic: the parity
/// workload's columns are inseparable without ever conflicting, so the
/// exhausted adaptive sweep solves LPs throughout and the `BasisStore`
/// warm-start path fires — its hit/miss counters must sum exactly like
/// the rest. Single-threaded engines keep the S → S ∪ {j} reuse chains
/// deterministic. Guards the warm plumbing the speedup bench reports on.
#[test]
fn warm_start_traffic_sums_consistently_across_sweeps() {
    let (columns, labels) = search_workload(4);

    let per_call = Engine::new().with_threads(1);
    let mut lp = LpStats::default();
    for ell in [2usize, 3] {
        let (verdict, stats) = with_engine_stats(&per_call, || {
            search_columns_with(&per_call, &columns, &labels, ell)
        });
        assert!(verdict.is_none(), "parity is not {ell}-separable");
        assert!(
            stats.lp.warm_start_hits + stats.lp.warm_start_misses <= stats.lp.lps_solved,
            "ell={ell}: {:?}",
            stats.lp
        );
        add(&mut lp, &stats.lp);
    }

    let block = Engine::new().with_threads(1);
    let (_, total) = with_engine_stats(&block, || {
        for ell in [2usize, 3] {
            std::hint::black_box(search_columns_with(&block, &columns, &labels, ell));
        }
    });
    assert_lp_eq(&lp, &total.lp);

    assert!(lp.lps_solved > 0, "{lp:?}");
    assert!(
        lp.warm_start_hits > 0,
        "exhausted parity sweeps must warm-start: {lp:?}"
    );
}

/// The harness sweep on a parallel engine: totals may be reached through
/// a different schedule, but the structural invariants hold regardless.
#[test]
fn parallel_harness_counters_stay_structurally_consistent() {
    let split = noisy_split();
    let engine = Engine::new();
    let (_, stats) = with_engine_stats(&engine, || {
        for method in methods() {
            std::hint::black_box(evaluate_with(&engine, &split.train, &split.test, method));
        }
    });
    assert!(stats.game.games_solved > 0);
    assert!(
        stats.lp.warm_start_hits + stats.lp.warm_start_misses <= stats.lp.lps_solved,
        "{:?}",
        stats.lp
    );
    // Warm hits reuse a stored basis: reuse depth only accumulates on
    // hits.
    if stats.lp.warm_start_hits == 0 {
        assert_eq!(stats.lp.basis_reuse_depth, 0, "{:?}", stats.lp);
    }
}
