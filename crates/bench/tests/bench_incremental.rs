//! Incremental-engine acceptance benchmark: after an insert-only delta
//! to the evaluation database, a warm engine (same memo tables, lineage
//! edge recorded by `Engine::apply_delta`) must redo strictly less hom
//! and game work than a cold engine on the identical post-edit
//! workload, and be ≥ 3× faster wall-clock. Recorded in
//! `BENCH_incremental.json` at the repository root.
//!
//! The workload models the `append`/`recheck` serving shape: a fixed
//! training database (its preorder games repeat verbatim — exact cache
//! hits) and a growing evaluation database (cross games and feature hom
//! tests keep one stable-fingerprint side, so positive verdicts proved
//! before the edit transfer through the insert-only subsumption rule).
//! Per-query agreement between the warm and cold legs is asserted for
//! every chain vector and every feature bit.
//!
//! Hard assertions (the CI contract):
//!
//! * warm and cold legs agree on every query of every family;
//! * the warm leg performs strictly fewer hom searches and strictly
//!   fewer game solves than the cold leg;
//! * subsumption actually fired (hom + game subsumption hits > 0);
//! * aggregate warm wall-clock is ≥ 3× faster than cold.

use cq::{enumerate_feature_queries, EnumConfig};
use engine::{Engine, EngineStats};
use relational::{Database, Delta, Val};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::synthetic::graph_schema;
use workloads::{family_by_name, planted_split, SampleConfig};

const FAMILIES: [&str; 3] = ["out_edge", "out_path2", "two_cycle"];
const TRAIN_N: usize = 28;
const EVAL_N: usize = 12;
/// Required aggregate warm-vs-cold wall-clock speedup.
const MIN_SPEEDUP: f64 = 3.0;

/// One full post-edit evaluation pass: the training preorder, a chain
/// vector per evaluation entity, and the `CQ[2]` feature bits of every
/// evaluation entity. Returns everything it computed so the warm and
/// cold legs can be compared query by query.
fn evaluation_pass(
    engine: &Engine,
    train: &relational::TrainingDb,
    eval: &Database,
    bank: &[(Database, Val)],
) -> (Vec<Vec<i32>>, Vec<Vec<bool>>) {
    let ctx = engine.ctx();
    let pre = ctx
        .preorder(&train.db, &train.entities(), 1)
        .expect("unbounded ctx cannot interrupt");
    let chains = eval
        .entities()
        .iter()
        .map(|&f| {
            ctx.chain_vector_for(&pre, &train.db, eval, f)
                .expect("unbounded ctx cannot interrupt")
        })
        .collect();
    let features = eval
        .entities()
        .iter()
        .map(|&e| {
            bank.iter()
                .map(|(canon, root)| {
                    ctx.hom_exists(canon, eval, &[(*root, e)])
                        .expect("unbounded ctx cannot interrupt")
                })
                .collect()
        })
        .collect();
    (chains, features)
}

/// The insert-only growth: two fresh entities wired into the existing
/// evaluation graph (named so they cannot collide with the sampler's
/// `v<i>` vertices).
fn growth_delta(eval: &Database) -> Delta {
    let anchor = eval.val_name(eval.entities()[0]).to_string();
    Delta::new()
        .add_entity("zx", None)
        .add_entity("zy", None)
        .add_fact("E", &["zx", &anchor])
        .add_fact("E", &[&anchor, "zy"])
        .add_fact("E", &["zx", "zy"])
}

struct FamilyResult {
    name: &'static str,
    eval_facts: usize,
    cold_s: f64,
    warm_s: f64,
    cold: EngineStats,
    warm: EngineStats,
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "sized for release builds; debug-mode delta/subsumption coverage \
              lives in incremental_props.rs and the engine/service test suites"
)]
fn warm_engine_beats_cold_recheck_after_append() {
    let bank: Vec<(Database, Val)> =
        enumerate_feature_queries(&graph_schema(), &EnumConfig::cqm(2).syntactic())
            .iter()
            .map(|q| {
                let (canon, frees) = q.canonical_db();
                (canon, frees[0])
            })
            .collect();
    assert!(!bank.is_empty(), "feature bank must be non-empty");

    let mut results = Vec::new();
    for (i, name) in FAMILIES.into_iter().enumerate() {
        let family = family_by_name(name).expect("built-in family");
        let config = SampleConfig::for_family(&family, TRAIN_N, EVAL_N, 0xBEEF + i as u64);
        let split = planted_split(&family, &config);
        let eval = split.test.db;

        // Warm leg: run the full pass once pre-edit (untimed), apply the
        // growth through the engine so the lineage edge is recorded,
        // then time the post-edit pass.
        let warm = Engine::new().with_threads(1);
        evaluation_pass(&warm, &split.train, &eval, &bank);
        let mut grown = eval.clone();
        let receipt = warm
            .apply_delta(&mut grown, &growth_delta(&eval))
            .expect("growth delta applies cleanly");
        assert_eq!(receipt.kind, relational::DeltaKind::InsertOnly);
        let before_warm = warm.stats();
        let warm_start = Instant::now();
        let (warm_chains, warm_feats) = evaluation_pass(&warm, &split.train, &grown, &bank);
        let warm_s = warm_start.elapsed().as_secs_f64();
        let warm_stats = warm.stats().since(&before_warm);

        // Cold leg: a fresh engine runs the identical post-edit pass.
        let cold = Engine::new().with_threads(1);
        let cold_start = Instant::now();
        let (cold_chains, cold_feats) = evaluation_pass(&cold, &split.train, &grown, &bank);
        let cold_s = cold_start.elapsed().as_secs_f64();
        let cold_stats = cold.stats();

        // Per-query agreement: every chain vector, every feature bit.
        assert_eq!(
            warm_chains, cold_chains,
            "{name}: warm and cold chain vectors must agree"
        );
        assert_eq!(
            warm_feats, cold_feats,
            "{name}: warm and cold feature bits must agree"
        );

        results.push(FamilyResult {
            name,
            eval_facts: grown.fact_count(),
            cold_s,
            warm_s,
            cold: cold_stats,
            warm: warm_stats,
        });
    }

    let agg = |f: fn(&FamilyResult) -> u64| results.iter().map(f).sum::<u64>();
    let warm_solves = agg(|r| r.warm.hom.solves);
    let cold_solves = agg(|r| r.cold.hom.solves);
    let warm_games = agg(|r| r.warm.game.games_solved);
    let cold_games = agg(|r| r.cold.game.games_solved);
    let hom_sub = agg(|r| r.warm.sub.hom_subsumption_hits);
    let game_sub = agg(|r| r.warm.sub.game_subsumption_hits);
    let warm_s: f64 = results.iter().map(|r| r.warm_s).sum();
    let cold_s: f64 = results.iter().map(|r| r.cold_s).sum();
    let speedup = cold_s / warm_s.max(1e-9);

    for r in &results {
        println!(
            "{:<10} cold {:.3}s ({} homs, {} games)  warm {:.3}s ({} homs, {} games, \
             {} hom-sub, {} game-sub)",
            r.name,
            r.cold_s,
            r.cold.hom.solves,
            r.cold.game.games_solved,
            r.warm_s,
            r.warm.hom.solves,
            r.warm.game.games_solved,
            r.warm.sub.hom_subsumption_hits,
            r.warm.sub.game_subsumption_hits
        );
    }
    println!("aggregate: cold {cold_s:.3}s warm {warm_s:.3}s speedup {speedup:.1}x");

    let mut fam_json = String::new();
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            fam_json,
            concat!(
                "    {{\n",
                "      \"family\": \"{name}\",\n",
                "      \"eval_facts\": {facts},\n",
                "      \"cold_s\": {cold_s:.6},\n",
                "      \"warm_s\": {warm_s:.6},\n",
                "      \"cold_hom_searches\": {ch},\n",
                "      \"warm_hom_searches\": {wh},\n",
                "      \"cold_game_solves\": {cg},\n",
                "      \"warm_game_solves\": {wg},\n",
                "      \"warm_hom_subsumption_hits\": {hs},\n",
                "      \"warm_game_subsumption_hits\": {gs}\n",
                "    }}{comma}\n",
            ),
            name = r.name,
            facts = r.eval_facts,
            cold_s = r.cold_s,
            warm_s = r.warm_s,
            ch = r.cold.hom.solves,
            wh = r.warm.hom.solves,
            cg = r.cold.game.games_solved,
            wg = r.warm.game.games_solved,
            hs = r.warm.sub.hom_subsumption_hits,
            gs = r.warm.sub.game_subsumption_hits,
            comma = if i + 1 < results.len() { "," } else { "" },
        );
    }
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"workload\": {{\n",
            "    \"train_entities\": {train_n},\n",
            "    \"eval_entities\": {eval_n},\n",
            "    \"feature_bank\": {bank},\n",
            "    \"delta\": \"2 entities, 3 edges (insert-only)\"\n",
            "  }},\n",
            "  \"families\": [\n{fams}  ],\n",
            "  \"aggregate\": {{\n",
            "    \"cold_s\": {cold_s:.6},\n",
            "    \"warm_s\": {warm_s:.6},\n",
            "    \"speedup\": {speedup:.2},\n",
            "    \"min_speedup\": {min_speedup:.1},\n",
            "    \"cold_hom_searches\": {cold_solves},\n",
            "    \"warm_hom_searches\": {warm_solves},\n",
            "    \"cold_game_solves\": {cold_games},\n",
            "    \"warm_game_solves\": {warm_games},\n",
            "    \"hom_subsumption_hits\": {hom_sub},\n",
            "    \"game_subsumption_hits\": {game_sub},\n",
            "    \"agreement\": true\n",
            "  }}\n",
            "}}\n",
        ),
        train_n = TRAIN_N,
        eval_n = EVAL_N,
        bank = bank.len(),
        fams = fam_json,
        cold_s = cold_s,
        warm_s = warm_s,
        speedup = speedup,
        min_speedup = MIN_SPEEDUP,
        cold_solves = cold_solves,
        warm_solves = warm_solves,
        cold_games = cold_games,
        warm_games = warm_games,
        hom_sub = hom_sub,
        game_sub = game_sub,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(path, json).expect("write BENCH_incremental.json");

    assert!(
        warm_solves < cold_solves,
        "warm leg must run strictly fewer hom searches ({warm_solves} vs {cold_solves})"
    );
    assert!(
        warm_games < cold_games,
        "warm leg must solve strictly fewer games ({warm_games} vs {cold_games})"
    );
    assert!(
        hom_sub + game_sub > 0,
        "subsumption never fired — the warm wins would be exact hits only"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "aggregate speedup {speedup:.2}x below the {MIN_SPEEDUP:.1}x floor \
         (cold {cold_s:.3}s, warm {warm_s:.3}s)"
    );
}
