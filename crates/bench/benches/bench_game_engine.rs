//! E11 — the cover-game engine itself: the sequential uncached
//! `CoverPreorder` sweep vs the parallel memoized pipeline, on the
//! chorded-cycle workload whose n² game solves dominate GHW(k)-Sep.
//! The warm runs answer repeat games from the memo table; `--stats` on
//! the CLI prints the corresponding counters.

use covergame::{CoverPreorder, GameCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::cycle_with_chords;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E11_game_engine");
    g.sample_size(10);
    for n in [8usize, 12, 16] {
        let t = cycle_with_chords(n, n / 3, 5);
        let elems = t.entities();
        g.bench_with_input(BenchmarkId::new("sequential", n), &t, |b, t| {
            b.iter(|| black_box(CoverPreorder::compute_seq(&t.db, &elems, 1)))
        });
        g.bench_with_input(BenchmarkId::new("cached_cold", n), &t, |b, t| {
            b.iter(|| {
                let cache = GameCache::new();
                black_box(CoverPreorder::compute_with(&t.db, &elems, 1, &cache))
            })
        });
        g.bench_with_input(BenchmarkId::new("cached_warm", n), &t, |b, t| {
            // Charge an isolated cache once; iterations then measure the
            // skeleton build plus pure memo-table lookups.
            let cache = GameCache::new();
            black_box(CoverPreorder::compute_with(&t.db, &elems, 1, &cache));
            b.iter(|| black_box(CoverPreorder::compute_with(&t.db, &elems, 1, &cache)))
        });
        g.bench_with_input(BenchmarkId::new("pipeline", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_ghw::ghw_separable(t, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
