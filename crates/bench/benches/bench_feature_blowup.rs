//! E4 — feature-size growth on the twin-path family (Theorem 5.7(b)
//! shape): extraction cost and output size grow with the parameter while
//! the database grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::twin_paths;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E4_feature_blowup");
    g.sample_size(10);
    for n in [3usize, 5, 7, 9] {
        let t = twin_paths(n);
        let u = t.db.val_by_name("u").unwrap();
        let v = t.db.val_by_name("v").unwrap();
        g.bench_with_input(BenchmarkId::new("extract", n), &t, |b, t| {
            b.iter(|| {
                black_box(
                    covergame::extract_distinguishing_query(&t.db, u, &t.db, v, 1, 5_000_000)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
