//! E12: LP-engine microbenchmarks.
//!
//! Two axes, mirroring the engine changes:
//!
//! * `big_simplex` vs `rat_simplex` — the seed `BigRational` solver
//!   against the hybrid small/big `Rat` solver with in-place pivoting
//!   and per-row integer rescaling, on identical dense LP batches.
//! * `search_seq` vs `search_par` — the sequential depth-first
//!   ≤ℓ-subset sweep against the parallel size-ascending sweep with
//!   conflict pre-checks, on an XOR-labelled column matrix where no
//!   small subset separates (the sweep's worst case).

use bench::{lp_batch, search_workload};
use cqsep::sep_dim::{search_columns, search_columns_seq};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use linsep::{solve_lp, solve_lp_big};
use numeric::BigRational;

type BigLp = (Vec<Vec<BigRational>>, Vec<BigRational>, Vec<BigRational>);

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E12_lp_engine");
    g.sample_size(10);

    for &nvars in &[4usize, 8] {
        let batch = lp_batch(8, nvars, 2 * nvars, 0xC0FFEE + nvars as u64);
        let big_batch: Vec<BigLp> = batch
            .iter()
            .map(|(a, b, cc)| {
                (
                    a.iter()
                        .map(|row| row.iter().map(|x| x.to_big()).collect())
                        .collect(),
                    b.iter().map(|x| x.to_big()).collect(),
                    cc.iter().map(|x| x.to_big()).collect(),
                )
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("big_simplex", nvars),
            &big_batch,
            |bm, batch| {
                bm.iter(|| {
                    for (a, b, cc) in batch {
                        black_box(solve_lp_big(a, b, cc));
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("rat_simplex", nvars),
            &batch,
            |bm, batch| {
                bm.iter(|| {
                    for (a, b, cc) in batch {
                        black_box(solve_lp(a, b, cc));
                    }
                })
            },
        );
    }

    for &nbits in &[3usize, 4] {
        let t = search_workload(nbits);
        g.bench_with_input(BenchmarkId::new("search_seq", nbits), &t, |bm, t| {
            bm.iter(|| black_box(search_columns_seq(&t.0, &t.1, 3)))
        });
        g.bench_with_input(BenchmarkId::new("search_par", nbits), &t, |bm, t| {
            bm.iter(|| black_box(search_columns(&t.0, &t.1, 3)))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
