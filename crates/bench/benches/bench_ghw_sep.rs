//! E1 — `GHW(k)`-Sep runtime vs database size (Theorem 5.3: PTIME).
//! The series' growth must look polynomial; compare k = 1 vs k = 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::random_digraph_train;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_ghw_sep");
    g.sample_size(10);
    for n in [8usize, 12, 16, 24] {
        let t = random_digraph_train(n, 2.0 / n as f64, 11);
        g.bench_with_input(BenchmarkId::new("k1", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_ghw::ghw_separable(t, 1)))
        });
        if n <= 12 {
            g.bench_with_input(BenchmarkId::new("k2", n), &t, |b, t| {
                b.iter(|| black_box(cqsep::sep_ghw::ghw_separable(t, 2)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
