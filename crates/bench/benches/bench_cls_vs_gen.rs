//! E5 — Algorithm 1 (classification without materialization) vs explicit
//! generation (Proposition 5.6) on the alternating-chain family: the
//! paper's central asymmetry (§5.2 vs §5.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::alternating_paths;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E5_cls_vs_gen");
    g.sample_size(10);
    for m in [4usize, 6, 8] {
        let t = alternating_paths(m);
        let eval = alternating_paths(m + 1).db;
        g.bench_with_input(BenchmarkId::new("classify", m), &t, |b, t| {
            b.iter(|| black_box(cqsep::cls_ghw::ghw_classify(t, &eval, 1).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("generate", m), &t, |b, t| {
            b.iter(|| black_box(cqsep::gen_ghw::ghw_generate(t, 1, 10_000_000).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
