//! E10 — the homomorphism engine itself: sequential solver vs the
//! memoized (and, on multi-core hosts, parallel) pipeline entry points,
//! on the n=32 chorded-cycle workload whose pairwise sweeps dominate
//! CQ-Sep. The cached runs answer repeat queries from the memo table;
//! `repro e10` prints the corresponding speedup table with counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relational::{exists_cached, homomorphism_exists, HomCache};
use std::hint::black_box;
use workloads::cycle_with_chords;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E10_hom_engine");
    g.sample_size(10);
    for n in [16usize, 32, 48] {
        let t = cycle_with_chords(n, n / 3, 5);
        let pairs = t.opposing_pairs();
        g.bench_with_input(BenchmarkId::new("sequential", n), &t, |b, t| {
            b.iter(|| {
                black_box(pairs.iter().all(|&(p, q)| {
                    !(homomorphism_exists(&t.db, &t.db, &[(p, q)])
                        && homomorphism_exists(&t.db, &t.db, &[(q, p)]))
                }))
            })
        });
        g.bench_with_input(BenchmarkId::new("cached_cold", n), &t, |b, t| {
            b.iter(|| {
                let cache = HomCache::new();
                black_box(pairs.iter().all(|&(p, q)| {
                    !(cache.exists(&t.db, &t.db, &[(p, q)])
                        && cache.exists(&t.db, &t.db, &[(q, p)]))
                }))
            })
        });
        g.bench_with_input(BenchmarkId::new("cached_warm", n), &t, |b, t| {
            // Warm the global cache once; iterations then measure pure
            // memo-table lookups.
            black_box(cqsep::sep_cq::cq_separable(t));
            b.iter(|| {
                black_box(pairs.iter().all(|&(p, q)| {
                    !(exists_cached(&t.db, &t.db, &[(p, q)])
                        && exists_cached(&t.db, &t.db, &[(q, p)]))
                }))
            })
        });
        g.bench_with_input(BenchmarkId::new("pipeline", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_cq::cq_separable(t)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
