//! E3 — `CQ[m]`-Sep: polynomial in |D| for fixed m, exponential in m
//! (Proposition 4.1 / Corollary 4.2).

use cq::EnumConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::random_digraph_train;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_cqm_sep");
    g.sample_size(10);
    // Scaling in |D| at m = 2.
    for n in [8usize, 16, 32] {
        let t = random_digraph_train(n, 2.0 / n as f64, 3);
        g.bench_with_input(BenchmarkId::new("m2_scale_n", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_cqm::cqm_separable(t, &EnumConfig::cqm(2))))
        });
    }
    // Scaling in m at n = 10.
    let t = random_digraph_train(10, 0.2, 3);
    for m in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::new("scale_m", m), &m, |b, &m| {
            b.iter(|| black_box(cqsep::sep_cqm::cqm_separable(&t, &EnumConfig::cqm(m))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
