//! E8 — FO-Sep (automorphism orbits; GI-complete per Corollary 8.2) vs
//! CQ-Sep on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::random_digraph_train;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E8_fo");
    g.sample_size(10);
    for n in [8usize, 12, 16] {
        let t = random_digraph_train(n, 2.0 / n as f64, 31);
        g.bench_with_input(BenchmarkId::new("fo", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::fo::fo_separable(t)))
        });
        g.bench_with_input(BenchmarkId::new("cq", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_cq::cq_separable(t)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
