//! E7 — approximate separability (Theorem 7.4): Algorithm 2's runtime
//! stays polynomial across noise levels and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::{flip_labels, random_digraph_train};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E7_apx");
    g.sample_size(10);
    for n in [10usize, 16, 24] {
        let clean = random_digraph_train(n, 2.0 / n as f64, 77);
        let (noisy, _) = flip_labels(&clean, 0.2, 13);
        g.bench_with_input(BenchmarkId::new("algorithm2", n), &noisy, |b, t| {
            b.iter(|| black_box(cqsep::apx::ghw_min_errors(t, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
