//! E9 — `CQ[m]`-Sep[*] (Proposition 6.9: NP-complete even for fixed
//! arity): the column-subset search as the dimension budget varies.

use cq::EnumConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::alternating_paths;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E9_sep_star");
    g.sample_size(10);
    let t = alternating_paths(4);
    for ell in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::new("cqm_sep_ell", ell), &ell, |b, &ell| {
            b.iter(|| black_box(cqsep::sep_dim::cqm_sep_dim(&t, &EnumConfig::cqm(4), ell)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
