//! E6 — bounded-dimension separability Sep[ℓ] (Theorem 6.6 shape): the
//! up-set/QBE search cost as the entity count grows.

use cqsep::sep_dim::{cq_sep_dim, DimBudget};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::alternating_paths;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E6_sep_dim");
    g.sample_size(10);
    let budget = DimBudget::default();
    for m in [3usize, 4] {
        let t = alternating_paths(m);
        g.bench_with_input(BenchmarkId::new("cq_sep_ell", m), &t, |b, t| {
            b.iter(|| black_box(cq_sep_dim(t, m - 1, &budget).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
