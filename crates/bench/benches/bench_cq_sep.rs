//! E2 — unrestricted CQ-Sep (the coNP baseline of Theorem 3.2) against
//! GHW(1)-Sep on the same chorded-cycle instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::cycle_with_chords;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_cq_sep");
    g.sample_size(10);
    for n in [10usize, 16, 24, 32] {
        let t = cycle_with_chords(n, n / 3, 5);
        g.bench_with_input(BenchmarkId::new("cq", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_cq::cq_separable(t)))
        });
        g.bench_with_input(BenchmarkId::new("ghw1", n), &t, |b, t| {
            b.iter(|| black_box(cqsep::sep_ghw::ghw_separable(t, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
