//! Shared helpers for the benchmark harness: timing utilities,
//! growth-rate estimation, and engine counter capture (homomorphism,
//! cover-game, and LP), used by both the Criterion benches and the
//! `repro` binary that regenerates the EXPERIMENTS.md tables.

use covergame::GameStats;
use linsep::LpStats;
use relational::HomStats;
use std::time::Instant;

/// Run `f` and return its result together with the homomorphism-engine
/// counter deltas (searches, nodes, wipeouts, backtracks, cache
/// hits/misses) it caused.
pub fn with_hom_stats<R>(f: impl FnOnce() -> R) -> (R, HomStats) {
    let before = HomStats::snapshot();
    let out = f();
    (out, HomStats::snapshot().since(&before))
}

/// Run `f` and return its result together with the cover-game-engine
/// counter deltas (games solved, positions explored, fixpoint sweeps,
/// game-cache hits/misses) it caused.
pub fn with_game_stats<R>(f: impl FnOnce() -> R) -> (R, GameStats) {
    let before = GameStats::snapshot();
    let out = f();
    (out, GameStats::snapshot().since(&before))
}

/// Run `f` and return its result together with the LP-engine counter
/// deltas (LPs solved, simplex pivots, perceptron hits, conflict prunes,
/// big-number promotions) it caused.
pub fn with_lp_stats<R>(f: impl FnOnce() -> R) -> (R, LpStats) {
    let before = LpStats::snapshot();
    let out = f();
    (out, LpStats::snapshot().since(&before))
}

/// Run `f` and return its result together with the unified counter
/// deltas it caused on a caller-supplied [`engine::Engine`]. On an
/// isolated engine (one the test constructed itself) every figure except
/// `lp.bignum_promotions` is exact and attributable — unlike the three
/// process-global helpers above, which see concurrent tests too.
pub fn with_engine_stats<R>(
    engine: &engine::Engine,
    f: impl FnOnce() -> R,
) -> (R, engine::EngineStats) {
    let before = engine.stats();
    let out = f();
    (out, engine.stats().since(&before))
}

/// One LP instance `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` as `(A, b, c)`.
pub type LpInstance = (Vec<Vec<numeric::Rat>>, Vec<numeric::Rat>, Vec<numeric::Rat>);

/// Deterministic batch of dense LP instances for the LP-engine
/// benches. Coefficients are small integers; every fourth row gets a
/// negative right-hand side so the two-phase machinery (artificial
/// variables) is exercised, not just phase 2.
pub fn lp_batch(count: usize, nvars: usize, nrows: usize, seed: u64) -> Vec<LpInstance> {
    use numeric::qint;
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    (0..count)
        .map(|_| {
            let a: Vec<Vec<numeric::Rat>> = (0..nrows)
                .map(|_| (0..nvars).map(|_| qint(next() % 11 - 5)).collect())
                .collect();
            let b: Vec<numeric::Rat> = (0..nrows)
                .map(|i| {
                    if i % 4 == 3 {
                        qint(-(next() % 4) - 1)
                    } else {
                        qint(next() % 9 + 1)
                    }
                })
                .collect();
            let c: Vec<numeric::Rat> = (0..nvars).map(|_| qint(next() % 9 - 3)).collect();
            (a, b, c)
        })
        .collect()
}

/// Deterministic "parity" column matrix for the subset-search benches.
/// Rows are the `2^nbits` bit vectors; candidate column `m` (every mask
/// except 0 and the full mask) is the ±1 parity of `row & m`; the label
/// is the full parity of the row. The label lies in a subset's XOR-span
/// iff some sub-family XORs to it, and an XOR of two or more ±1 columns
/// is never linearly separable — so every subset of at most three
/// columns fails, some by a cheap conflict prune and some only after a
/// full perceptron-plus-LP refutation. The sweep must exhaust the whole
/// size-ascending candidate space: the worst case the parallel driver
/// is built for, with a realistic mix of cheap and expensive subsets.
pub fn search_workload(nbits: usize) -> (Vec<Vec<i32>>, Vec<i32>) {
    assert!((2..=8).contains(&nbits));
    let nrows = 1usize << nbits;
    let full = nrows - 1;
    let parity = |x: usize| if (x.count_ones() & 1) == 0 { 1 } else { -1 };
    let columns: Vec<Vec<i32>> = (1..full)
        .map(|m| (0..nrows).map(|r| parity(r & m)).collect())
        .collect();
    let labels: Vec<i32> = (0..nrows).map(|r| parity(r & full)).collect();
    (columns, labels)
}

/// Median wall-clock time of `reps` runs of `f`, in seconds.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps >= 1);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Least-squares slope of log(y) against log(x): the empirical polynomial
/// degree of a scaling series. Exponential growth shows up as a degree
/// that keeps increasing with x; polynomial growth converges.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Successive doubling ratios `y_{i+1} / y_i` — the exponential-growth
/// fingerprint (roughly constant ratios > 1 mean exponential in i).
pub fn growth_ratios(ys: &[f64]) -> Vec<f64> {
    ys.windows(2).map(|w| w[1] / w[0].max(1e-12)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|x| (x as f64, (x * x) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_exponential_grows() {
        let poly: Vec<(f64, f64)> = (1..=8).map(|x| (x as f64, (x * x * x) as f64)).collect();
        let expo: Vec<(f64, f64)> = (1..=8)
            .map(|x| (x as f64, (1u64 << (2 * x)) as f64))
            .collect();
        assert!(loglog_slope(&expo) > loglog_slope(&poly));
    }

    #[test]
    fn ratios_detect_doubling() {
        let r = growth_ratios(&[1.0, 2.0, 4.0, 8.0]);
        assert!(r.iter().all(|&x| (x - 2.0).abs() < 1e-9));
    }

    #[test]
    fn timing_is_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn hom_stats_capture_sees_engine_work() {
        use relational::{DbBuilder, Schema};
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let p = DbBuilder::new(s.clone())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .build();
        let c3 = DbBuilder::new(s)
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            .build();
        let (ans, stats) = with_hom_stats(|| relational::homomorphism_exists(&p, &c3, &[]));
        assert!(ans);
        assert!(stats.solves >= 1, "{stats:?}");
        assert!(stats.nodes_expanded >= 1, "{stats:?}");
    }

    #[test]
    fn lp_stats_capture_sees_engine_work() {
        // An instance the perceptron gives up on (XOR-ish is infeasible
        // but conflict-free in 2 columns of 4 distinct rows) forces a
        // real LP; an easy one exercises the perceptron counter.
        let xor_vectors = vec![vec![1, 1], vec![1, -1], vec![-1, 1], vec![-1, -1]];
        let (ans, stats) = with_lp_stats(|| linsep::separate(&xor_vectors, &[-1, 1, 1, -1]));
        assert!(ans.is_none());
        assert!(stats.lps_solved >= 1, "{stats:?}");
        // The default backend is the sparse revised simplex with the
        // dense tableau as fallback; either way the solve pivots.
        assert!(stats.sparse_pivots + stats.simplex_pivots >= 1, "{stats:?}");
        let (ans, stats) = with_lp_stats(|| linsep::separate(&xor_vectors, &[1, -1, -1, -1]));
        assert!(ans.is_some());
        assert!(stats.perceptron_hits >= 1, "{stats:?}");
    }

    #[test]
    fn workload_generators_are_deterministic_and_shaped() {
        let b1 = lp_batch(3, 4, 6, 42);
        let b2 = lp_batch(3, 4, 6, 42);
        assert_eq!(b1, b2, "lp_batch must be deterministic");
        assert_eq!(b1.len(), 3);
        assert_eq!(b1[0].0.len(), 6);
        assert_eq!(b1[0].0[0].len(), 4);
        assert!(b1[0].1[3].is_negative(), "every fourth rhs is negative");

        let (cols, labels) = search_workload(3);
        assert_eq!(cols.len(), 6, "masks 1..full, full excluded");
        assert_eq!(labels.len(), 8);
        assert!(cols.iter().all(|c| c.len() == 8));
        let flipped: Vec<i32> = labels.iter().map(|v| -v).collect();
        assert!(
            cols.iter().all(|c| *c != labels && *c != flipped),
            "no candidate column may equal the label (would separate at size 1)"
        );
    }

    #[test]
    fn game_stats_capture_sees_engine_work() {
        use relational::{DbBuilder, Schema};
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let c3 = DbBuilder::new(s.clone())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .build();
        let c2 = DbBuilder::new(s)
            .fact("E", &["x", "y"])
            .fact("E", &["y", "x"])
            .build();
        let (ans, stats) = with_game_stats(|| covergame::cover_implies(&c3, &[], &c2, &[], 1));
        assert!(ans);
        assert!(stats.games_solved >= 1, "{stats:?}");
        assert!(stats.positions_explored >= 1, "{stats:?}");
        assert!(stats.fixpoint_sweeps >= 1, "{stats:?}");
    }
}
