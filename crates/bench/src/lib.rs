//! Shared helpers for the benchmark harness: timing utilities,
//! growth-rate estimation, and engine counter capture (homomorphism and
//! cover-game), used by both the Criterion benches and the `repro` binary
//! that regenerates the EXPERIMENTS.md tables.

use covergame::GameStats;
use relational::HomStats;
use std::time::Instant;

/// Run `f` and return its result together with the homomorphism-engine
/// counter deltas (searches, nodes, wipeouts, backtracks, cache
/// hits/misses) it caused.
pub fn with_hom_stats<R>(f: impl FnOnce() -> R) -> (R, HomStats) {
    let before = HomStats::snapshot();
    let out = f();
    (out, HomStats::snapshot().since(&before))
}

/// Run `f` and return its result together with the cover-game-engine
/// counter deltas (games solved, positions explored, fixpoint sweeps,
/// game-cache hits/misses) it caused.
pub fn with_game_stats<R>(f: impl FnOnce() -> R) -> (R, GameStats) {
    let before = GameStats::snapshot();
    let out = f();
    (out, GameStats::snapshot().since(&before))
}

/// Median wall-clock time of `reps` runs of `f`, in seconds.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps >= 1);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Least-squares slope of log(y) against log(x): the empirical polynomial
/// degree of a scaling series. Exponential growth shows up as a degree
/// that keeps increasing with x; polynomial growth converges.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Successive doubling ratios `y_{i+1} / y_i` — the exponential-growth
/// fingerprint (roughly constant ratios > 1 mean exponential in i).
pub fn growth_ratios(ys: &[f64]) -> Vec<f64> {
    ys.windows(2).map(|w| w[1] / w[0].max(1e-12)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|x| (x as f64, (x * x) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_exponential_grows() {
        let poly: Vec<(f64, f64)> = (1..=8).map(|x| (x as f64, (x * x * x) as f64)).collect();
        let expo: Vec<(f64, f64)> = (1..=8)
            .map(|x| (x as f64, (1u64 << (2 * x)) as f64))
            .collect();
        assert!(loglog_slope(&expo) > loglog_slope(&poly));
    }

    #[test]
    fn ratios_detect_doubling() {
        let r = growth_ratios(&[1.0, 2.0, 4.0, 8.0]);
        assert!(r.iter().all(|&x| (x - 2.0).abs() < 1e-9));
    }

    #[test]
    fn timing_is_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn hom_stats_capture_sees_engine_work() {
        use relational::{DbBuilder, Schema};
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let p = DbBuilder::new(s.clone())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .build();
        let c3 = DbBuilder::new(s)
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            .build();
        let (ans, stats) = with_hom_stats(|| relational::homomorphism_exists(&p, &c3, &[]));
        assert!(ans);
        assert!(stats.solves >= 1, "{stats:?}");
        assert!(stats.nodes_expanded >= 1, "{stats:?}");
    }

    #[test]
    fn game_stats_capture_sees_engine_work() {
        use relational::{DbBuilder, Schema};
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let c3 = DbBuilder::new(s.clone())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .build();
        let c2 = DbBuilder::new(s)
            .fact("E", &["x", "y"])
            .fact("E", &["y", "x"])
            .build();
        let (ans, stats) = with_game_stats(|| covergame::cover_implies(&c3, &[], &c2, &[], 1));
        assert!(ans);
        assert!(stats.games_solved >= 1, "{stats:?}");
        assert!(stats.positions_explored >= 1, "{stats:?}");
        assert!(stats.fixpoint_sweeps >= 1, "{stats:?}");
    }
}
