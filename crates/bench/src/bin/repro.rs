//! Regenerate the paper-reproduction tables of EXPERIMENTS.md.
//!
//! The paper's evaluation is Table 1 (a complexity landscape) plus
//! worst-case constructions; each experiment here measures the empirical
//! *shape* of one claim. Usage:
//!
//! ```text
//! repro [all|table1|e1|e2|e3|e4|e5|e6|e7|e8|e9|e10]
//! ```

use bench::{growth_ratios, loglog_slope, time_median};
use cq::EnumConfig;
use cqsep::sep_dim::{cq_sep_dim, DimBudget};
use cqsep::{apx, cls_ghw, fo, gen_ghw, sep_cq, sep_cqm, sep_ghw};
use std::hint::black_box;
use workloads::{
    alternating_paths, cycle_with_chords, example_6_2, flip_labels, random_digraph_train,
    twin_paths,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run = |name: &str| arg == "all" || arg == name;
    if run("e1") {
        e1_ghw_sep_scaling();
    }
    if run("e2") {
        e2_cq_sep_scaling();
    }
    if run("e3") {
        e3_cqm_scaling();
    }
    if run("e4") {
        e4_feature_blowup();
    }
    if run("e5") {
        e5_cls_vs_gen();
    }
    if run("e6") {
        e6_sep_dim();
    }
    if run("e7") {
        e7_apx();
    }
    if run("e8") {
        e8_fo();
    }
    if run("e9") {
        e9_sep_star();
    }
    if run("e10") {
        e10_hom_engine();
    }
    if run("table1") {
        table1();
    }
}

/// E10: the homomorphism engine — memoization (and parallel fan-out on
/// multi-core hosts) vs the sequential pairwise sweep, with the engine's
/// own counters. This is the implementation-side speedup experiment, not
/// a claim of the paper.
fn e10_hom_engine() {
    use relational::homomorphism_exists;
    header("E10: hom engine — memoized/parallel pipeline vs sequential sweep");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host cores: {cores}");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>9}",
        "n", "pairs", "sequential (s)", "pipeline (s)", "speedup"
    );
    for n in [16usize, 32, 48] {
        let t = cycle_with_chords(n, n / 3, 5);
        let pairs = t.opposing_pairs();
        let s_seq = time_median(3, || {
            black_box(pairs.iter().all(|&(p, q)| {
                !(homomorphism_exists(&t.db, &t.db, &[(p, q)])
                    && homomorphism_exists(&t.db, &t.db, &[(q, p)]))
            }));
        });
        // One cold run charges the cache; the median then reflects the
        // steady state a pipeline (check → chain → classify) sees.
        black_box(sep_cq::cq_separable(&t));
        let (s_pipe, engine) = bench::with_hom_stats(|| {
            time_median(3, || {
                black_box(sep_cq::cq_separable(&t));
            })
        });
        println!(
            "{n:>6} {:>8} {s_seq:>14.5} {s_pipe:>14.5} {:>8.1}x",
            pairs.len(),
            s_seq / s_pipe.max(1e-9)
        );
        println!("{}", engine.report());
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// E1: GHW(k)-Sep runtime vs |D| — Theorem 5.3's PTIME claim. The
/// empirical log-log slope must look polynomial (bounded, stable).
fn e1_ghw_sep_scaling() {
    header("E1: GHW(k)-Sep scales polynomially (Thm 5.3)");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "n", "facts", "k=1 (s)", "k=2 (s)"
    );
    let mut pts1 = Vec::new();
    let mut pts2 = Vec::new();
    for n in [8usize, 12, 16, 24, 32] {
        let t = random_digraph_train(n, 2.0 / n as f64, 11);
        let facts = t.db.fact_count();
        let s1 = time_median(3, || {
            black_box(sep_ghw::ghw_separable(&t, 1));
        });
        let s2 = if n <= 16 {
            time_median(1, || {
                black_box(sep_ghw::ghw_separable(&t, 2));
            })
        } else {
            f64::NAN
        };
        println!("{n:>6} {facts:>8} {s1:>12.4} {s2:>12.4}");
        pts1.push((facts as f64, s1));
        if !s2.is_nan() {
            pts2.push((facts as f64, s2));
        }
    }
    println!(
        "empirical degree: k=1 ≈ {:.2}, k=2 ≈ {:.2} (polynomial, as claimed)",
        loglog_slope(&pts1),
        loglog_slope(&pts2)
    );
}

/// E2: CQ-Sep (coNP baseline) on chorded cycles — the homomorphism tests
/// dominate; compare against the GHW(1) test on the same instances.
fn e2_cq_sep_scaling() {
    header("E2: CQ-Sep (coNP) vs GHW(1)-Sep on the same instances (Thm 3.2)");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "n", "facts", "CQ (s)", "GHW(1) (s)"
    );
    let (_, engine) = bench::with_hom_stats(|| {
        for n in [10usize, 16, 24, 32] {
            let t = cycle_with_chords(n, n / 3, 5);
            let facts = t.db.fact_count();
            let s_cq = time_median(3, || {
                black_box(sep_cq::cq_separable(&t));
            });
            let s_ghw = time_median(3, || {
                black_box(sep_ghw::ghw_separable(&t, 1));
            });
            println!("{n:>6} {facts:>8} {s_cq:>12.4} {s_ghw:>12.4}");
        }
    });
    println!("(CQ-Sep stays feasible here because the hom solver prunes well;");
    println!(" its worst case is exponential, GHW(k)'s is not.)");
    println!("{}", engine.report());
}

/// E3: CQ[m]-Sep — polynomial in |D| for fixed schema, exponential in m
/// (the 2^{q(k)} factor of Proposition 4.1).
fn e3_cqm_scaling() {
    header("E3: CQ[m]-Sep: polynomial in |D|, exponential in m (Prop 4.1)");
    println!(
        "{:>6} {:>6} {:>10} {:>12}",
        "n", "m", "#features", "time (s)"
    );
    let mut by_m = Vec::new();
    for m in 1..=3 {
        let t = random_digraph_train(10, 0.2, 3);
        let stat = sep_cqm::full_statistic(&t.db, &EnumConfig::cqm(m));
        let s = time_median(1, || {
            black_box(sep_cqm::cqm_separable(&t, &EnumConfig::cqm(m)));
        });
        println!("{:>6} {m:>6} {:>10} {s:>12.4}", 10, stat.dimension());
        by_m.push(stat.dimension() as f64);
    }
    println!(
        "feature-count growth ratios per +1 atom: {:?} (exponential in m)",
        growth_ratios(&by_m)
            .iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
    );
    println!("{:>6} {:>6} {:>12}", "n", "m", "time (s)");
    let mut pts = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let t = random_digraph_train(n, 2.0 / n as f64, 3);
        let s = time_median(3, || {
            black_box(sep_cqm::cqm_separable(&t, &EnumConfig::cqm(2)));
        });
        println!("{n:>6} {:>6} {s:>12.4}", 2);
        pts.push((n as f64, s));
    }
    println!(
        "empirical degree in |D| at m=2: ≈ {:.2} (polynomial)",
        loglog_slope(&pts)
    );
}

/// E4: Theorem 5.7's two lower bounds, measured.
fn e4_feature_blowup() {
    header("E4: statistic dimension and feature size must grow (Thm 5.7)");
    // (a) dimension = m - 1 on the alternating chain.
    println!("{:>4} {:>12}", "m", "min dim");
    for m in [3usize, 4, 5] {
        let t = alternating_paths(m);
        let schema = t.db.schema().clone();
        let pool: Vec<cq::Cq> = (1..=m)
            .map(|len| {
                let mut body = String::from("q(x0) :- eta(x0)");
                for i in 0..len {
                    body += &format!(", E(x{i},x{})", i + 1);
                }
                cq::parse::parse_cq(&schema, &body).unwrap()
            })
            .collect();
        let dim = fo::min_dimension_of(&t, &pool, m).unwrap();
        println!("{m:>4} {dim:>12}");
    }
    // (b) extracted distinguishing feature size grows with n.
    println!("{:>4} {:>8} {:>14}", "n", "|D|", "feature atoms");
    for n in [3usize, 5, 7, 9] {
        let t = twin_paths(n);
        let u = t.db.val_by_name("u").unwrap();
        let v = t.db.val_by_name("v").unwrap();
        let (q, _) =
            covergame::extract_distinguishing_query(&t.db, u, &t.db, v, 1, 5_000_000).unwrap();
        println!("{n:>4} {:>8} {:>14}", t.db.fact_count(), q.atoms().len());
    }
    println!("(the paper's appendix gadget achieves 2^n; see DESIGN.md §4)");
}

/// E5: classification without generation (Theorem 5.8) — Algorithm 1
/// stays fast while explicit generation cost explodes with the budget it
/// needs.
fn e5_cls_vs_gen() {
    header("E5: classify cheaply, generate expensively (Thm 5.8 vs Prop 5.6)");
    println!(
        "{:>4} {:>14} {:>14} {:>12}",
        "m", "classify (s)", "generate (s)", "stat atoms"
    );
    for m in [4usize, 6, 8] {
        let t = alternating_paths(m);
        let eval = alternating_paths(m + 1).db;
        let s_cls = time_median(3, || {
            black_box(cls_ghw::ghw_classify(&t, &eval, 1).unwrap());
        });
        let mut atoms = 0usize;
        let s_gen = time_median(1, || {
            let model = gen_ghw::ghw_generate(&t, 1, 10_000_000).unwrap();
            atoms = model.statistic.total_atoms();
            black_box(&model);
        });
        println!("{m:>4} {s_cls:>14.4} {s_gen:>14.4} {atoms:>12}");
    }
}

/// E6: bounded dimension — Sep[ℓ] via QBE search (Theorem 6.6 shape) on
/// Example 6.2-style instances and growing chains.
fn e6_sep_dim() {
    header("E6: Sep[ℓ] search cost grows with entities (Thm 6.6 / Lemma 6.3)");
    let b = DimBudget::default();
    let t = example_6_2();
    println!(
        "Example 6.2: Sep[1] = {}, Sep[2] = {} (the paper's gap)",
        cq_sep_dim(&t, 1, &b).unwrap(),
        cq_sep_dim(&t, 2, &b).unwrap()
    );
    println!("{:>4} {:>6} {:>12}", "m", "ℓ", "time (s)");
    for m in [3usize, 4, 5] {
        let t = alternating_paths(m);
        let ell = m - 1;
        let mut blown = false;
        let s = time_median(1, || {
            match cq_sep_dim(&t, ell, &b) {
                Ok(ans) => {
                    black_box(ans);
                }
                Err(_) => blown = true, // product budget: the EXPTIME wall
            }
        });
        if blown {
            println!("{m:>4} {ell:>6} {:>12}", "budget!");
        } else {
            println!("{m:>4} {ell:>6} {s:>12.4}");
        }
    }
    println!("(larger m exhausts the product budget — the coNEXPTIME wall)");
}

/// E7: approximate separability — Algorithm 2's optimal error tracks the
/// injected noise rate (Theorem 7.4).
fn e7_apx() {
    header("E7: optimal relabeling error vs injected noise (Thm 7.4)");
    // Twin-rich workload: same-length path starts are →_1-equivalent, so
    // noise inside a twin group is genuinely irreparable. (On random
    // graphs every entity is its own class and min-error is always 0.)
    let clean = workloads::replicated_paths(4, 4);
    let n = clean.entities().len();
    println!(
        "{:>7} {:>7} {:>12} {:>10}",
        "noise", "flips", "min errors", "time (s)"
    );
    for noise in [0.0, 0.1, 0.2, 0.3] {
        let (noisy, flips) = flip_labels(&clean, noise, 13);
        let mut err = 0usize;
        let s = time_median(1, || {
            err = apx::ghw_min_errors(&noisy, 1);
        });
        println!("{noise:>7.2} {flips:>7} {err:>12} {s:>10.4}");
        assert!(err <= flips);
    }
    println!("(errors ≤ flips always: Algorithm 2 is optimal; n = {n})");
}

/// E8: FO separability (automorphism orbits, GI flavor) vs CQ
/// separability on the same instances (§8).
fn e8_fo() {
    header("E8: FO-Sep (GI) vs CQ-Sep (coNP) (Cor 8.2)");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>8}",
        "n", "FO (s)", "CQ (s)", "FO?", "CQ?"
    );
    for n in [8usize, 12, 16] {
        let t = random_digraph_train(n, 2.0 / n as f64, 31);
        let mut fo_ans = false;
        let s_fo = time_median(3, || {
            fo_ans = fo::fo_separable(&t);
        });
        let mut cq_ans = false;
        let s_cq = time_median(3, || {
            cq_ans = sep_cq::cq_separable(&t);
        });
        println!("{n:>6} {s_fo:>12.4} {s_cq:>12.4} {fo_ans:>8} {cq_ans:>8}");
        // CQ-separable implies FO-separable, never the converse.
        assert!(!cq_ans || fo_ans);
    }
}

/// E9: Sep[*] with the dimension as input — the column-subset search that
/// makes the problem NP-hard even for fixed arity (Prop 6.9 / 6.12).
fn e9_sep_star() {
    header("E9: CQ[m]-Sep[*]: column-subset search cost (Prop 6.9)");
    println!("{:>4} {:>4} {:>8} {:>12}", "m", "ℓ", "answer", "time (s)");
    let t = alternating_paths(4);
    for ell in 1..=3 {
        let mut ans = false;
        let s = time_median(1, || {
            ans = cqsep::sep_dim::cqm_sep_dim(&t, &EnumConfig::cqm(4), ell);
        });
        println!("{:>4} {ell:>4} {ans:>8} {s:>12.4}", 4);
    }
}

/// Table 1, empirically: for each cell print the claimed class and what
/// the implementation observed on the scaling experiments.
fn table1() {
    header("Table 1 (paper) with the implementation's empirical observations");
    println!("problem        | CQ              | CQ[m]          | GHW(k)");
    println!("---------------+-----------------+----------------+----------------");
    println!("L-Sep          | coNP-c. [22]    | PTIME          | PTIME");
    println!("  (observed)   | hom tests, fast | poly in |D|,   | poly (E1)");
    println!("               | on avg (E2)     | exp in m (E3)  |");
    println!("L-Sep[l]       | coNEXPTIME-c.   | PTIME*         | EXPTIME-c.");
    println!("  (observed)   | product blowup  | column search  | product+game");
    println!("               | (E6)            | (E9)           | (E6)");
    println!();
    println!("* for fixed schema; NP-c. when the schema varies (Thm 6.10).");
    println!("Generation:    CQ poly-size (sep_cq), GHW(k) exponential (E4/E5),");
    println!("               classification always poly (Algorithm 1, E5).");
}
