//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely for downstream
//! interop; nothing in-tree serializes through serde (the text formats in
//! `relational::spec` and `cqsep::persist` are the actual media). These
//! derives therefore expand to nothing — they exist so the derive
//! attributes (including inert `#[serde(...)]` field attributes) keep
//! compiling without network access to the real serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
