//! Offline stand-in for `serde_derive`.
//!
//! The real serde_derive generates full (de)serialization visitors; the
//! in-tree media are hand-written formats (the text formats in
//! `relational::spec` and `cqsep::persist`, the binary cache tables in
//! `engine::persist`), so all a derive has to do here is genuinely
//! implement the `serde` marker traits for the annotated type. That is
//! enough for bounds like `T: Serialize` on persistence structs to hold
//! and keeps the derive attributes (including inert `#[serde(...)]`
//! field attributes) compiling without network access.
//!
//! Generic types are skipped (the derive expands to nothing for them, as
//! the pre-upgrade no-op version did for everything): emitting a correct
//! blanket impl would need real bound propagation, and no in-tree derive
//! site is generic.

use proc_macro::{TokenStream, TokenTree};

/// The derived type's name, if it is a non-generic struct/enum/union:
/// the identifier following the item keyword, with no `<` after it.
fn non_generic_type_name(item: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let kw = tokens.iter().position(|t| {
        matches!(t, TokenTree::Ident(i)
            if { let s = i.to_string(); s == "struct" || s == "enum" || s == "union" })
    })?;
    let name = match tokens.get(kw + 1)? {
        TokenTree::Ident(i) => i.to_string(),
        _ => return None,
    };
    match tokens.get(kw + 2) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => None,
        _ => Some(name),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    match non_generic_type_name(item) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    match non_generic_type_name(item) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        None => TokenStream::new(),
    }
}
