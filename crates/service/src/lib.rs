//! The task layer: every solver call packaged as an interruptible job
//! behind a long-lived, multi-tenant front-end.
//!
//! The stack, bottom to top:
//!
//! * [`task`] — the typed [`Task`] / [`Outcome`] vocabulary and the
//!   interruptible executor [`run_task_in`] (both the CLI subcommands
//!   and the server workers are thin clients of it);
//! * [`queue`] — a bounded, blocking priority queue with priority
//!   *aging* (waiting jobs gain a level every few pops, so low
//!   priorities cannot starve) and per-tenant *fair-share* tie-breaks
//!   fed by the [`FairShare`] cost ledger;
//! * [`tenant`] — one [`engine::Engine`] + [`Residents`] registry per
//!   tenant, held in a size-capped LRU that snapshots
//!   ([`engine::Engine::save`]) then evicts cold tenants and
//!   warm-restores them from `<cache-dir>/<tenant>/` on return;
//! * [`pool`] — worker threads routing each job to its tenant's
//!   engine, executed under its own [`Ctx`](engine::Ctx) built from
//!   the job's timeout, with every in-flight interrupt handle
//!   registered for shutdown cancellation;
//! * [`server`] — the `cqsep-serve` NDJSON protocol over stdin/stdout,
//!   a Unix domain socket, or TCP ([`serve_tcp`] — concurrent
//!   connections sharing one pool);
//! * [`router`] — the `cqsep-router` shard front-end: N supervised
//!   `cqsep-serve --tcp` worker processes, tenants rendezvous-hashed
//!   across them, NDJSON lines proxied to the owning shard and
//!   replayed on worker crash-restart;
//! * [`json`] — the minimal hand-written JSON the protocol rides on
//!   (the workspace `serde` is an offline marker-trait stand-in).
//!
//! Two shutdown disciplines, both leaving exactly one [`pool::Response`]
//! per submitted job: end-of-input *drains* (queued jobs still run);
//! an explicit `{"op":"shutdown"}` *cancels* — queued jobs are failed
//! without running and in-flight solvers are tripped through their
//! interrupt handles, unwinding with
//! [`Interrupted`](engine::Interrupted) at the next cancellation check.

pub mod json;
pub mod pool;
pub mod queue;
pub mod router;
pub mod server;
pub mod task;
pub mod tenant;

pub use pool::{Job, Pool, PoolCounters, Response};
pub use queue::{Closed, FairShare, JobQueue, TenantBill, DEFAULT_AGING_PERIOD};
pub use router::{run_router, shard_for, RouterOpts};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{
    serve, serve_tcp, serve_with_residents, ServeOpts, ServeSummary, TcpSummary, MAX_REQUEST_BYTES,
};
pub use task::{
    execute_in, execute_res_in, load_database, load_training, render_labels, run_task_in,
    run_task_res_in, run_task_with, ClassSpec, Outcome, Residents, Task, TaskOutput,
    DEFAULT_CHECK_CLASSES, DEFAULT_EVALUATE_METHODS,
};
pub use tenant::{validate_tenant_id, TenantConfig, TenantHandle, TenantRegistry};
