//! The task layer: every solver call packaged as an interruptible job
//! behind a long-lived front-end.
//!
//! The stack, bottom to top:
//!
//! * [`task`] — the typed [`Task`] / [`Outcome`] vocabulary and the
//!   interruptible executor [`run_task_in`] (both the CLI subcommands
//!   and the server workers are thin clients of it);
//! * [`queue`] — a bounded, blocking priority queue
//!   (`Mutex` + `Condvar` + `BinaryHeap`) providing backpressure;
//! * [`pool`] — worker threads sharing one [`engine::Engine`] (one set
//!   of memo tables), each job executed under its own
//!   [`Ctx`](engine::Ctx) built from the job's timeout, with every
//!   in-flight interrupt handle registered for shutdown cancellation;
//! * [`server`] — the `cqsep-serve` NDJSON protocol over
//!   stdin/stdout or a Unix domain socket;
//! * [`json`] — the minimal hand-written JSON the protocol rides on
//!   (the workspace `serde` is an offline marker-trait stand-in).
//!
//! Two shutdown disciplines, both leaving exactly one [`pool::Response`]
//! per submitted job: end-of-input *drains* (queued jobs still run);
//! an explicit `{"op":"shutdown"}` *cancels* — queued jobs are failed
//! without running and in-flight solvers are tripped through their
//! interrupt handles, unwinding with
//! [`Interrupted`](engine::Interrupted) at the next cancellation check.

pub mod json;
pub mod pool;
pub mod queue;
pub mod server;
pub mod task;

pub use pool::{Job, Pool, Response};
pub use queue::{Closed, JobQueue};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{serve, serve_with_residents, ServeOpts, ServeSummary};
pub use task::{
    execute_in, execute_res_in, load_database, load_training, render_labels, run_task_in,
    run_task_res_in, run_task_with, ClassSpec, Outcome, Residents, Task, TaskOutput,
    DEFAULT_CHECK_CLASSES, DEFAULT_EVALUATE_METHODS,
};
