//! The `cqsep-router` shard front-end: one listening socket fanning
//! tenants out over N supervised `cqsep-serve --tcp` worker processes.
//!
//! # Placement
//!
//! Each request's tenant id (requests without one share the `""`
//! tenant) is placed by *rendezvous hashing*: the owning shard is
//! `argmax_i fnv1a(tenant, i)`. Placement is therefore stable (the
//! same tenant always lands on the same shard, so its engine caches,
//! residents, and snapshots live in exactly one worker) and needs no
//! coordination state.
//!
//! # Supervision
//!
//! Each shard is a child `cqsep-serve --tcp 127.0.0.1:0` process. A
//! supervisor thread reads the worker's `listening on <addr>` stdout
//! line, publishes the address (bumping a generation counter), and
//! polls the child; if it exits outside a shutdown it is respawned and
//! the new address published. Worker lifecycle is reported on stderr
//! as `cqsep-router: shard <i> up (pid <p>, <addr>, generation <g>)`.
//!
//! # Proxying
//!
//! Each client connection opens (lazily) one upstream connection per
//! shard it touches. The router guarantees every forwarded request has
//! a numeric `id` (assigning router ids from [`AUTO_ID_BASE`] when the
//! client sent none) and keeps the line in a pending table until the
//! matching response arrives. If the upstream connection dies — worker
//! crash — the router reconnects to the shard's next generation and
//! **resends every pending line**, so a batch survives a crash-restart.
//! That is at-least-once delivery: a request that executed but whose
//! response was lost runs again (duplicate responses are dropped by the
//! pending table). Clients that reuse an in-flight `id` on one
//! connection get the two responses collapsed into one.
//!
//! `{"op":"stats"}` is answered by the router itself (shard addresses,
//! generations, forwarded counts) so probes can find and query the
//! shards directly; `{"op":"shutdown"}` is broadcast to every worker
//! (each snapshots its tenants and exits) and stops the router.

use crate::json::Json;
use crate::server::{read_request_line, RawLine, MAX_REQUEST_BYTES};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Router ids assigned to requests that arrive without one start here
/// (far above any plausible client id, well inside `f64` exactness).
pub const AUTO_ID_BASE: u64 = 900_000_000_000;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterOpts {
    /// Worker processes to spawn and hash tenants across.
    pub shards: usize,
    /// Path to the `cqsep-serve` binary; defaults to the sibling of the
    /// running executable.
    pub serve_bin: Option<PathBuf>,
    /// Extra arguments passed to every worker (`--workers`, `--tenants`, …).
    pub worker_args: Vec<String>,
    /// Snapshot root; shard `i` gets `<dir>/shard-<i>` as its own
    /// `--cache-dir` (tenant sets are disjoint across shards).
    pub cache_dir: Option<PathBuf>,
}

impl Default for RouterOpts {
    fn default() -> RouterOpts {
        RouterOpts {
            shards: 2,
            serve_bin: None,
            worker_args: Vec::new(),
            cache_dir: None,
        }
    }
}

/// Rendezvous (highest-random-weight) placement: stable under shard
/// count, no coordination state, every tenant owned by exactly one
/// shard.
pub fn shard_for(tenant: &str, shards: usize) -> usize {
    assert!(shards >= 1);
    let mut best = 0;
    let mut best_weight = 0u64;
    for i in 0..shards {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for &b in tenant.as_bytes() {
            mix(b);
        }
        mix(0xff); // separator: "" and shard bytes must not collide
        for b in (i as u64).to_le_bytes() {
            mix(b);
        }
        if i == 0 || h > best_weight {
            best_weight = h;
            best = i;
        }
    }
    best
}

#[derive(Debug, Default)]
struct ShardState {
    addr: Option<SocketAddr>,
    generation: u64,
}

struct Shard {
    index: usize,
    state: Mutex<ShardState>,
    ready: Condvar,
    forwarded: AtomicU64,
}

impl Shard {
    fn new(index: usize) -> Shard {
        Shard {
            index,
            state: Mutex::new(ShardState::default()),
            ready: Condvar::new(),
            forwarded: AtomicU64::new(0),
        }
    }

    /// Block until the shard has a published address (or the budget or
    /// the router runs out).
    fn wait_addr(&self, budget: Duration, shutting_down: &AtomicBool) -> Option<SocketAddr> {
        let deadline = Instant::now() + budget;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(addr) = st.addr {
                return Some(addr);
            }
            if shutting_down.load(Ordering::SeqCst) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.ready.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }
}

#[derive(Clone)]
struct WorkerSpec {
    bin: PathBuf,
    args: Vec<String>,
    cache_dir: Option<PathBuf>,
}

impl WorkerSpec {
    fn spawn(&self, shard: usize) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.bin);
        cmd.arg("--tcp").arg("127.0.0.1:0");
        if let Some(dir) = &self.cache_dir {
            cmd.arg("--cache-dir")
                .arg(dir.join(format!("shard-{shard}")));
        }
        cmd.args(&self.args);
        cmd.stdin(Stdio::null()).stdout(Stdio::piped());
        cmd.spawn()
    }
}

/// Spawn → publish address → poll → (restart | reap), forever.
fn supervise(shard: Arc<Shard>, spec: WorkerSpec, shutting_down: Arc<AtomicBool>) {
    let mut backoff: u32 = 0;
    while !shutting_down.load(Ordering::SeqCst) {
        let mut child = match spec.spawn(shard.index) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cqsep-router: shard {}: spawn failed: {e}", shard.index);
                std::thread::sleep(Duration::from_millis(500));
                continue;
            }
        };
        let pid = child.id();
        let stdout = child.stdout.take().expect("worker stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut addr: Option<SocketAddr> = None;
        for line in lines.by_ref() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.split("listening on ").nth(1) {
                addr = rest.trim().parse().ok();
                break;
            }
        }
        let Some(addr) = addr else {
            eprintln!(
                "cqsep-router: shard {} worker (pid {pid}) exited before listening",
                shard.index
            );
            let _ = child.kill();
            let _ = child.wait();
            std::thread::sleep(Duration::from_millis(250u64 << backoff.min(4)));
            backoff += 1;
            continue;
        };
        backoff = 0;
        let generation = {
            let mut st = shard.state.lock().unwrap();
            st.generation += 1;
            st.addr = Some(addr);
            shard.ready.notify_all();
            st.generation
        };
        eprintln!(
            "cqsep-router: shard {} up (pid {pid}, {addr}, generation {generation})",
            shard.index
        );
        // Keep the worker's stdout drained while we poll its status.
        let drain = std::thread::spawn(move || for _ in lines {});
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break Some(status),
                Ok(None) => {
                    if shutting_down.load(Ordering::SeqCst) {
                        // The shutdown broadcast asks it to exit (and
                        // snapshot); grant a grace period, then insist.
                        let mut waited = Duration::ZERO;
                        let grace = loop {
                            if let Ok(Some(s)) = child.try_wait() {
                                break Some(s);
                            }
                            if waited >= Duration::from_secs(5) {
                                break None;
                            }
                            std::thread::sleep(Duration::from_millis(100));
                            waited += Duration::from_millis(100);
                        };
                        if grace.is_none() {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        break grace;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(_) => break None,
            }
        };
        let _ = drain.join();
        shard.state.lock().unwrap().addr = None;
        if shutting_down.load(Ordering::SeqCst) {
            break;
        }
        eprintln!(
            "cqsep-router: shard {} worker (pid {pid}) exited{}; restarting",
            shard.index,
            status.map(|s| format!(" ({s})")).unwrap_or_default()
        );
    }
}

/// The client-facing half of one connection: serialized writes plus an
/// outstanding-response gauge, so EOF can wait for in-flight work.
struct ClientOut {
    stream: Mutex<TcpStream>,
    outstanding: Mutex<u64>,
    drained: Condvar,
}

impl ClientOut {
    fn send_line(&self, line: &str) {
        let mut s = self.stream.lock().unwrap();
        let _ = writeln!(s, "{line}");
        let _ = s.flush();
    }

    fn add(&self) {
        *self.outstanding.lock().unwrap() += 1;
    }

    fn settle(&self) {
        let mut n = self.outstanding.lock().unwrap();
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self, budget: Duration) {
        let deadline = Instant::now() + budget;
        let mut n = self.outstanding.lock().unwrap();
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self.drained.wait_timeout(n, deadline - now).unwrap();
            n = guard;
        }
    }
}

#[derive(Default)]
struct WriterSlot {
    conn: Option<TcpStream>,
    generation: u64,
}

/// One client connection's lazy channel to one shard. Pending lines
/// survive worker restarts (they are resent on reconnect).
struct Upstream {
    shard: Arc<Shard>,
    writer: Mutex<WriterSlot>,
    pending: Mutex<HashMap<u64, String>>,
    client: Arc<ClientOut>,
    shutting_down: Arc<AtomicBool>,
    /// The client connection closed: stop reconnecting on its behalf.
    closed: AtomicBool,
}

fn forward(up: &Arc<Upstream>, id: u64, line: String) {
    up.pending.lock().unwrap().insert(id, line.clone());
    up.client.add();
    up.shard.forwarded.fetch_add(1, Ordering::Relaxed);
    loop {
        let mut slot = up.writer.lock().unwrap();
        if slot.conn.is_none() {
            // connect_locked resends the whole pending table (which
            // includes this line) once the shard answers.
            if let Err(why) = connect_locked(up, &mut slot) {
                drop(slot);
                fail_pending(up, &why);
            }
            return;
        }
        match writeln!(slot.conn.as_mut().unwrap(), "{line}") {
            Ok(()) => {
                let _ = slot.conn.as_mut().unwrap().flush();
                return;
            }
            Err(_) => {
                // Stale connection: drop it and reconnect-with-resend.
                slot.conn = None;
            }
        }
    }
}

/// With the writer slot held: connect to the shard's current worker,
/// resend every pending line, and start a reader for the responses.
fn connect_locked(up: &Arc<Upstream>, slot: &mut WriterSlot) -> Result<(), String> {
    'attempt: for _ in 0..60 {
        if up.shutting_down.load(Ordering::SeqCst) {
            return Err("router shutting down".to_string());
        }
        if up.closed.load(Ordering::SeqCst) {
            return Err("client connection closed".to_string());
        }
        let Some(addr) = up
            .shard
            .wait_addr(Duration::from_millis(250), &up.shutting_down)
        else {
            continue;
        };
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                // Likely a stale address from a just-dead worker; the
                // supervisor will republish.
                std::thread::sleep(Duration::from_millis(250));
                continue;
            }
        };
        let mut lines: Vec<(u64, String)> = up
            .pending
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        lines.sort_by_key(|(id, _)| *id);
        for (_, line) in &lines {
            if writeln!(stream, "{line}").is_err() {
                continue 'attempt;
            }
        }
        if stream.flush().is_err() {
            continue;
        }
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        slot.generation += 1;
        slot.conn = Some(stream);
        let up = Arc::clone(up);
        let generation = slot.generation;
        std::thread::spawn(move || reader_loop(&up, read_half, generation));
        return Ok(());
    }
    Err(format!("shard {} unavailable", up.shard.index))
}

/// Pump one upstream connection's responses back to the client; on
/// disconnect, recover (reconnect + resend) if work is still pending.
fn reader_loop(up: &Arc<Upstream>, stream: TcpStream, my_generation: u64) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = line.trim_end();
                if trimmed.is_empty() {
                    continue;
                }
                let id = Json::parse(trimmed)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_u64));
                // Responses not in the pending table (duplicates from a
                // resend that had in fact executed) are dropped.
                if let Some(id) = id {
                    if up.pending.lock().unwrap().remove(&id).is_some() {
                        up.client.send_line(trimmed);
                        up.client.settle();
                    }
                }
            }
        }
    }
    {
        let mut slot = up.writer.lock().unwrap();
        if slot.generation == my_generation {
            slot.conn = None;
        }
    }
    if up.pending.lock().unwrap().is_empty() {
        return;
    }
    if up.shutting_down.load(Ordering::SeqCst) || up.closed.load(Ordering::SeqCst) {
        fail_pending(up, "router shutting down");
        return;
    }
    // Worker crash with work in flight: reconnect and resend, unless a
    // concurrent forward() already did.
    let mut slot = up.writer.lock().unwrap();
    if slot.conn.is_some() {
        return;
    }
    if let Err(why) = connect_locked(up, &mut slot) {
        drop(slot);
        fail_pending(up, &why);
    }
}

/// Answer every pending line with a typed error so the client is never
/// left waiting on a shard that cannot come back.
fn fail_pending(up: &Arc<Upstream>, why: &str) {
    let ids: Vec<u64> = up
        .pending
        .lock()
        .unwrap()
        .drain()
        .map(|(id, _)| id)
        .collect();
    for id in ids {
        let resp = Json::Obj(vec![
            ("id".to_string(), Json::Num(id as f64)),
            ("status".to_string(), Json::Str("error".to_string())),
            (
                "error".to_string(),
                Json::Str(format!("shard {}: {why}", up.shard.index)),
            ),
        ]);
        up.client.send_line(&resp.to_string());
        up.client.settle();
    }
}

struct Router {
    shards: Vec<Arc<Shard>>,
    shutting_down: Arc<AtomicBool>,
    listen_addr: SocketAddr,
    live: Mutex<HashMap<u64, TcpStream>>,
}

impl Router {
    /// Broadcast shutdown to the workers (each snapshots its tenants
    /// and exits), then unblock every client reader and the accept loop.
    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shards {
            let addr = shard.state.lock().unwrap().addr;
            if let Some(addr) = addr {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = writeln!(s, "{{\"op\":\"shutdown\"}}");
                    let _ = s.flush();
                }
            }
        }
        for stream in self.live.lock().unwrap().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(self.listen_addr);
    }

    fn stats_doc(&self) -> Json {
        let total: u64 = self
            .shards
            .iter()
            .map(|s| s.forwarded.load(Ordering::Relaxed))
            .sum();
        Json::Obj(vec![
            ("forwarded".to_string(), Json::Num(total as f64)),
            (
                "shards".to_string(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            let st = s.state.lock().unwrap();
                            Json::Obj(vec![
                                ("shard".to_string(), Json::Num(s.index as f64)),
                                (
                                    "addr".to_string(),
                                    st.addr
                                        .map(|a| Json::Str(a.to_string()))
                                        .unwrap_or(Json::Null),
                                ),
                                ("generation".to_string(), Json::Num(st.generation as f64)),
                                (
                                    "forwarded".to_string(),
                                    Json::Num(s.forwarded.load(Ordering::Relaxed) as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn error_line(id: u64, msg: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Num(id as f64)),
        ("status".to_string(), Json::Str("error".to_string())),
        ("error".to_string(), Json::Str(msg.to_string())),
    ])
    .to_string()
}

/// Ensure the request carries `id`, rewriting or inserting as needed.
fn with_id(mut value: Json, id: u64) -> Json {
    if let Json::Obj(fields) = &mut value {
        for (key, val) in fields.iter_mut() {
            if key == "id" {
                *val = Json::Num(id as f64);
                return value;
            }
        }
        fields.insert(0, ("id".to_string(), Json::Num(id as f64)));
    }
    value
}

fn handle_client(router: &Arc<Router>, conn_id: u64, stream: TcpStream) {
    let out = match stream.try_clone() {
        Ok(w) => Arc::new(ClientOut {
            stream: Mutex::new(w),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
        }),
        Err(_) => return,
    };
    let mut upstreams: Vec<Option<Arc<Upstream>>> =
        (0..router.shards.len()).map(|_| None).collect();
    let mut reader = BufReader::new(stream);
    let mut auto_seq: u64 = 0;
    loop {
        let mut auto_id = || {
            auto_seq += 1;
            AUTO_ID_BASE + conn_id * 1_000_000 + auto_seq
        };
        let line = match read_request_line(&mut reader) {
            Ok(RawLine::Eof) | Err(_) => break,
            Ok(RawLine::Line(l)) => l,
            Ok(RawLine::Oversized { bytes }) => {
                out.send_line(&error_line(
                    auto_id(),
                    &format!("request line exceeds {MAX_REQUEST_BYTES} bytes ({bytes} discarded)"),
                ));
                continue;
            }
            Ok(RawLine::NotUtf8) => {
                out.send_line(&error_line(auto_id(), "request line is not valid UTF-8"));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let value = match Json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                out.send_line(&error_line(auto_id(), &format!("bad request: {e}")));
                continue;
            }
        };
        if !matches!(value, Json::Obj(_)) {
            out.send_line(&error_line(
                auto_id(),
                "bad request: expected a JSON object",
            ));
            continue;
        }
        match value.get("op").and_then(Json::as_str) {
            Some("shutdown") => {
                router.initiate_shutdown();
                break;
            }
            Some("stats") => {
                let id = value
                    .get("id")
                    .and_then(Json::as_u64)
                    .unwrap_or_else(auto_id);
                let resp = Json::Obj(vec![
                    ("id".to_string(), Json::Num(id as f64)),
                    ("status".to_string(), Json::Str("ok".to_string())),
                    (
                        "output".to_string(),
                        Json::Str(router.stats_doc().to_string()),
                    ),
                ]);
                out.send_line(&resp.to_string());
                continue;
            }
            _ => {}
        }
        let tenant = value.get("tenant").and_then(Json::as_str).unwrap_or("");
        let shard_index = shard_for(tenant, router.shards.len());
        let (id, wire_line) = match value.get("id").and_then(Json::as_u64) {
            Some(id) => (id, line.trim_end().to_string()),
            None => {
                let id = auto_id();
                (id, with_id(value, id).to_string())
            }
        };
        let upstream = upstreams[shard_index].get_or_insert_with(|| {
            Arc::new(Upstream {
                shard: Arc::clone(&router.shards[shard_index]),
                writer: Mutex::new(WriterSlot::default()),
                pending: Mutex::new(HashMap::new()),
                client: Arc::clone(&out),
                shutting_down: Arc::clone(&router.shutting_down),
                closed: AtomicBool::new(false),
            })
        });
        forward(upstream, id, wire_line);
    }
    // Let in-flight work answer, then tear the channels down.
    out.wait_drained(Duration::from_secs(120));
    for upstream in upstreams.into_iter().flatten() {
        upstream.closed.store(true, Ordering::SeqCst);
        if let Some(conn) = upstream.writer.lock().unwrap().conn.take() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
    router.live.lock().unwrap().remove(&conn_id);
    let _ = out.stream.lock().unwrap().shutdown(Shutdown::Both);
}

/// Run the router on a pre-bound listener until a client sends
/// `{"op":"shutdown"}`. Prints `cqsep-router: listening on <addr>` to
/// stdout once the shard supervisors are started.
pub fn run_router(listener: TcpListener, opts: &RouterOpts) -> std::io::Result<()> {
    assert!(opts.shards >= 1, "need at least one shard");
    let listen_addr = listener.local_addr()?;
    let serve_bin = match &opts.serve_bin {
        Some(p) => p.clone(),
        None => {
            let me = std::env::current_exe()?;
            me.parent()
                .map(|d| d.join("cqsep-serve"))
                .unwrap_or_else(|| PathBuf::from("cqsep-serve"))
        }
    };
    let spec = WorkerSpec {
        bin: serve_bin,
        args: opts.worker_args.clone(),
        cache_dir: opts.cache_dir.clone(),
    };
    let shutting_down = Arc::new(AtomicBool::new(false));
    let shards: Vec<Arc<Shard>> = (0..opts.shards).map(|i| Arc::new(Shard::new(i))).collect();
    let supervisors: Vec<_> = shards
        .iter()
        .map(|shard| {
            let shard = Arc::clone(shard);
            let spec = spec.clone();
            let shutting_down = Arc::clone(&shutting_down);
            std::thread::spawn(move || supervise(shard, spec, shutting_down))
        })
        .collect();
    let router = Arc::new(Router {
        shards,
        shutting_down: Arc::clone(&shutting_down),
        listen_addr,
        live: Mutex::new(HashMap::new()),
    });
    println!("cqsep-router: listening on {listen_addr}");
    let _ = std::io::stdout().flush();

    let mut clients = Vec::new();
    let mut next_conn: u64 = 0;
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                if shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if shutting_down.load(Ordering::SeqCst) {
            drop(stream);
            break;
        }
        next_conn += 1;
        let conn_id = next_conn;
        if let Ok(clone) = stream.try_clone() {
            router.live.lock().unwrap().insert(conn_id, clone);
        }
        let router = Arc::clone(&router);
        clients.push(std::thread::spawn(move || {
            handle_client(&router, conn_id, stream)
        }));
    }
    for c in clients {
        let _ = c.join();
    }
    for s in supervisors {
        let _ = s.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_placement_is_stable_and_spread() {
        // Stable: the same tenant maps to the same shard every time.
        for tenant in ["", "acme", "t0", "t15", "a-very-long-tenant-name.x"] {
            assert_eq!(shard_for(tenant, 4), shard_for(tenant, 4));
        }
        // Spread: 64 tenants over 4 shards touch every shard.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[shard_for(&format!("tenant-{i}"), 4)] = true;
        }
        assert!(hit.iter().all(|h| *h), "{hit:?}");
        // Monotone-ish: growing the pool only moves tenants to the new
        // shard, never between old shards (the rendezvous property).
        for i in 0..64 {
            let t = format!("tenant-{i}");
            let before = shard_for(&t, 3);
            let after = shard_for(&t, 4);
            assert!(after == before || after == 3, "{t}: {before} -> {after}");
        }
    }

    #[test]
    fn with_id_rewrites_or_inserts() {
        let v = Json::parse(r#"{"id":7,"task":"check"}"#).unwrap();
        let w = with_id(v, 42);
        assert_eq!(w.get("id").and_then(Json::as_u64), Some(42));
        let v = Json::parse(r#"{"task":"check"}"#).unwrap();
        let w = with_id(v, 9);
        assert_eq!(w.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(w.get("task").and_then(Json::as_str), Some("check"));
    }
}
