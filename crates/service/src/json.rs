//! A minimal JSON reader/writer for the NDJSON service protocol.
//!
//! The workspace's `serde` is an offline stand-in exposing only the
//! marker traits, so the wire format is handled by hand: a small
//! recursive-descent parser into [`Json`] and a compact writer via
//! [`std::fmt::Display`]. Only what the protocol needs is supported —
//! objects, arrays, strings (with the standard escapes, including
//! `\uXXXX` and surrogate pairs), `f64` numbers, booleans, and `null`.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integral number, if that is what the value holds.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact (single-line) rendering — exactly what NDJSON needs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "{}", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Quote and escape a string for JSON output. Newlines become `\n`, so
/// multi-line solver reports stay on one NDJSON line.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let text = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let n = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates
                            // become the replacement character.
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let text = r#"{"id": 3, "task": "check", "classes": ["cq", "ghw1"], "deep": {"x": [1, -2.5, true, null]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("task").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("classes").and_then(Json::as_array).unwrap().len(), 2);
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{0001}";
        let v = Json::Str(s.to_string());
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap().as_str(),
            Some("é😀")
        );
        // Lone surrogate degrades to the replacement character.
        assert_eq!(
            Json::parse(r#""\ud800x""#).unwrap().as_str(),
            Some("\u{FFFD}x")
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Json::parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
