//! The `cqsep-serve` protocol: newline-delimited JSON requests in,
//! newline-delimited JSON responses out, over any `BufRead`/`Write`
//! pair (stdin/stdout, a Unix socket connection, or an in-memory
//! buffer in the test suite).
//!
//! # Requests (one JSON object per line)
//!
//! ```text
//! {"id":1,"task":"check","train":"rel E/2\n…","classes":["cq","ghw1"]}
//! {"id":2,"task":"train","train_path":"t.db","class":"cqm2"}
//! {"id":3,"task":"classify","train":"…","eval":"…","class":"ghw1","timeout_secs":1.0}
//! {"id":6,"task":"classify-batch","train":"…","eval":"…","class":"cqm2"}
//! {"id":4,"task":"relabel","train":"…","k":1,"priority":5}
//! {"id":5,"task":"evaluate","train":"…","test":"…","methods":["cqm2","ghw1"],"fit_timeout_secs":2.0}
//! {"id":7,"task":"append","name":"t","base":"rel E/2\n…","delta":"add-fact E(c,d)\nadd-entity d -\n"}
//! {"id":8,"task":"append","name":"t","delta":"add-fact E(d,e)\nadd-entity e -\n"}
//! {"id":9,"task":"recheck","name":"t","classes":["cq","cqm2"]}
//! {"id":10,"task":"relabel","name":"t","k":1}
//! {"op":"shutdown"}
//! ```
//!
//! Databases come inline (`train`, `eval`, `test`: spec-format text) or
//! by path (`train_path`, `eval_path`, `test_path`: read server-side).
//! `append`/`recheck` address *resident* databases by `name`: an
//! `append` with `base` (or `base_path`) text parks that database under
//! the name, later `append`s mutate it in place by the `delta` (or
//! `delta_path`) script, and `recheck`/`relabel`-by-`name` re-query it
//! warm — the engine's lineage registry lets cached verdicts survive
//! the edits. Residents live as long as the worker pool (the Unix
//! socket loop keeps one registry across connections).
//! `id` defaults to a per-connection counter, `timeout_secs` to the
//! server's default budget, `priority` to 0 (higher runs first). An
//! `evaluate` request may bound each individual fit with
//! `fit_timeout_secs` (a per-method child budget inside the job's
//! overall timeout); `methods` defaults to the
//! [`DEFAULT_EVALUATE_METHODS`](crate::task::DEFAULT_EVALUATE_METHODS)
//! sweep when absent.
//!
//! # Responses (one JSON object per line, in completion order)
//!
//! ```text
//! {"id":1,"status":"ok","elapsed_s":0.004,"output":"…"}
//! {"id":2,"status":"ok","elapsed_s":0.1,"output":"…","model":"…"}
//! {"id":3,"status":"interrupted","reason":"deadline exceeded","elapsed_s":1.0,"stats":"…"}
//! {"id":4,"status":"error","error":"…"}
//! ```
//!
//! With more than one worker, responses interleave across jobs —
//! correlate by `id`. End of input drains gracefully (queued jobs still
//! run); `{"op":"shutdown"}` is the cancelling path: queued jobs are
//! reported as `interrupted`/`cancelled` without running, in-flight
//! solvers are tripped via their [`Ctx`](engine::Ctx) handles and
//! unwind at their next cancellation check.

use crate::json::Json;
use crate::pool::{Job, Pool, Response};
use crate::task::{ClassSpec, Outcome, Residents, Task};
use cqsep::generalize::FitMethod;
use engine::Engine;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Worker threads sharing the engine.
    pub workers: usize,
    /// Bounded queue capacity (backpressure past this).
    pub queue_cap: usize,
    /// Budget applied to requests that carry no `timeout_secs`.
    pub default_timeout: Option<Duration>,
}

impl Default for ServeOpts {
    fn default() -> ServeOpts {
        ServeOpts {
            workers: 2,
            queue_cap: 64,
            default_timeout: None,
        }
    }
}

/// What one `serve` call processed, for callers that loop (the Unix
/// socket accept loop) or assert (the test suite).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written, by status.
    pub ok: usize,
    pub interrupted: usize,
    pub failed: usize,
    /// A `{"op":"shutdown"}` line was received: the whole server (not
    /// just this connection) should stop.
    pub shutdown_requested: bool,
}

impl ServeSummary {
    pub fn total(&self) -> usize {
        self.ok + self.interrupted + self.failed
    }
}

enum Line {
    Job(Job),
    Shutdown,
}

/// Serve one connection: read requests until EOF or shutdown, write one
/// response per job in completion order. See the module docs for the
/// wire format.
pub fn serve<R, W>(
    engine: Arc<Engine>,
    reader: R,
    writer: W,
    opts: &ServeOpts,
) -> std::io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    serve_with_residents(engine, Residents::new(), reader, writer, opts)
}

/// [`serve`] with a caller-owned resident registry, so databases parked
/// by `append` requests survive this connection.
pub fn serve_with_residents<R, W>(
    engine: Arc<Engine>,
    residents: Residents,
    reader: R,
    writer: W,
    opts: &ServeOpts,
) -> std::io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    let pool = Pool::with_residents(engine, residents, opts.workers, opts.queue_cap);
    let (tx, rx) = mpsc::channel::<Response>();
    std::thread::scope(|s| {
        let writer_handle = s.spawn(move || write_responses(writer, rx));
        let mut next_id: u64 = 0;
        let mut shutdown = false;
        let mut read_error = None;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            next_id += 1;
            match parse_request(&line, next_id, opts) {
                Ok(Line::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Ok(Line::Job(job)) => {
                    if pool.submit(job, tx.clone()).is_err() {
                        break;
                    }
                }
                Err((id, msg)) => {
                    let _ = tx.send(Response {
                        id,
                        outcome: Outcome::Failed(msg),
                        elapsed: Duration::ZERO,
                    });
                }
            }
        }
        // Drop our sender so the writer loop terminates once every
        // worker-held clone is gone too.
        drop(tx);
        if shutdown {
            pool.shutdown_cancel();
        } else {
            pool.shutdown_drain();
        }
        let mut summary = writer_handle.join().expect("writer thread panicked")?;
        summary.shutdown_requested = shutdown;
        match read_error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    })
}

/// Accept loop over a Unix domain socket: one connection at a time,
/// all connections sharing the engine (memo tables persist across
/// connections). A `{"op":"shutdown"}` on any connection stops the
/// loop; the socket file is removed on the way out.
#[cfg(unix)]
pub fn serve_unix(
    engine: Arc<Engine>,
    path: &std::path::Path,
    opts: &ServeOpts,
) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    // One registry for the whole accept loop: residents appended on one
    // connection answer rechecks on the next.
    let residents = Residents::new();
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let summary =
            serve_with_residents(Arc::clone(&engine), residents.clone(), reader, stream, opts)?;
        if summary.shutdown_requested {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn write_responses<W: Write>(
    mut writer: W,
    rx: mpsc::Receiver<Response>,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for resp in rx {
        match &resp.outcome {
            Outcome::Success(_) => summary.ok += 1,
            Outcome::Interrupted(_) => summary.interrupted += 1,
            Outcome::Failed(_) => summary.failed += 1,
        }
        writeln!(writer, "{}", render_response(&resp))?;
        writer.flush()?;
    }
    Ok(summary)
}

fn render_response(resp: &Response) -> Json {
    let mut fields = vec![("id".to_string(), Json::Num(resp.id as f64))];
    let elapsed = (
        "elapsed_s".to_string(),
        Json::Num((resp.elapsed.as_secs_f64() * 1e6).round() / 1e6),
    );
    match &resp.outcome {
        Outcome::Success(out) => {
            fields.push(("status".to_string(), Json::Str("ok".to_string())));
            fields.push(elapsed);
            fields.push(("output".to_string(), Json::Str(out.output.clone())));
            if let Some(model) = &out.model {
                fields.push(("model".to_string(), Json::Str(model.clone())));
            }
        }
        Outcome::Interrupted(i) => {
            fields.push(("status".to_string(), Json::Str("interrupted".to_string())));
            fields.push(("reason".to_string(), Json::Str(i.reason.to_string())));
            fields.push(elapsed);
            fields.push(("stats".to_string(), Json::Str(i.partial_stats.report())));
        }
        Outcome::Failed(msg) => {
            fields.push(("status".to_string(), Json::Str("error".to_string())));
            fields.push(("error".to_string(), Json::Str(msg.clone())));
        }
    }
    Json::Obj(fields)
}

fn parse_request(line: &str, auto_id: u64, opts: &ServeOpts) -> Result<Line, (u64, String)> {
    let value = Json::parse(line).map_err(|e| (auto_id, format!("bad request: {e}")))?;
    if let Some(op) = value.get("op").and_then(Json::as_str) {
        return match op {
            "shutdown" => Ok(Line::Shutdown),
            other => Err((auto_id, format!("unknown op {other:?}"))),
        };
    }
    let id = value.get("id").and_then(Json::as_u64).unwrap_or(auto_id);
    let fail = |msg: String| (id, msg);
    let verb = value
        .get("task")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("request needs a \"task\" verb".to_string()))?;

    let text_field = |inline: &str, path: &str| -> Result<String, (u64, String)> {
        if let Some(text) = value.get(inline).and_then(Json::as_str) {
            return Ok(text.to_string());
        }
        if let Some(p) = value.get(path).and_then(Json::as_str) {
            return std::fs::read_to_string(p).map_err(|e| fail(format!("cannot read {p}: {e}")));
        }
        Err(fail(format!(
            "{verb} needs {inline:?} (inline text) or {path:?} (server-side file)"
        )))
    };
    let class_field = || -> Result<ClassSpec, (u64, String)> {
        match value.get("class").and_then(Json::as_str) {
            Some(s) => ClassSpec::parse(s).map_err(fail),
            None => Ok(ClassSpec::Cqm(2)),
        }
    };

    let classes_field = || -> Result<Vec<ClassSpec>, (u64, String)> {
        let mut classes = Vec::new();
        if let Some(list) = value.get("classes").and_then(Json::as_array) {
            for item in list {
                let s = item
                    .as_str()
                    .ok_or_else(|| fail("\"classes\" must hold strings".to_string()))?;
                classes.push(ClassSpec::parse(s).map_err(fail)?);
            }
        }
        Ok(classes)
    };
    let name_field = || -> Result<String, (u64, String)> {
        value
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| fail(format!("{verb} needs a \"name\" (resident database)")))
    };

    let task = match verb {
        "check" => Task::Check {
            train: text_field("train", "train_path")?,
            classes: classes_field()?,
        },
        "train" => Task::Train {
            train: text_field("train", "train_path")?,
            class: class_field()?,
        },
        "classify" => Task::Classify {
            train: text_field("train", "train_path")?,
            eval: text_field("eval", "eval_path")?,
            class: class_field()?,
        },
        "classify-batch" => Task::ClassifyBatch {
            train: text_field("train", "train_path")?,
            eval: text_field("eval", "eval_path")?,
            class: class_field()?,
        },
        "relabel" => {
            let name = value.get("name").and_then(Json::as_str).map(str::to_string);
            let train = match &name {
                // Resident-addressed: no database text travels.
                Some(_) => String::new(),
                None => text_field("train", "train_path")?,
            };
            Task::Relabel {
                train,
                k: match value.get("k") {
                    None => 1,
                    Some(v) => v
                        .as_u64()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| fail("\"k\" must be an integer ≥ 1".to_string()))?
                        as usize,
                },
                name,
            }
        }
        "append" => {
            let base = if value.get("base").is_some() || value.get("base_path").is_some() {
                Some(text_field("base", "base_path")?)
            } else {
                None
            };
            Task::Append {
                name: name_field()?,
                base,
                delta: text_field("delta", "delta_path")?,
            }
        }
        "recheck" => Task::Recheck {
            name: name_field()?,
            classes: classes_field()?,
        },
        "evaluate" => {
            let mut methods = Vec::new();
            if let Some(list) = value.get("methods").and_then(Json::as_array) {
                for item in list {
                    let s = item
                        .as_str()
                        .ok_or_else(|| fail("\"methods\" must hold strings".to_string()))?;
                    methods.push(FitMethod::parse(s).map_err(fail)?);
                }
            }
            let fit_timeout = match value.get("fit_timeout_secs") {
                None => None,
                Some(v) => {
                    let secs = v
                        .as_f64()
                        .filter(|s| *s >= 0.0 && s.is_finite())
                        .ok_or_else(|| {
                            fail("\"fit_timeout_secs\" must be a non-negative number".to_string())
                        })?;
                    Some(Duration::from_secs_f64(secs))
                }
            };
            Task::Evaluate {
                train: text_field("train", "train_path")?,
                test: text_field("test", "test_path")?,
                methods,
                fit_timeout,
            }
        }
        other => return Err(fail(format!("unknown task {other:?}"))),
    };

    let timeout = match value.get("timeout_secs") {
        None => opts.default_timeout,
        Some(v) => {
            let secs = v
                .as_f64()
                .filter(|s| *s >= 0.0 && s.is_finite())
                .ok_or_else(|| {
                    fail("\"timeout_secs\" must be a non-negative number".to_string())
                })?;
            Some(Duration::from_secs_f64(secs))
        }
    };
    let priority = match value.get("priority") {
        None => 0,
        Some(v) => v
            .as_i64()
            .ok_or_else(|| fail("\"priority\" must be an integer".to_string()))?,
    };

    Ok(Line::Job(Job {
        id,
        task,
        timeout,
        priority,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "rel E/2\nfact E(a,b)\nfact E(b,c)\nentity a +\nentity b +\nentity c -\n";
    const EVAL: &str = "rel E/2\nfact E(u,v)\nentity u\nentity v\n";

    fn run_lines(lines: &[String], opts: &ServeOpts) -> (Vec<Json>, ServeSummary) {
        let input = lines.join("\n");
        let mut output = Vec::new();
        let summary = serve(Arc::new(Engine::new()), input.as_bytes(), &mut output, opts).unwrap();
        let responses = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        (responses, summary)
    }

    fn req(fields: &[(&str, Json)]) -> String {
        Json::Obj(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
        .to_string()
    }

    fn status_of(responses: &[Json], id: u64) -> String {
        responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no response with id {id}"))
            .to_string()
    }

    #[test]
    fn batch_of_mixed_tasks_round_trips() {
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                (
                    "classes",
                    Json::Arr(vec![
                        Json::Str("cq".to_string()),
                        Json::Str("ghw1".to_string()),
                    ]),
                ),
            ]),
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("classify".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("eval", Json::Str(EVAL.to_string())),
                ("class", Json::Str("ghw1".to_string())),
            ]),
            req(&[
                ("id", Json::Num(3.0)),
                ("task", Json::Str("train".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("class", Json::Str("cqm1".to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 3, "{responses:?}");
        assert_eq!(summary.total(), 3);
        assert!(!summary.shutdown_requested);
        assert_eq!(status_of(&responses, 1), "ok");
        assert_eq!(status_of(&responses, 2), "ok");
        assert_eq!(status_of(&responses, 3), "ok");
        let train_resp = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(3))
            .unwrap();
        assert!(
            train_resp.get("model").and_then(Json::as_str).is_some(),
            "train response carries the model text"
        );
    }

    #[test]
    fn classify_batch_request_reports_labels_and_stats() {
        let lines = vec![req(&[
            ("id", Json::Num(4.0)),
            ("task", Json::Str("classify-batch".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("eval", Json::Str(EVAL.to_string())),
            ("class", Json::Str("cqm1".to_string())),
        ])];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 1, "{responses:?}");
        assert_eq!(status_of(&responses, 4), "ok");
        let out = responses[0]
            .get("output")
            .and_then(Json::as_str)
            .expect("classify-batch carries an output");
        assert!(out.contains("u +"), "{out}");
        assert!(out.contains("v -"), "{out}");
        assert!(out.contains("# compiled: "), "{out}");
        assert!(out.contains("# batch: "), "{out}");
    }

    #[test]
    fn zero_timeout_reports_interrupted() {
        let lines = vec![req(&[
            ("id", Json::Num(7.0)),
            ("task", Json::Str("check".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("timeout_secs", Json::Num(0.0)),
        ])];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.interrupted, 1);
        assert_eq!(status_of(&responses, 7), "interrupted");
        let resp = &responses[0];
        assert_eq!(
            resp.get("reason").and_then(Json::as_str),
            Some("deadline exceeded")
        );
        assert!(resp.get("stats").and_then(Json::as_str).is_some());
    }

    #[test]
    fn evaluate_request_round_trips_with_methods_and_fit_timeout() {
        let test_db = "rel E/2\nfact E(t,u)\nfact E(u,v)\nentity t +\nentity u +\nentity v -\n";
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("evaluate".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("test", Json::Str(test_db.to_string())),
                (
                    "methods",
                    Json::Arr(vec![
                        Json::Str("cqm1".to_string()),
                        Json::Str("minerr1".to_string()),
                    ]),
                ),
                ("fit_timeout_secs", Json::Num(30.0)),
            ]),
            // Malformed method spelling: error response, serving continues.
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("evaluate".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("test", Json::Str(test_db.to_string())),
                ("methods", Json::Arr(vec![Json::Str("cqm0".to_string())])),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 1, "{responses:?}");
        assert_eq!(summary.failed, 1);
        assert_eq!(status_of(&responses, 1), "ok");
        let out = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(1))
            .and_then(|r| r.get("output"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(out.contains("CQ[1]"), "{out}");
        assert!(out.contains("MinErr[1]"), "{out}");
        let err = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(2))
            .and_then(|r| r.get("error"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(err.contains("bad method"), "{err}");
    }

    #[test]
    fn append_recheck_relabel_round_trip_on_one_connection() {
        // One worker so the jobs run in submission order: the recheck
        // must observe both appends.
        let opts = ServeOpts {
            workers: 1,
            ..ServeOpts::default()
        };
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("append".to_string())),
                ("name", Json::Str("t".to_string())),
                ("base", Json::Str(TRAIN.to_string())),
                (
                    "delta",
                    Json::Str("add-fact E(c,d)\nadd-entity d -\n".to_string()),
                ),
            ]),
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("append".to_string())),
                ("name", Json::Str("t".to_string())),
                (
                    "delta",
                    Json::Str("add-fact E(d,e)\nadd-entity e -\n".to_string()),
                ),
            ]),
            req(&[
                ("id", Json::Num(3.0)),
                ("task", Json::Str("recheck".to_string())),
                ("name", Json::Str("t".to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
            ]),
            req(&[
                ("id", Json::Num(4.0)),
                ("task", Json::Str("relabel".to_string())),
                ("name", Json::Str("t".to_string())),
                ("k", Json::Num(1.0)),
            ]),
            // Unknown resident: a domain failure, serving continues.
            req(&[
                ("id", Json::Num(5.0)),
                ("task", Json::Str("recheck".to_string())),
                ("name", Json::Str("ghost".to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &opts);
        assert_eq!(summary.ok, 4, "{responses:?}");
        assert_eq!(summary.failed, 1);
        let output_of = |id: u64| {
            responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
                .and_then(|r| r.get("output"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        assert!(
            output_of(1).contains("applied insert-only"),
            "{responses:?}"
        );
        assert!(output_of(2).contains("5 entities"), "{responses:?}");
        let recheck = output_of(3);
        assert!(recheck.contains("5 entities"), "{recheck}");
        assert!(recheck.contains("CQ-separable"), "{recheck}");
        let ghost = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(5))
            .and_then(|r| r.get("error"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(ghost.contains("no resident database"), "{ghost}");
    }

    #[test]
    fn malformed_lines_get_error_responses_and_serving_continues() {
        let lines = vec![
            "{not json".to_string(),
            req(&[
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("ghw0".to_string())])),
            ]),
            req(&[
                ("id", Json::Num(5.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.failed, 2);
        assert_eq!(summary.ok, 1);
        assert_eq!(status_of(&responses, 5), "ok");
        // The unified ClassSpec message crosses the protocol verbatim.
        let class_err = responses
            .iter()
            .filter_map(|r| r.get("error").and_then(Json::as_str))
            .find(|e| e.contains("bad class"));
        assert_eq!(
            class_err,
            Some("bad class \"ghw0\" (expected cq, ghw<k≥1>, cqm<m≥1>)")
        );
    }

    #[test]
    fn shutdown_op_stops_reading_and_cancels() {
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
            ]),
            "{\"op\":\"shutdown\"}".to_string(),
            // Past the shutdown line: must never be parsed or served.
            req(&[
                ("id", Json::Num(99.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert!(summary.shutdown_requested);
        assert!(
            responses
                .iter()
                .all(|r| r.get("id").and_then(Json::as_u64) != Some(99)),
            "lines after shutdown must be ignored: {responses:?}"
        );
        // Job 1 either completed or was cancelled; it got exactly one
        // response either way.
        assert_eq!(summary.total(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_a_connection() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("cqsep_sock_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let spath = path.clone();
        let server = std::thread::spawn(move || {
            serve_unix(Arc::new(Engine::new()), &spath, &ServeOpts::default())
        });
        // Wait for the socket to appear.
        let mut stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let request = req(&[
            ("id", Json::Num(1.0)),
            ("task", Json::Str("check".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
        ]);
        writeln!(stream, "{request}").unwrap();
        let mut reply = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();
        let parsed = Json::parse(reply.trim()).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        writeln!(stream, "{{\"op\":\"shutdown\"}}").unwrap();
        drop(stream);
        server.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file is removed on shutdown");
    }
}
