//! The `cqsep-serve` protocol: newline-delimited JSON requests in,
//! newline-delimited JSON responses out, over any `BufRead`/`Write`
//! pair (stdin/stdout, a Unix socket connection, a TCP connection, or
//! an in-memory buffer in the test suite).
//!
//! # Requests (one JSON object per line)
//!
//! ```text
//! {"id":1,"task":"check","train":"rel E/2\n…","classes":["cq","ghw1"]}
//! {"id":2,"task":"train","train_path":"t.db","class":"cqm2"}
//! {"id":3,"task":"classify","train":"…","eval":"…","class":"ghw1","timeout_secs":1.0}
//! {"id":6,"task":"classify-batch","train":"…","eval":"…","class":"cqm2"}
//! {"id":4,"task":"relabel","train":"…","k":1,"priority":5}
//! {"id":5,"task":"evaluate","train":"…","test":"…","methods":["cqm2","ghw1"],"fit_timeout_secs":2.0}
//! {"id":7,"task":"append","name":"t","base":"rel E/2\n…","delta":"add-fact E(c,d)\nadd-entity d -\n"}
//! {"id":8,"task":"append","name":"t","delta":"add-fact E(d,e)\nadd-entity e -\n","tenant":"acme"}
//! {"id":9,"task":"recheck","name":"t","classes":["cq","cqm2"],"tenant":"acme"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Databases come inline (`train`, `eval`, `test`: spec-format text) or
//! by path (`train_path`, `eval_path`, `test_path`: read server-side).
//! `append`/`recheck` address *resident* databases by `name` (see the
//! module docs of [`crate::task`]). An optional `tenant` field routes
//! the request to that tenant's private engine and resident registry
//! (see [`crate::tenant`]); requests without one share the default
//! tenant. `id` defaults to a per-connection counter, `timeout_secs`
//! to the server's default budget, `priority` to 0 (higher runs first,
//! with aging — see [`crate::queue`]). An `evaluate` request may bound
//! each individual fit with `fit_timeout_secs`; `methods` defaults to
//! the [`DEFAULT_EVALUATE_METHODS`](crate::task::DEFAULT_EVALUATE_METHODS)
//! sweep when absent.
//!
//! Request lines are size-capped at [`MAX_REQUEST_BYTES`]: an oversized
//! or non-UTF-8 line yields a typed `error` response (the remainder of
//! the line is discarded to resynchronize) and serving continues.
//!
//! `{"op":"stats"}` answers immediately — without queueing — with a
//! snapshot of the server's counters as a JSON document in the
//! response's `output` field: connections (total/live), pool totals
//! (executed/ok/interrupted/failed/queue depth), tenant-registry state
//! (resident/evictions/warm restores/restored entries), and the
//! per-tenant fair-share ledger.
//!
//! # Responses (one JSON object per line, in completion order)
//!
//! ```text
//! {"id":1,"status":"ok","elapsed_s":0.004,"output":"…"}
//! {"id":2,"status":"ok","elapsed_s":0.1,"output":"…","model":"…"}
//! {"id":3,"status":"interrupted","reason":"deadline exceeded","elapsed_s":1.0,"stats":"…"}
//! {"id":4,"status":"error","error":"…"}
//! ```
//!
//! With more than one worker, responses interleave across jobs —
//! correlate by `id`. End of input drains gracefully (queued jobs still
//! run); `{"op":"shutdown"}` is the cancelling path: queued jobs are
//! reported as `interrupted`/`cancelled` without running, in-flight
//! solvers are tripped via their [`Ctx`](engine::Ctx) handles and
//! unwind at their next cancellation check. Over TCP ([`serve_tcp`])
//! a shutdown additionally stops the accept loop, drains every live
//! connection, and snapshots all resident tenants to the cache
//! directory before returning.

use crate::json::Json;
use crate::pool::{Job, Pool, Response};
use crate::task::{ClassSpec, Outcome, Residents, Task};
use crate::tenant::{validate_tenant_id, TenantRegistry};
use cqsep::generalize::FitMethod;
use engine::Engine;
use std::io::{BufRead, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Hard cap on one request line (bytes, newline included). Inline
/// databases are text, so the cap is generous; anything past it is a
/// protocol error, not a memory commitment.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024 * 1024;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Worker threads sharing the tenant registry.
    pub workers: usize,
    /// Bounded queue capacity (backpressure past this).
    pub queue_cap: usize,
    /// Budget applied to requests that carry no `timeout_secs`.
    pub default_timeout: Option<Duration>,
}

impl Default for ServeOpts {
    fn default() -> ServeOpts {
        ServeOpts {
            workers: 2,
            queue_cap: 64,
            default_timeout: None,
        }
    }
}

/// What one connection processed, for callers that loop (the accept
/// loops) or assert (the test suite).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written, by status.
    pub ok: usize,
    pub interrupted: usize,
    pub failed: usize,
    /// A `{"op":"shutdown"}` line was received: the whole server (not
    /// just this connection) should stop.
    pub shutdown_requested: bool,
}

impl ServeSummary {
    pub fn total(&self) -> usize {
        self.ok + self.interrupted + self.failed
    }
}

/// What one [`serve_tcp`] run processed across all connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpSummary {
    /// Connections accepted over the listener's lifetime.
    pub connections: u64,
    /// Responses written across all connections, by status.
    pub ok: usize,
    pub interrupted: usize,
    pub failed: usize,
    pub shutdown_requested: bool,
}

/// Live connection gauges shared by every connection of one server.
#[derive(Debug, Default)]
struct ServerStats {
    connections_total: AtomicU64,
    connections_live: AtomicU64,
}

enum Line {
    Job(Job),
    Shutdown,
    Stats { id: u64 },
}

/// One bounded read from the wire (see [`MAX_REQUEST_BYTES`]).
pub(crate) enum RawLine {
    Eof,
    Line(String),
    /// The line exceeded the cap; `bytes` were discarded up to the next
    /// newline (or EOF) to resynchronize the stream.
    Oversized {
        bytes: usize,
    },
    NotUtf8,
}

/// Read one `\n`-terminated request line without ever buffering more
/// than [`MAX_REQUEST_BYTES`] + one block of it.
pub(crate) fn read_request_line<R: BufRead>(reader: &mut R) -> std::io::Result<RawLine> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take((MAX_REQUEST_BYTES + 1) as u64)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(RawLine::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > MAX_REQUEST_BYTES {
        let mut discarded = buf.len();
        loop {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    reader.consume(i + 1);
                    discarded += i + 1;
                    break;
                }
                None => {
                    let len = chunk.len();
                    reader.consume(len);
                    discarded += len;
                }
            }
        }
        return Ok(RawLine::Oversized { bytes: discarded });
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(RawLine::Line(s)),
        Err(_) => Ok(RawLine::NotUtf8),
    }
}

/// Serve one connection on a fresh single-connection pool: read
/// requests until EOF or shutdown, write one response per job in
/// completion order. See the module docs for the wire format.
pub fn serve<R, W>(
    engine: Arc<Engine>,
    reader: R,
    writer: W,
    opts: &ServeOpts,
) -> std::io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    serve_with_residents(engine, Residents::new(), reader, writer, opts)
}

/// [`serve`] with a caller-owned resident registry, so databases parked
/// by `append` requests survive this connection.
pub fn serve_with_residents<R, W>(
    engine: Arc<Engine>,
    residents: Residents,
    reader: R,
    writer: W,
    opts: &ServeOpts,
) -> std::io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    let pool = Pool::with_residents(engine, residents, opts.workers, opts.queue_cap);
    let summary = serve_conn(&pool, reader, writer, opts, None);
    // Graceful EOF still has live workers; a shutdown op already ran
    // the cancelling close inside `serve_conn`.
    pool.close();
    pool.join();
    summary
}

/// Serve one connection against a shared pool. On a shutdown op this
/// runs the pool's cancelling close (so this connection's queued jobs
/// resolve and every other connection's submit fails fast) but leaves
/// joining the workers to the caller.
fn serve_conn<R, W>(
    pool: &Pool,
    mut reader: R,
    writer: W,
    opts: &ServeOpts,
    server: Option<&ServerStats>,
) -> std::io::Result<ServeSummary>
where
    R: BufRead,
    W: Write + Send,
{
    let (tx, rx) = mpsc::channel::<Response>();
    std::thread::scope(|s| {
        let writer_handle = s.spawn(move || write_responses(writer, rx));
        let mut next_id: u64 = 0;
        let mut shutdown = false;
        let mut read_error = None;
        loop {
            let line = match read_request_line(&mut reader) {
                Ok(RawLine::Eof) => break,
                Ok(RawLine::Line(l)) => l,
                Ok(RawLine::Oversized { bytes }) => {
                    next_id += 1;
                    let _ = tx.send(Response {
                        id: next_id,
                        outcome: Outcome::Failed(format!(
                            "request line exceeds {MAX_REQUEST_BYTES} bytes ({bytes} discarded)"
                        )),
                        elapsed: Duration::ZERO,
                    });
                    continue;
                }
                Ok(RawLine::NotUtf8) => {
                    next_id += 1;
                    let _ = tx.send(Response {
                        id: next_id,
                        outcome: Outcome::Failed("request line is not valid UTF-8".to_string()),
                        elapsed: Duration::ZERO,
                    });
                    continue;
                }
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            next_id += 1;
            match parse_request(&line, next_id, opts) {
                Ok(Line::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Ok(Line::Stats { id }) => {
                    let _ = tx.send(Response {
                        id,
                        outcome: Outcome::Success(crate::task::TaskOutput {
                            output: render_stats(pool, server).to_string(),
                            model: None,
                        }),
                        elapsed: Duration::ZERO,
                    });
                }
                Ok(Line::Job(job)) => {
                    if pool.submit(job, tx.clone()).is_err() {
                        break;
                    }
                }
                Err((id, msg)) => {
                    let _ = tx.send(Response {
                        id,
                        outcome: Outcome::Failed(msg),
                        elapsed: Duration::ZERO,
                    });
                }
            }
        }
        if shutdown {
            // Resolve queued jobs (ours and everyone else's) as
            // cancelled so every connection's writer can finish.
            pool.cancel_all();
        }
        // Drop our sender so the writer loop terminates once every
        // worker-held clone is gone too.
        drop(tx);
        let mut summary = writer_handle.join().expect("writer thread panicked")?;
        summary.shutdown_requested = shutdown;
        match read_error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    })
}

/// Accept loop over a Unix domain socket: one connection at a time,
/// all connections sharing the engine (memo tables persist across
/// connections). A `{"op":"shutdown"}` on any connection stops the
/// loop; the socket file is removed on the way out.
#[cfg(unix)]
pub fn serve_unix(
    engine: Arc<Engine>,
    path: &std::path::Path,
    opts: &ServeOpts,
) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    // One registry for the whole accept loop: residents appended on one
    // connection answer rechecks on the next.
    let residents = Residents::new();
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        let summary =
            serve_with_residents(Arc::clone(&engine), residents.clone(), reader, stream, opts)?;
        if summary.shutdown_requested {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// TCP accept loop: concurrent connections, each served on its own
/// thread, all sharing one worker pool and one tenant registry (one
/// queue — scheduling is global, memo tables are per tenant). A
/// `{"op":"shutdown"}` on any connection stops the accept loop, shuts
/// down every live connection's stream (their readers see EOF and
/// drain), joins everything, and snapshots all resident tenants to the
/// registry's cache directory. Connection-level stats go to stderr on
/// close and aggregate into the returned [`TcpSummary`].
pub fn serve_tcp(
    tenants: Arc<TenantRegistry>,
    listener: TcpListener,
    opts: &ServeOpts,
) -> std::io::Result<TcpSummary> {
    let addr = listener.local_addr()?;
    let pool = Arc::new(Pool::with_tenants(
        Arc::clone(&tenants),
        opts.workers,
        opts.queue_cap,
    ));
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let live: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let totals = Arc::new(Mutex::new(TcpSummary::default()));
    let mut conn_threads = Vec::new();

    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            // The wake-up (or a raced client): refuse and stop.
            drop(stream);
            break;
        }
        let conn_id = stats.connections_total.fetch_add(1, Ordering::SeqCst);
        stats.connections_live.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            live.lock().unwrap().insert(conn_id, clone);
        }
        let pool = Arc::clone(&pool);
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let live = Arc::clone(&live);
        let totals = Arc::clone(&totals);
        let opts = opts.clone();
        conn_threads.push(std::thread::spawn(move || {
            let result = stream
                .try_clone()
                .map(std::io::BufReader::new)
                .and_then(|reader| serve_conn(&pool, reader, &stream, &opts, Some(&stats)));
            live.lock().unwrap().remove(&conn_id);
            stats.connections_live.fetch_sub(1, Ordering::SeqCst);
            let summary = match result {
                Ok(summary) => summary,
                Err(e) => {
                    eprintln!("cqsep-serve: connection {conn_id} ({peer}): {e}");
                    return;
                }
            };
            eprintln!(
                "cqsep-serve: connection {conn_id} ({peer}) closed: {} ok, {} interrupted, {} error{}",
                summary.ok,
                summary.interrupted,
                summary.failed,
                if summary.shutdown_requested {
                    "; shutdown requested"
                } else {
                    ""
                }
            );
            {
                let mut t = totals.lock().unwrap();
                t.ok += summary.ok;
                t.interrupted += summary.interrupted;
                t.failed += summary.failed;
                t.shutdown_requested |= summary.shutdown_requested;
            }
            if summary.shutdown_requested && !shutdown.swap(true, Ordering::SeqCst) {
                // Unblock every other connection's reader, then the
                // accept loop. The pool's cancelling close already ran
                // inside serve_conn.
                for (_, s) in live.lock().unwrap().iter() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                let _ = TcpStream::connect(addr);
            }
        }));
    }

    for t in conn_threads {
        let _ = t.join();
    }
    pool.close();
    pool.join();
    match tenants.snapshot_all() {
        Ok(saved) if saved > 0 => {
            eprintln!("cqsep-serve: snapshotted {saved} tenant(s) on shutdown")
        }
        Ok(_) => {}
        Err(e) => eprintln!("cqsep-serve: shutdown snapshot failed: {e}"),
    }
    let mut summary = *totals.lock().unwrap();
    summary.connections = stats.connections_total.load(Ordering::SeqCst);
    Ok(summary)
}

fn write_responses<W: Write>(
    mut writer: W,
    rx: mpsc::Receiver<Response>,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for resp in rx {
        match &resp.outcome {
            Outcome::Success(_) => summary.ok += 1,
            Outcome::Interrupted(_) => summary.interrupted += 1,
            Outcome::Failed(_) => summary.failed += 1,
        }
        writeln!(writer, "{}", render_response(&resp))?;
        writer.flush()?;
    }
    Ok(summary)
}

fn render_response(resp: &Response) -> Json {
    let mut fields = vec![("id".to_string(), Json::Num(resp.id as f64))];
    let elapsed = (
        "elapsed_s".to_string(),
        Json::Num((resp.elapsed.as_secs_f64() * 1e6).round() / 1e6),
    );
    match &resp.outcome {
        Outcome::Success(out) => {
            fields.push(("status".to_string(), Json::Str("ok".to_string())));
            fields.push(elapsed);
            fields.push(("output".to_string(), Json::Str(out.output.clone())));
            if let Some(model) = &out.model {
                fields.push(("model".to_string(), Json::Str(model.clone())));
            }
        }
        Outcome::Interrupted(i) => {
            fields.push(("status".to_string(), Json::Str("interrupted".to_string())));
            fields.push(("reason".to_string(), Json::Str(i.reason.to_string())));
            fields.push(elapsed);
            fields.push(("stats".to_string(), Json::Str(i.partial_stats.report())));
        }
        Outcome::Failed(msg) => {
            fields.push(("status".to_string(), Json::Str("error".to_string())));
            fields.push(("error".to_string(), Json::Str(msg.clone())));
        }
    }
    Json::Obj(fields)
}

/// The `{"op":"stats"}` document (serialized into the response's
/// `output` field).
fn render_stats(pool: &Pool, server: Option<&ServerStats>) -> Json {
    let num = |v: u64| Json::Num(v as f64);
    let counters = pool.counters();
    let tenants = pool.tenants();
    let mut fields = Vec::new();
    if let Some(s) = server {
        fields.push((
            "connections".to_string(),
            Json::Obj(vec![
                (
                    "total".to_string(),
                    num(s.connections_total.load(Ordering::SeqCst)),
                ),
                (
                    "live".to_string(),
                    num(s.connections_live.load(Ordering::SeqCst)),
                ),
            ]),
        ));
    }
    fields.push((
        "pool".to_string(),
        Json::Obj(vec![
            (
                "executed".to_string(),
                num(counters.executed.load(Ordering::Relaxed)),
            ),
            ("ok".to_string(), num(counters.ok.load(Ordering::Relaxed))),
            (
                "interrupted".to_string(),
                num(counters.interrupted.load(Ordering::Relaxed)),
            ),
            (
                "failed".to_string(),
                num(counters.failed.load(Ordering::Relaxed)),
            ),
            ("queue_depth".to_string(), num(pool.queue_depth() as u64)),
        ]),
    ));
    fields.push((
        "tenants".to_string(),
        Json::Obj(vec![
            (
                "resident".to_string(),
                num(tenants.resident_tenants() as u64),
            ),
            ("evictions".to_string(), num(tenants.evictions())),
            ("warm_restores".to_string(), num(tenants.warm_restores())),
            (
                "restored_entries".to_string(),
                num(tenants.restored_entries()),
            ),
        ]),
    ));
    fields.push((
        "fair_share".to_string(),
        Json::Arr(
            pool.fair_share()
                .snapshot()
                .into_iter()
                .map(|(tenant, bill)| {
                    Json::Obj(vec![
                        ("tenant".to_string(), Json::Str(tenant)),
                        ("jobs".to_string(), num(bill.jobs)),
                        ("cost".to_string(), num(bill.cost)),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

fn parse_request(line: &str, auto_id: u64, opts: &ServeOpts) -> Result<Line, (u64, String)> {
    let value = Json::parse(line).map_err(|e| (auto_id, format!("bad request: {e}")))?;
    if let Some(op) = value.get("op").and_then(Json::as_str) {
        return match op {
            "shutdown" => Ok(Line::Shutdown),
            "stats" => Ok(Line::Stats {
                id: value.get("id").and_then(Json::as_u64).unwrap_or(auto_id),
            }),
            other => Err((auto_id, format!("unknown op {other:?}"))),
        };
    }
    let id = value.get("id").and_then(Json::as_u64).unwrap_or(auto_id);
    let fail = |msg: String| (id, msg);
    let verb = value
        .get("task")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("request needs a \"task\" verb".to_string()))?;

    let text_field = |inline: &str, path: &str| -> Result<String, (u64, String)> {
        if let Some(text) = value.get(inline).and_then(Json::as_str) {
            return Ok(text.to_string());
        }
        if let Some(p) = value.get(path).and_then(Json::as_str) {
            return std::fs::read_to_string(p).map_err(|e| fail(format!("cannot read {p}: {e}")));
        }
        Err(fail(format!(
            "{verb} needs {inline:?} (inline text) or {path:?} (server-side file)"
        )))
    };
    let class_field = || -> Result<ClassSpec, (u64, String)> {
        match value.get("class").and_then(Json::as_str) {
            Some(s) => ClassSpec::parse(s).map_err(fail),
            None => Ok(ClassSpec::Cqm(2)),
        }
    };

    let classes_field = || -> Result<Vec<ClassSpec>, (u64, String)> {
        let mut classes = Vec::new();
        if let Some(list) = value.get("classes").and_then(Json::as_array) {
            for item in list {
                let s = item
                    .as_str()
                    .ok_or_else(|| fail("\"classes\" must hold strings".to_string()))?;
                classes.push(ClassSpec::parse(s).map_err(fail)?);
            }
        }
        Ok(classes)
    };
    let name_field = || -> Result<String, (u64, String)> {
        value
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| fail(format!("{verb} needs a \"name\" (resident database)")))
    };

    let task = match verb {
        "check" => Task::Check {
            train: text_field("train", "train_path")?,
            classes: classes_field()?,
        },
        "train" => Task::Train {
            train: text_field("train", "train_path")?,
            class: class_field()?,
        },
        "classify" => Task::Classify {
            train: text_field("train", "train_path")?,
            eval: text_field("eval", "eval_path")?,
            class: class_field()?,
        },
        "classify-batch" => Task::ClassifyBatch {
            train: text_field("train", "train_path")?,
            eval: text_field("eval", "eval_path")?,
            class: class_field()?,
        },
        "relabel" => {
            let name = value.get("name").and_then(Json::as_str).map(str::to_string);
            let train = match &name {
                // Resident-addressed: no database text travels.
                Some(_) => String::new(),
                None => text_field("train", "train_path")?,
            };
            Task::Relabel {
                train,
                k: match value.get("k") {
                    None => 1,
                    Some(v) => v
                        .as_u64()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| fail("\"k\" must be an integer ≥ 1".to_string()))?
                        as usize,
                },
                name,
            }
        }
        "append" => {
            let base = if value.get("base").is_some() || value.get("base_path").is_some() {
                Some(text_field("base", "base_path")?)
            } else {
                None
            };
            Task::Append {
                name: name_field()?,
                base,
                delta: text_field("delta", "delta_path")?,
            }
        }
        "recheck" => Task::Recheck {
            name: name_field()?,
            classes: classes_field()?,
        },
        "evaluate" => {
            let mut methods = Vec::new();
            if let Some(list) = value.get("methods").and_then(Json::as_array) {
                for item in list {
                    let s = item
                        .as_str()
                        .ok_or_else(|| fail("\"methods\" must hold strings".to_string()))?;
                    methods.push(FitMethod::parse(s).map_err(fail)?);
                }
            }
            let fit_timeout = match value.get("fit_timeout_secs") {
                None => None,
                Some(v) => {
                    // try_from: from_secs_f64 panics past u64::MAX secs.
                    let secs = v.as_f64().and_then(|s| Duration::try_from_secs_f64(s).ok());
                    Some(secs.ok_or_else(|| {
                        fail("\"fit_timeout_secs\" must be a non-negative number".to_string())
                    })?)
                }
            };
            Task::Evaluate {
                train: text_field("train", "train_path")?,
                test: text_field("test", "test_path")?,
                methods,
                fit_timeout,
            }
        }
        other => return Err(fail(format!("unknown task {other:?}"))),
    };

    let timeout = match value.get("timeout_secs") {
        None => opts.default_timeout,
        Some(v) => {
            // try_from: from_secs_f64 panics past u64::MAX secs.
            let secs = v.as_f64().and_then(|s| Duration::try_from_secs_f64(s).ok());
            Some(secs.ok_or_else(|| {
                fail("\"timeout_secs\" must be a non-negative number".to_string())
            })?)
        }
    };
    let priority = match value.get("priority") {
        None => 0,
        Some(v) => v
            .as_i64()
            .ok_or_else(|| fail("\"priority\" must be an integer".to_string()))?,
    };
    let tenant = match value.get("tenant") {
        None => None,
        Some(v) => {
            let id = v
                .as_str()
                .ok_or_else(|| fail("\"tenant\" must be a string".to_string()))?;
            validate_tenant_id(id).map_err(fail)?;
            Some(id.to_string())
        }
    };

    Ok(Line::Job(Job {
        id,
        task,
        timeout,
        priority,
        tenant,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "rel E/2\nfact E(a,b)\nfact E(b,c)\nentity a +\nentity b +\nentity c -\n";
    const EVAL: &str = "rel E/2\nfact E(u,v)\nentity u\nentity v\n";

    fn run_lines(lines: &[String], opts: &ServeOpts) -> (Vec<Json>, ServeSummary) {
        let input = lines.join("\n");
        let mut output = Vec::new();
        let summary = serve(Arc::new(Engine::new()), input.as_bytes(), &mut output, opts).unwrap();
        let responses = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        (responses, summary)
    }

    fn req(fields: &[(&str, Json)]) -> String {
        Json::Obj(
            fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
        .to_string()
    }

    fn status_of(responses: &[Json], id: u64) -> String {
        responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("no response with id {id}"))
            .to_string()
    }

    #[test]
    fn batch_of_mixed_tasks_round_trips() {
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                (
                    "classes",
                    Json::Arr(vec![
                        Json::Str("cq".to_string()),
                        Json::Str("ghw1".to_string()),
                    ]),
                ),
            ]),
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("classify".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("eval", Json::Str(EVAL.to_string())),
                ("class", Json::Str("ghw1".to_string())),
            ]),
            req(&[
                ("id", Json::Num(3.0)),
                ("task", Json::Str("train".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("class", Json::Str("cqm1".to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 3, "{responses:?}");
        assert_eq!(summary.total(), 3);
        assert!(!summary.shutdown_requested);
        assert_eq!(status_of(&responses, 1), "ok");
        assert_eq!(status_of(&responses, 2), "ok");
        assert_eq!(status_of(&responses, 3), "ok");
        let train_resp = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(3))
            .unwrap();
        assert!(
            train_resp.get("model").and_then(Json::as_str).is_some(),
            "train response carries the model text"
        );
    }

    #[test]
    fn classify_batch_request_reports_labels_and_stats() {
        let lines = vec![req(&[
            ("id", Json::Num(4.0)),
            ("task", Json::Str("classify-batch".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("eval", Json::Str(EVAL.to_string())),
            ("class", Json::Str("cqm1".to_string())),
        ])];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 1, "{responses:?}");
        assert_eq!(status_of(&responses, 4), "ok");
        let out = responses[0]
            .get("output")
            .and_then(Json::as_str)
            .expect("classify-batch carries an output");
        assert!(out.contains("u +"), "{out}");
        assert!(out.contains("v -"), "{out}");
        assert!(out.contains("# compiled: "), "{out}");
        assert!(out.contains("# batch: "), "{out}");
    }

    #[test]
    fn zero_timeout_reports_interrupted() {
        let lines = vec![req(&[
            ("id", Json::Num(7.0)),
            ("task", Json::Str("check".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("timeout_secs", Json::Num(0.0)),
        ])];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.interrupted, 1);
        assert_eq!(status_of(&responses, 7), "interrupted");
        let resp = &responses[0];
        assert_eq!(
            resp.get("reason").and_then(Json::as_str),
            Some("deadline exceeded")
        );
        assert!(resp.get("stats").and_then(Json::as_str).is_some());
    }

    #[test]
    fn evaluate_request_round_trips_with_methods_and_fit_timeout() {
        let test_db = "rel E/2\nfact E(t,u)\nfact E(u,v)\nentity t +\nentity u +\nentity v -\n";
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("evaluate".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("test", Json::Str(test_db.to_string())),
                (
                    "methods",
                    Json::Arr(vec![
                        Json::Str("cqm1".to_string()),
                        Json::Str("minerr1".to_string()),
                    ]),
                ),
                ("fit_timeout_secs", Json::Num(30.0)),
            ]),
            // Malformed method spelling: error response, serving continues.
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("evaluate".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("test", Json::Str(test_db.to_string())),
                ("methods", Json::Arr(vec![Json::Str("cqm0".to_string())])),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 1, "{responses:?}");
        assert_eq!(summary.failed, 1);
        assert_eq!(status_of(&responses, 1), "ok");
        let out = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(1))
            .and_then(|r| r.get("output"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(out.contains("CQ[1]"), "{out}");
        assert!(out.contains("MinErr[1]"), "{out}");
        let err = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(2))
            .and_then(|r| r.get("error"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(err.contains("bad method"), "{err}");
    }

    #[test]
    fn append_recheck_relabel_round_trip_on_one_connection() {
        // One worker so the jobs run in submission order: the recheck
        // must observe both appends.
        let opts = ServeOpts {
            workers: 1,
            ..ServeOpts::default()
        };
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("append".to_string())),
                ("name", Json::Str("t".to_string())),
                ("base", Json::Str(TRAIN.to_string())),
                (
                    "delta",
                    Json::Str("add-fact E(c,d)\nadd-entity d -\n".to_string()),
                ),
            ]),
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("append".to_string())),
                ("name", Json::Str("t".to_string())),
                (
                    "delta",
                    Json::Str("add-fact E(d,e)\nadd-entity e -\n".to_string()),
                ),
            ]),
            req(&[
                ("id", Json::Num(3.0)),
                ("task", Json::Str("recheck".to_string())),
                ("name", Json::Str("t".to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
            ]),
            req(&[
                ("id", Json::Num(4.0)),
                ("task", Json::Str("relabel".to_string())),
                ("name", Json::Str("t".to_string())),
                ("k", Json::Num(1.0)),
            ]),
            // Unknown resident: a domain failure, serving continues.
            req(&[
                ("id", Json::Num(5.0)),
                ("task", Json::Str("recheck".to_string())),
                ("name", Json::Str("ghost".to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &opts);
        assert_eq!(summary.ok, 4, "{responses:?}");
        assert_eq!(summary.failed, 1);
        let output_of = |id: u64| {
            responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_u64) == Some(id))
                .and_then(|r| r.get("output"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        assert!(
            output_of(1).contains("applied insert-only"),
            "{responses:?}"
        );
        assert!(output_of(2).contains("5 entities"), "{responses:?}");
        let recheck = output_of(3);
        assert!(recheck.contains("5 entities"), "{recheck}");
        assert!(recheck.contains("CQ-separable"), "{recheck}");
        let ghost = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(5))
            .and_then(|r| r.get("error"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(ghost.contains("no resident database"), "{ghost}");
    }

    #[test]
    fn malformed_lines_get_error_responses_and_serving_continues() {
        let lines = vec![
            "{not json".to_string(),
            req(&[
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("ghw0".to_string())])),
            ]),
            req(&[
                ("id", Json::Num(5.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.failed, 2);
        assert_eq!(summary.ok, 1);
        assert_eq!(status_of(&responses, 5), "ok");
        // The unified ClassSpec message crosses the protocol verbatim.
        let class_err = responses
            .iter()
            .filter_map(|r| r.get("error").and_then(Json::as_str))
            .find(|e| e.contains("bad class"));
        assert_eq!(
            class_err,
            Some("bad class \"ghw0\" (expected cq, ghw<k≥1>, cqm<m≥1>)")
        );
    }

    #[test]
    fn shutdown_op_stops_reading_and_cancels() {
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
            ]),
            "{\"op\":\"shutdown\"}".to_string(),
            // Past the shutdown line: must never be parsed or served.
            req(&[
                ("id", Json::Num(99.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert!(summary.shutdown_requested);
        assert!(
            responses
                .iter()
                .all(|r| r.get("id").and_then(Json::as_u64) != Some(99)),
            "lines after shutdown must be ignored: {responses:?}"
        );
        // Job 1 either completed or was cancelled; it got exactly one
        // response either way.
        assert_eq!(summary.total(), 1);
    }

    #[test]
    fn stats_op_reports_pool_and_tenant_counters() {
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
                ("tenant", Json::Str("acme".to_string())),
            ]),
            "{\"op\":\"stats\",\"id\":50}".to_string(),
        ];
        // One worker so the stats line is answered after the job ran…
        // except stats never queues: it reads counters at arrival time.
        // Ordering is therefore not asserted beyond "both answered".
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.ok, 2, "{responses:?}");
        let stats_out = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(50))
            .and_then(|r| r.get("output"))
            .and_then(Json::as_str)
            .expect("stats response carries an output document");
        let doc = Json::parse(stats_out).expect("stats output is JSON");
        assert!(doc.get("pool").is_some(), "{stats_out}");
        assert!(doc.get("tenants").is_some(), "{stats_out}");
        assert!(doc.get("fair_share").is_some(), "{stats_out}");
    }

    #[test]
    fn tenant_requests_are_isolated_by_engine_and_residents() {
        // Same resident name, conflicting labels, two tenants: each
        // recheck must answer from its own tenant's resident.
        let opts = ServeOpts {
            workers: 1,
            ..ServeOpts::default()
        };
        let a_base = "rel E/2\nfact E(a,b)\nentity a +\nentity b -\n";
        let b_base = "rel E/2\nfact E(a,b)\nentity a -\nentity b +\n";
        let lines = vec![
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("append".to_string())),
                ("name", Json::Str("t".to_string())),
                ("base", Json::Str(a_base.to_string())),
                ("delta", Json::Str(String::new())),
                ("tenant", Json::Str("alpha".to_string())),
            ]),
            req(&[
                ("id", Json::Num(2.0)),
                ("task", Json::Str("append".to_string())),
                ("name", Json::Str("t".to_string())),
                ("base", Json::Str(b_base.to_string())),
                ("delta", Json::Str(String::new())),
                ("tenant", Json::Str("beta".to_string())),
            ]),
            req(&[
                ("id", Json::Num(3.0)),
                ("task", Json::Str("relabel".to_string())),
                ("name", Json::Str("t".to_string())),
                ("tenant", Json::Str("alpha".to_string())),
            ]),
            // No tenant: the default registry has no resident "t".
            req(&[
                ("id", Json::Num(4.0)),
                ("task", Json::Str("recheck".to_string())),
                ("name", Json::Str("t".to_string())),
            ]),
        ];
        let (responses, summary) = run_lines(&lines, &opts);
        assert_eq!(summary.ok, 3, "{responses:?}");
        assert_eq!(summary.failed, 1);
        let relabel_out = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(3))
            .and_then(|r| r.get("output"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(relabel_out.contains("a +"), "{relabel_out}");
        let ghost = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_u64) == Some(4))
            .and_then(|r| r.get("error"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(
            ghost.contains("no resident database"),
            "default tenant must not see tenant residents: {ghost}"
        );
    }

    #[test]
    fn bad_tenant_ids_are_rejected_at_parse_time() {
        let lines = vec![req(&[
            ("id", Json::Num(1.0)),
            ("task", Json::Str("check".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("tenant", Json::Str("../../etc".to_string())),
        ])];
        let (responses, summary) = run_lines(&lines, &ServeOpts::default());
        assert_eq!(summary.failed, 1);
        let err = responses[0].get("error").and_then(Json::as_str).unwrap();
        assert!(err.contains("bad tenant id"), "{err}");
    }

    #[test]
    fn oversized_and_non_utf8_lines_get_typed_errors() {
        let mut input = Vec::new();
        // An oversized line: valid JSON prefix, then padding past the cap.
        input.extend_from_slice(b"{\"task\":\"check\",\"train\":\"");
        input.extend_from_slice(&vec![b'x'; MAX_REQUEST_BYTES]);
        input.extend_from_slice(b"\"}\n");
        // A non-UTF-8 line.
        input.extend_from_slice(&[0xFF, 0xFE, b'{', b'}', b'\n']);
        // A well-formed request: serving must have resynchronized.
        let good = req(&[
            ("id", Json::Num(9.0)),
            ("task", Json::Str("check".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
        ]);
        input.extend_from_slice(good.as_bytes());
        input.push(b'\n');

        let mut output = Vec::new();
        let summary = serve(
            Arc::new(Engine::new()),
            input.as_slice(),
            &mut output,
            &ServeOpts::default(),
        )
        .unwrap();
        assert_eq!(summary.failed, 2, "oversized + non-UTF-8");
        assert_eq!(summary.ok, 1);
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("exceeds"), "{text}");
        assert!(text.contains("not valid UTF-8"), "{text}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_a_connection() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("cqsep_sock_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let spath = path.clone();
        let server = std::thread::spawn(move || {
            serve_unix(Arc::new(Engine::new()), &spath, &ServeOpts::default())
        });
        // Wait for the socket to appear.
        let mut stream = loop {
            match UnixStream::connect(&path) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        let request = req(&[
            ("id", Json::Num(1.0)),
            ("task", Json::Str("check".to_string())),
            ("train", Json::Str(TRAIN.to_string())),
            ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
        ]);
        writeln!(stream, "{request}").unwrap();
        let mut reply = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut reply)
            .unwrap();
        let parsed = Json::parse(reply.trim()).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        writeln!(stream, "{{\"op\":\"shutdown\"}}").unwrap();
        drop(stream);
        server.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file is removed on shutdown");
    }

    #[test]
    fn tcp_serves_concurrent_connections_and_shuts_down() {
        use std::io::{BufRead, BufReader, Write};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tenants = Arc::new(TenantRegistry::new(crate::tenant::TenantConfig::default()));
        let opts = ServeOpts::default();
        let server = std::thread::spawn(move || serve_tcp(tenants, listener, &opts));

        let request = |tenant: &str| {
            req(&[
                ("id", Json::Num(1.0)),
                ("task", Json::Str("check".to_string())),
                ("train", Json::Str(TRAIN.to_string())),
                ("classes", Json::Arr(vec![Json::Str("cq".to_string())])),
                ("tenant", Json::Str(tenant.to_string())),
            ])
        };
        let clients: Vec<_> = (0..4)
            .map(|i| {
                let line = request(&format!("t{i}"));
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    writeln!(stream, "{line}").unwrap();
                    let mut reply = String::new();
                    BufReader::new(stream.try_clone().unwrap())
                        .read_line(&mut reply)
                        .unwrap();
                    drop(stream);
                    Json::parse(reply.trim())
                        .unwrap()
                        .get("status")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap().as_deref(), Some("ok"));
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{{\"op\":\"shutdown\"}}").unwrap();
        drop(stream);
        let summary = server.join().unwrap().unwrap();
        assert!(summary.shutdown_requested);
        assert_eq!(summary.connections, 5);
        assert_eq!(summary.ok, 4);
    }
}
