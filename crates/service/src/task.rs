//! The typed task layer: what a job asks for ([`Task`]), what it
//! produces ([`Outcome`]), and the interruptible executor
//! [`run_task_in`] that both the CLI subcommands and the
//! `cqsep-serve` worker pool are thin clients of.
//!
//! A [`Task`] carries its inputs *by value* (database text in the
//! `relational::spec` format), so a job is self-contained: it can cross
//! a process boundary on an NDJSON line, sit in the bounded queue, or
//! be built in-process by the CLI from a file it just read — the
//! executor cannot tell the difference.

use cq::EnumConfig;
use cqsep::generalize::{self, FitMethod};
use cqsep::{apx, cls_ghw, gen_ghw, sep_cq, sep_cqm, sep_ghw};
use engine::{Ctx, Engine, Interrupted};
use relational::spec::DatabaseSpec;
use relational::{Database, Delta, Label, TrainingDb};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A parsed feature-class specification: `cq`, `ghw<k>`, or `cqm<m>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassSpec {
    Cq,
    Ghw(usize),
    Cqm(usize),
}

impl ClassSpec {
    /// Parse `cq` / `ghw<k>` / `cqm<m>` (`k, m ≥ 1`). Every malformed
    /// spelling — unknown prefix, `ghw0`, `cqm0`, bare `ghw`, non-numeric
    /// suffix — produces the same one-line message.
    pub fn parse(s: &str) -> Result<ClassSpec, String> {
        let bad = || format!("bad class {s:?} (expected cq, ghw<k≥1>, cqm<m≥1>)");
        if s == "cq" {
            return Ok(ClassSpec::Cq);
        }
        if let Some(k) = s.strip_prefix("ghw") {
            return k
                .parse::<usize>()
                .ok()
                .filter(|&k| k >= 1)
                .map(ClassSpec::Ghw)
                .ok_or_else(bad);
        }
        if let Some(m) = s.strip_prefix("cqm") {
            return m
                .parse::<usize>()
                .ok()
                .filter(|&m| m >= 1)
                .map(ClassSpec::Cqm)
                .ok_or_else(bad);
        }
        Err(bad())
    }
}

impl std::fmt::Display for ClassSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassSpec::Cq => write!(f, "CQ"),
            ClassSpec::Ghw(k) => write!(f, "GHW({k})"),
            ClassSpec::Cqm(m) => write!(f, "CQ[{m}]"),
        }
    }
}

/// The default class list for a [`Task::Check`] with no explicit
/// classes, matching the CLI's historical default.
pub const DEFAULT_CHECK_CLASSES: [ClassSpec; 4] = [
    ClassSpec::Cq,
    ClassSpec::Ghw(1),
    ClassSpec::Cqm(1),
    ClassSpec::Cqm(2),
];

/// The atom-count budget [`Task::Train`] grants explicit `GHW(k)`
/// feature extraction (Proposition 5.6 is worst-case exponential).
pub const TRAIN_GHW_BUDGET: usize = 1_000_000;

/// Feature-bank size beyond which [`Task::Classify`] routes evaluation
/// through the compiled trie model instead of the per-feature sweep.
/// Below it, compile cost (core computations) is not worth amortizing;
/// predictions are identical either way (regression-tested across the
/// planted families).
pub const COMPILED_CLASSIFY_THRESHOLD: usize = 16;

/// The default method list for a [`Task::Evaluate`] with no explicit
/// methods: one strength sweep per regularized language plus the
/// min-error path.
pub const DEFAULT_EVALUATE_METHODS: [FitMethod; 6] = [
    FitMethod::Cqm(1),
    FitMethod::Cqm(2),
    FitMethod::Ghw(1),
    FitMethod::Sep { m: 2, ell: 1 },
    FitMethod::Sep { m: 2, ell: 2 },
    FitMethod::MinError(2),
];

/// One unit of work. Databases are inline text in the
/// `relational::spec` format (`rel`/`fact`/`entity` lines).
#[derive(Clone, Debug)]
pub enum Task {
    /// Separability report over `classes` (all four defaults if empty).
    Check {
        train: String,
        classes: Vec<ClassSpec>,
    },
    /// Generate a separator model for one class.
    Train { train: String, class: ClassSpec },
    /// Train on `train`, label the entities of `eval`.
    Classify {
        train: String,
        eval: String,
        class: ClassSpec,
    },
    /// Train on `train`, compile the model into the shared-prefix trie
    /// artifact, and stream the entities of `eval` through it. Output
    /// is the per-entity predictions plus the `ClassifierStats`
    /// counters (nodes visited, prefix prunes, reuse hits).
    ClassifyBatch {
        train: String,
        eval: String,
        class: ClassSpec,
    },
    /// Algorithm 2: optimal `GHW(k)`-separable relabeling. With `name`
    /// set, relabel the resident database of that name instead of
    /// parsing `train` (which is then ignored and conventionally
    /// empty). The repair is routed through the delta layer, so
    /// repeated identical requests are lineage-registry hits.
    Relabel {
        train: String,
        k: usize,
        name: Option<String>,
    },
    /// Mutate the named resident training database by a delta script
    /// (`add-fact` / `del-fact` / `add-entity` / `flip-label` lines).
    /// With `base` set, park that spec text under `name` first — the
    /// way a resident is born. The edit goes through the engine, so the
    /// lineage registry learns the fingerprint edge and later queries
    /// against the grown database can reuse cached verdicts.
    Append {
        name: String,
        base: Option<String>,
        delta: String,
    },
    /// Re-run a separability check against the named resident, warm:
    /// same report as [`Task::Check`], but the databases and the
    /// engine's caches persist across requests, so repeat checks after
    /// an [`Task::Append`] reuse prior verdicts (exactly or by
    /// subsumption) instead of recomputing them.
    Recheck {
        name: String,
        classes: Vec<ClassSpec>,
    },
    /// Generalization report: fit each method on `train`, score held-out
    /// accuracy/precision/recall on the labeled `test`. Each fit runs
    /// under its own `fit_timeout` child budget (when set), so one
    /// runaway method times out without sinking the whole report.
    Evaluate {
        train: String,
        test: String,
        methods: Vec<FitMethod>,
        fit_timeout: Option<Duration>,
    },
}

impl Task {
    /// The protocol verb for this task (`check`, `train`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Task::Check { .. } => "check",
            Task::Train { .. } => "train",
            Task::Classify { .. } => "classify",
            Task::ClassifyBatch { .. } => "classify-batch",
            Task::Relabel { .. } => "relabel",
            Task::Evaluate { .. } => "evaluate",
            Task::Append { .. } => "append",
            Task::Recheck { .. } => "recheck",
        }
    }
}

/// Named resident training databases: parsed once, mutated in place by
/// [`Task::Append`], and re-queried warm by [`Task::Recheck`] and
/// [`Task::Relabel`]. A cheap cloneable handle (the map lives behind an
/// `Arc`); the server keeps one per process so residents — and their
/// cached fingerprints — survive across jobs.
#[derive(Clone, Debug, Default)]
pub struct Residents {
    inner: Arc<Mutex<HashMap<String, TrainingDb>>>,
}

impl Residents {
    pub fn new() -> Residents {
        Residents::default()
    }

    /// Park `train` under `name`, replacing any previous resident.
    pub fn insert(&self, name: &str, train: TrainingDb) {
        self.inner.lock().unwrap().insert(name.to_string(), train);
    }

    /// Clone out the resident named `name`. The clone carries the
    /// cached fingerprint, so readers pay no recompute.
    pub fn get(&self, name: &str) -> Option<TrainingDb> {
        self.inner.lock().unwrap().get(name).cloned()
    }

    /// Resident names, sorted (for diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Clone out every resident, sorted by name — the snapshot the
    /// tenant registry persists before evicting a cold tenant.
    pub fn entries(&self) -> Vec<(String, TrainingDb)> {
        let mut entries: Vec<(String, TrainingDb)> = self
            .inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Number of parked residents.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn missing(&self, name: &str) -> String {
        let names = self.names();
        if names.is_empty() {
            format!("no resident database named {name:?} (create one with append + base text)")
        } else {
            format!(
                "no resident database named {name:?} (residents: {})",
                names.join(", ")
            )
        }
    }
}

/// What a successfully executed [`Task`] produced.
#[derive(Clone, Debug)]
pub struct TaskOutput {
    /// Human-readable report (the CLI prints this verbatim).
    pub output: String,
    /// For [`Task::Train`]: the persisted model text.
    pub model: Option<String>,
}

/// The terminal state of a job: exactly one of these comes back for
/// every submitted task, including tasks cancelled by shutdown.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The task ran to completion.
    Success(TaskOutput),
    /// The task's deadline passed or its handle was cancelled;
    /// [`Interrupted`] carries the reason and the partial engine stats.
    Interrupted(Interrupted),
    /// The task failed (unparsable database, inseparable training data,
    /// budget exhaustion, …).
    Failed(String),
}

impl Outcome {
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success(_))
    }

    pub fn is_interrupted(&self) -> bool {
        matches!(self, Outcome::Interrupted(_))
    }
}

/// Parse training-database text (spec format, labeled entities).
pub fn load_training(text: &str) -> Result<TrainingDb, String> {
    DatabaseSpec::parse(text)
        .map_err(|e| e.to_string())?
        .to_training()
        .map_err(|e| e.to_string())
}

/// Parse evaluation-database text (spec format, labels optional).
pub fn load_database(text: &str) -> Result<Database, String> {
    DatabaseSpec::parse(text)
        .map_err(|e| e.to_string())?
        .to_database()
        .map_err(|e| e.to_string())
}

/// Execute a task under a [`Ctx`]. The outer `Err` is interruption
/// (deadline passed or handle cancelled — the task should be reported
/// as [`Outcome::Interrupted`]); the inner `Err` is a domain failure
/// (bad input, inseparable data, exhausted budget). Stateless form:
/// resident-addressed tasks run against a throwaway registry, so an
/// `Append` with base text works (and reports its receipt) but nothing
/// survives the call — use [`run_task_res_in`] to keep residents.
pub fn run_task_in(ctx: &Ctx, task: &Task) -> Result<Result<TaskOutput, String>, Interrupted> {
    run_task_res_in(ctx, &Residents::new(), task)
}

/// [`run_task_in`] against a caller-owned resident registry — the warm
/// path the server and the CLI's `append`/`recheck` subcommands use.
pub fn run_task_res_in(
    ctx: &Ctx,
    residents: &Residents,
    task: &Task,
) -> Result<Result<TaskOutput, String>, Interrupted> {
    ctx.check()?;
    match task {
        Task::Check { train, classes } => {
            let train = match load_training(train) {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            let classes: &[ClassSpec] = if classes.is_empty() {
                &DEFAULT_CHECK_CLASSES
            } else {
                classes
            };
            let output = check_in(ctx, &train, classes)?;
            Ok(Ok(TaskOutput {
                output,
                model: None,
            }))
        }
        Task::Train { train, class } => {
            let train = match load_training(train) {
                Ok(t) => t,
                Err(e) => return Ok(Err(e)),
            };
            train_in(ctx, &train, *class)
        }
        Task::Classify { train, eval, class } => {
            let (train, eval) = match (load_training(train), load_database(eval)) {
                (Ok(t), Ok(e)) => (t, e),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            classify_in(ctx, &train, &eval, *class)
        }
        Task::ClassifyBatch { train, eval, class } => {
            let (train, eval) = match (load_training(train), load_database(eval)) {
                (Ok(t), Ok(e)) => (t, e),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            classify_batch_in(ctx, &train, &eval, *class)
        }
        Task::Relabel { train, k, name } => {
            let train = match name {
                Some(n) => match residents.get(n) {
                    Some(t) => t,
                    None => return Ok(Err(residents.missing(n))),
                },
                None => match load_training(train) {
                    Ok(t) => t,
                    Err(e) => return Ok(Err(e)),
                },
            };
            let output = relabel_in(ctx, &train, *k)?;
            Ok(Ok(TaskOutput {
                output,
                model: None,
            }))
        }
        Task::Append { name, base, delta } => {
            let delta = match Delta::parse(delta) {
                Ok(d) => d,
                Err(e) => return Ok(Err(e.to_string())),
            };
            if let Some(base) = base {
                let train = match load_training(base) {
                    Ok(t) => t,
                    Err(e) => return Ok(Err(e)),
                };
                residents.insert(name, train);
            }
            // Mutate in place under the registry lock: delta application
            // is cheap (clone + ops + fingerprint bookkeeping), and
            // atomicity means a failed apply leaves the resident intact.
            let mut map = residents.inner.lock().unwrap();
            let Some(train) = map.get_mut(name.as_str()) else {
                drop(map);
                return Ok(Err(residents.missing(name)));
            };
            let receipt = match ctx.apply_training_delta(train, &delta)? {
                Ok(r) => r,
                Err(e) => return Ok(Err(e.to_string())),
            };
            let output = format!(
                "{name}: {}\n{name}: now {} entities ({} positive, {} negative), {} facts\n",
                receipt.summary(),
                train.entities().len(),
                train.positives().len(),
                train.negatives().len(),
                train.db.fact_count()
            );
            Ok(Ok(TaskOutput {
                output,
                model: None,
            }))
        }
        Task::Recheck { name, classes } => {
            let Some(train) = residents.get(name) else {
                return Ok(Err(residents.missing(name)));
            };
            let classes: &[ClassSpec] = if classes.is_empty() {
                &DEFAULT_CHECK_CLASSES
            } else {
                classes
            };
            let output = check_in(ctx, &train, classes)?;
            Ok(Ok(TaskOutput {
                output,
                model: None,
            }))
        }
        Task::Evaluate {
            train,
            test,
            methods,
            fit_timeout,
        } => {
            let (train, test) = match (load_training(train), load_training(test)) {
                (Ok(t), Ok(e)) => (t, e),
                (Err(e), _) | (_, Err(e)) => return Ok(Err(e)),
            };
            let methods: &[FitMethod] = if methods.is_empty() {
                &DEFAULT_EVALUATE_METHODS
            } else {
                methods
            };
            let output = evaluate_in(ctx, &train, &test, methods, *fit_timeout)?;
            Ok(Ok(TaskOutput {
                output,
                model: None,
            }))
        }
    }
}

/// [`run_task_in`] against a bare engine (unbounded context).
pub fn run_task_with(engine: &Engine, task: &Task) -> Result<TaskOutput, String> {
    run_task_in(&engine.ctx(), task).expect("unbounded ctx cannot interrupt")
}

/// Execute a task and flatten all three terminal states into an
/// [`Outcome`]. Stateless registry — see [`execute_res_in`].
pub fn execute_in(ctx: &Ctx, task: &Task) -> Outcome {
    execute_res_in(ctx, &Residents::new(), task)
}

/// Execute a task against a caller-owned resident registry and flatten
/// all three terminal states into an [`Outcome`] — what the worker pool
/// reports per job.
pub fn execute_res_in(ctx: &Ctx, residents: &Residents, task: &Task) -> Outcome {
    match run_task_res_in(ctx, residents, task) {
        Ok(Ok(out)) => Outcome::Success(out),
        Ok(Err(msg)) => Outcome::Failed(msg),
        Err(interrupted) => Outcome::Interrupted(interrupted),
    }
}

fn check_in(ctx: &Ctx, train: &TrainingDb, classes: &[ClassSpec]) -> Result<String, Interrupted> {
    let mut out = String::new();
    let n = train.entities().len();
    let _ = writeln!(
        out,
        "{} entities ({} positive, {} negative), {} facts",
        n,
        train.positives().len(),
        train.negatives().len(),
        train.db.fact_count()
    );
    for &c in classes {
        let answer = match c {
            ClassSpec::Cq => sep_cq::cq_separable_in(ctx, train)?,
            ClassSpec::Ghw(k) => sep_ghw::ghw_separable_in(ctx, train, k)?,
            ClassSpec::Cqm(m) => sep_cqm::cqm_separable_in(ctx, train, &EnumConfig::cqm(m))?,
        };
        let _ = writeln!(out, "{c:>8}-separable: {answer}");
        if !answer {
            let witness = match c {
                ClassSpec::Cq => sep_cq::cq_inseparability_witness_in(ctx, train)?,
                ClassSpec::Ghw(k) => sep_ghw::ghw_inseparability_witness_in(ctx, train, k)?,
                ClassSpec::Cqm(_) => None,
            };
            if let Some((p, q)) = witness {
                let _ = writeln!(
                    out,
                    "         witness: {} (+) and {} (-) are indistinguishable",
                    train.db.val_name(p),
                    train.db.val_name(q)
                );
            }
        }
    }
    Ok(out)
}

/// Generate a separator model for one class — the shared front half of
/// [`Task::Train`] and [`Task::ClassifyBatch`].
fn generate_model_in(
    ctx: &Ctx,
    train: &TrainingDb,
    class: ClassSpec,
) -> Result<Result<cqsep::SeparatorModel, String>, Interrupted> {
    let model = match class {
        ClassSpec::Cq => match sep_cq::cq_generate_in(ctx, train)? {
            Some(m) => m,
            None => return Ok(Err("not CQ-separable".to_string())),
        },
        ClassSpec::Ghw(k) => match gen_ghw::ghw_generate_in(ctx, train, k, TRAIN_GHW_BUDGET)? {
            Ok(m) => m,
            Err(e) => return Ok(Err(e.to_string())),
        },
        ClassSpec::Cqm(m) => match sep_cqm::cqm_generate_in(ctx, train, &EnumConfig::cqm(m))? {
            Some(model) => model,
            None => return Ok(Err(format!("not CQ[{m}]-separable"))),
        },
    };
    Ok(Ok(model))
}

fn train_in(
    ctx: &Ctx,
    train: &TrainingDb,
    class: ClassSpec,
) -> Result<Result<TaskOutput, String>, Interrupted> {
    let model = match generate_model_in(ctx, train, class)? {
        Ok(m) => m,
        Err(e) => return Ok(Err(e)),
    };
    let report = format!(
        "{class}: {} features, {} total atoms\n",
        model.statistic.dimension(),
        model.statistic.total_atoms()
    );
    Ok(Ok(TaskOutput {
        output: report,
        model: Some(cqsep::persist::model_to_text(&model)),
    }))
}

fn classify_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
    class: ClassSpec,
) -> Result<Result<TaskOutput, String>, Interrupted> {
    let labels = match class {
        ClassSpec::Ghw(k) => match cls_ghw::ghw_classify_in(ctx, train, eval, k)? {
            Ok(l) => l,
            Err(_) => return Ok(Err(format!("training data is not GHW({k})-separable"))),
        },
        ClassSpec::Cq => match sep_cq::cq_classify_in(ctx, train, eval)? {
            Some(l) => l,
            None => return Ok(Err("training data is not CQ-separable".to_string())),
        },
        ClassSpec::Cqm(m) => {
            let model = match sep_cqm::cqm_generate_in(ctx, train, &EnumConfig::cqm(m))? {
                Some(model) => model,
                None => return Ok(Err(format!("training data is not CQ[{m}]-separable"))),
            };
            // Wide enumerated banks amortize through the compiled trie;
            // small ones are cheaper to sweep directly. Either route
            // produces identical labels (regression-tested on the
            // planted families).
            if model.statistic.dimension() > COMPILED_CLASSIFY_THRESHOLD {
                classifier::Model::compile_separator(&model)
                    .classify_in(ctx, eval)?
                    .0
            } else {
                model.classify_in(ctx, eval)?
            }
        }
    };
    Ok(Ok(TaskOutput {
        output: render_labels(eval, |e| labels.get(e)),
        model: None,
    }))
}

fn classify_batch_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
    class: ClassSpec,
) -> Result<Result<TaskOutput, String>, Interrupted> {
    let model = match generate_model_in(ctx, train, class)? {
        Ok(m) => m,
        Err(e) => return Ok(Err(e)),
    };
    let compiled = classifier::Model::compile_separator(&model);
    let (labels, stats) = compiled.classify_in(ctx, eval)?;
    let mut output = render_labels(eval, |e| labels.get(e));
    let _ = writeln!(
        output,
        "# compiled: {} features -> {} cores, {} trie nodes",
        compiled.original_dimension(),
        compiled.compiled_dimension(),
        compiled.trie_nodes()
    );
    let _ = writeln!(output, "# batch: {}", stats.report());
    Ok(Ok(TaskOutput {
        output,
        model: None,
    }))
}

fn relabel_in(ctx: &Ctx, train: &TrainingDb, k: usize) -> Result<String, Interrupted> {
    let relabeled = apx::ghw_optimal_relabeling_in(ctx, train, k)?;
    let errors = train.labeling.disagreement(&relabeled);
    // Express the repair as a label-only delta and push it through the
    // engine's delta layer against a scratch copy (relabel reports, it
    // does not mutate its input). Label flips are fingerprint-neutral,
    // so the receipt's edge is an identity edge — and a repeated
    // identical request is a lineage-registry hit: no fingerprint is
    // recomputed the second time.
    let mut delta = Delta::new();
    for e in train.entities() {
        if train.labeling.get(e) != relabeled.get(e) {
            delta = delta.flip_label(train.db.val_name(e));
        }
    }
    let mut scratch = train.clone();
    let receipt = ctx
        .apply_training_delta(&mut scratch, &delta)?
        .expect("flip-label delta over the training database's own entities cannot fail");
    let mut out = format!(
        "optimal GHW({k})-separable relabeling: {} disagreement(s)\n",
        errors
    );
    for e in train.entities() {
        let old = train.labeling.get(e);
        let new = relabeled.get(e);
        let mark = if old == new { " " } else { "*" };
        let _ = writeln!(
            out,
            "{mark} {} {} -> {}",
            train.db.val_name(e),
            sign(old),
            sign(new)
        );
    }
    let _ = writeln!(out, "# {}", receipt.summary());
    Ok(out)
}

fn evaluate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    test: &TrainingDb,
    methods: &[FitMethod],
    fit_timeout: Option<Duration>,
) -> Result<String, Interrupted> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "train: {} entities ({}+ {}-), {} facts | test: {} entities ({}+ {}-), {} facts",
        train.entities().len(),
        train.positives().len(),
        train.negatives().len(),
        train.db.fact_count(),
        test.entities().len(),
        test.positives().len(),
        test.negatives().len(),
        test.db.fact_count()
    );
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>6} {:>6} {:>6} {:>9} {:>4}  fit",
        "method", "acc", "prec", "rec", "tp/fp", "train_err", "dim"
    );
    for &method in methods {
        // Each fit gets a child handle: its own budget capped by the
        // task deadline, sharing the task's cancel flag. A fit that
        // exhausts only its own budget becomes a "timed out" row; any
        // trip of the *task* handle aborts the whole report.
        let result = match fit_timeout {
            Some(budget) => {
                let fit_ctx = Ctx::with_interrupt(ctx.engine(), ctx.interrupt().child(budget));
                generalize::evaluate_in(&fit_ctx, train, test, method)
            }
            None => generalize::evaluate_in(ctx, train, test, method),
        };
        match result {
            Ok(r) => {
                let fit = if r.fit_exact {
                    "exact"
                } else {
                    match method {
                        FitMethod::Cqm(_) | FitMethod::Sep { .. } => "fallback(majority)",
                        FitMethod::Ghw(_) | FitMethod::MinError(_) => "approx",
                    }
                };
                let dim = r
                    .dimension
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "{:<14} {:>5.3} {:>6.3} {:>6.3} {:>6} {:>9} {:>4}  {fit}",
                    method.to_string(),
                    r.accuracy(),
                    r.precision(),
                    r.recall(),
                    format!("{}/{}", r.tp, r.fp),
                    r.train_errors,
                    dim
                );
            }
            Err(_) => {
                // Distinguish "this fit's budget ran out" (a row; keep
                // going) from "the task handle tripped" (abort): the
                // sticky task handle answers directly.
                ctx.check()?;
                let _ = writeln!(
                    out,
                    "{:<14} fit timed out (budget {:.1}s)",
                    method.to_string(),
                    fit_timeout.map(|d| d.as_secs_f64()).unwrap_or(0.0)
                );
            }
        }
    }
    Ok(out)
}

/// Render entity labels one per line, sorted by entity name — the
/// classification output format shared by `classify` and
/// `classify-model`.
pub fn render_labels(db: &Database, get: impl Fn(relational::Val) -> Label) -> String {
    let mut out = String::new();
    let mut named: Vec<(String, relational::Val)> = db
        .entities()
        .into_iter()
        .map(|e| (db.val_name(e).to_string(), e))
        .collect();
    named.sort();
    for (name, e) in named {
        let _ = writeln!(out, "{name} {}", sign(get(e)));
    }
    out
}

fn sign(l: Label) -> &'static str {
    match l {
        Label::Positive => "+",
        Label::Negative => "-",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const TRAIN: &str = "\
rel E/2
fact E(a,b)
fact E(b,c)
entity a +
entity b +
entity c -
";

    const EVAL: &str = "\
rel E/2
fact E(u,v)
entity u
entity v
";

    #[test]
    fn class_spec_parses_valid_forms() {
        assert_eq!(ClassSpec::parse("cq"), Ok(ClassSpec::Cq));
        assert_eq!(ClassSpec::parse("ghw2"), Ok(ClassSpec::Ghw(2)));
        assert_eq!(ClassSpec::parse("cqm3"), Ok(ClassSpec::Cqm(3)));
    }

    /// Satellite requirement: every malformed spelling produces the one
    /// unified message — `ghw0`/`cqm0`, empty suffixes, and unknown
    /// prefixes are indistinguishable to the caller.
    #[test]
    fn class_spec_errors_are_unified() {
        for bad in ["ghw0", "cqm0", "ghw", "cqm", "ghwx", "cqm-1", "nope", ""] {
            let err = ClassSpec::parse(bad).unwrap_err();
            assert_eq!(
                err,
                format!("bad class {bad:?} (expected cq, ghw<k≥1>, cqm<m≥1>)"),
                "spelling {bad:?} must use the unified message"
            );
        }
    }

    #[test]
    fn check_task_reports_all_default_classes() {
        let engine = Engine::new();
        let out = run_task_with(
            &engine,
            &Task::Check {
                train: TRAIN.to_string(),
                classes: vec![],
            },
        )
        .unwrap();
        assert!(out.output.contains("CQ-separable: true"), "{}", out.output);
        assert!(
            out.output.contains("GHW(1)-separable: true"),
            "{}",
            out.output
        );
        assert!(
            out.output.contains("CQ[2]-separable: true"),
            "{}",
            out.output
        );
        assert!(out.model.is_none());
    }

    #[test]
    fn train_task_returns_a_model() {
        let engine = Engine::new();
        let out = run_task_with(
            &engine,
            &Task::Train {
                train: TRAIN.to_string(),
                class: ClassSpec::Cqm(1),
            },
        )
        .unwrap();
        assert!(out.output.contains("features"), "{}", out.output);
        let model = out.model.expect("train returns the model text");
        assert!(model.contains("feature"), "{model}");
    }

    #[test]
    fn classify_task_labels_eval_entities() {
        let engine = Engine::new();
        let out = run_task_with(
            &engine,
            &Task::Classify {
                train: TRAIN.to_string(),
                eval: EVAL.to_string(),
                class: ClassSpec::Ghw(1),
            },
        )
        .unwrap();
        assert!(out.output.contains("u "), "{}", out.output);
        assert!(out.output.contains("v "), "{}", out.output);
    }

    #[test]
    fn classify_batch_task_labels_and_reports_stats() {
        let engine = Engine::new();
        let out = run_task_with(
            &engine,
            &Task::ClassifyBatch {
                train: TRAIN.to_string(),
                eval: EVAL.to_string(),
                class: ClassSpec::Cqm(1),
            },
        )
        .unwrap();
        assert!(out.output.contains("u +"), "{}", out.output);
        assert!(out.output.contains("v -"), "{}", out.output);
        assert!(out.output.contains("# compiled: "), "{}", out.output);
        assert!(out.output.contains("# batch: "), "{}", out.output);
        assert!(out.model.is_none());
    }

    /// The batch path and the plain classify path agree on every entity —
    /// the compiled trie is an evaluation strategy, not a new model.
    #[test]
    fn classify_batch_agrees_with_classify() {
        let engine = Engine::new();
        let run = |task| run_task_with(&engine, &task).unwrap().output;
        let plain = run(Task::Classify {
            train: TRAIN.to_string(),
            eval: EVAL.to_string(),
            class: ClassSpec::Cqm(2),
        });
        let batch = run(Task::ClassifyBatch {
            train: TRAIN.to_string(),
            eval: EVAL.to_string(),
            class: ClassSpec::Cqm(2),
        });
        let labels_only = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(labels_only(&plain), labels_only(&batch));
    }

    #[test]
    fn relabel_task_reports_disagreements() {
        let engine = Engine::new();
        let noisy = "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n";
        let out = run_task_with(
            &engine,
            &Task::Relabel {
                train: noisy.to_string(),
                k: 1,
                name: None,
            },
        )
        .unwrap();
        assert!(out.output.contains("1 disagreement"), "{}", out.output);
        assert!(
            out.output.contains("applied label-only delta"),
            "{}",
            out.output
        );
    }

    #[test]
    fn append_creates_mutates_and_recheck_reads_residents() {
        let engine = Engine::new();
        let residents = Residents::new();
        let ctx = engine.ctx();
        // Born from base text, immediately grown by one entity.
        let out = run_task_res_in(
            &ctx,
            &residents,
            &Task::Append {
                name: "t".to_string(),
                base: Some(TRAIN.to_string()),
                delta: "add-fact E(c,d)\nadd-entity d -\n".to_string(),
            },
        )
        .unwrap()
        .unwrap();
        assert!(out.output.contains("applied insert-only"), "{}", out.output);
        assert!(out.output.contains("4 entities"), "{}", out.output);
        // The resident grew in place...
        assert_eq!(residents.get("t").unwrap().entities().len(), 4);
        // ...and recheck sees the grown database.
        let check = run_task_res_in(
            &ctx,
            &residents,
            &Task::Recheck {
                name: "t".to_string(),
                classes: vec![ClassSpec::Cq],
            },
        )
        .unwrap()
        .unwrap();
        assert!(check.output.contains("4 entities"), "{}", check.output);
        assert!(check.output.contains("CQ-separable"), "{}", check.output);
        // The engine recorded the fingerprint edge.
        assert!(engine.stats().sub.lineage_edges >= 1);
    }

    #[test]
    fn append_without_base_or_resident_is_a_domain_failure() {
        let engine = Engine::new();
        let residents = Residents::new();
        let err = run_task_res_in(
            &engine.ctx(),
            &residents,
            &Task::Append {
                name: "ghost".to_string(),
                base: None,
                delta: "add-fact E(a,b)\n".to_string(),
            },
        )
        .unwrap()
        .unwrap_err();
        assert!(err.contains("no resident database"), "{err}");
        // A bad delta is atomic: the resident is untouched.
        residents.insert("t", load_training(TRAIN).unwrap());
        let before = residents.get("t").unwrap().db.fact_count();
        let err = run_task_res_in(
            &engine.ctx(),
            &residents,
            &Task::Append {
                name: "t".to_string(),
                base: None,
                delta: "add-fact E(a,b)\ndel-fact E(z,z)\n".to_string(),
            },
        )
        .unwrap()
        .unwrap_err();
        assert!(err.contains("unknown element"), "{err}");
        assert_eq!(residents.get("t").unwrap().db.fact_count(), before);
    }

    #[test]
    fn relabel_by_name_reads_the_resident() {
        let engine = Engine::new();
        let residents = Residents::new();
        let noisy = "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n";
        residents.insert("noisy", load_training(noisy).unwrap());
        let out = run_task_res_in(
            &engine.ctx(),
            &residents,
            &Task::Relabel {
                train: String::new(),
                k: 1,
                name: Some("noisy".to_string()),
            },
        )
        .unwrap()
        .unwrap();
        assert!(out.output.contains("1 disagreement"), "{}", out.output);
        // Report-only: the resident keeps its labels.
        let t = residents.get("noisy").unwrap();
        assert_eq!(t.positives().len(), 1);
    }

    const TEST_DB: &str = "\
rel E/2
fact E(t,u)
fact E(u,v)
entity t +
entity u +
entity v -
";

    #[test]
    fn evaluate_task_reports_heldout_metrics_for_all_default_methods() {
        let engine = Engine::new();
        let out = run_task_with(
            &engine,
            &Task::Evaluate {
                train: TRAIN.to_string(),
                test: TEST_DB.to_string(),
                methods: vec![],
                fit_timeout: None,
            },
        )
        .unwrap();
        for m in DEFAULT_EVALUATE_METHODS {
            assert!(out.output.contains(&m.to_string()), "{m}: {}", out.output);
        }
        // The out-edge split is aced by every default method.
        assert!(out.output.contains("1.000"), "{}", out.output);
        assert!(!out.output.contains("timed out"), "{}", out.output);
        assert!(out.model.is_none());
    }

    #[test]
    fn evaluate_fit_timeout_marks_rows_without_sinking_the_task() {
        let engine = Engine::new();
        let out = run_task_with(
            &engine,
            &Task::Evaluate {
                train: TRAIN.to_string(),
                test: TEST_DB.to_string(),
                methods: vec![FitMethod::Cqm(1), FitMethod::Ghw(1)],
                fit_timeout: Some(Duration::ZERO),
            },
        )
        .unwrap();
        // Every fit's child budget is already expired, but the task
        // itself succeeds with per-method timeout rows.
        assert_eq!(
            out.output.matches("fit timed out").count(),
            2,
            "{}",
            out.output
        );
    }

    #[test]
    fn evaluate_task_respects_the_outer_deadline() {
        let engine = Engine::new();
        let ctx = engine.ctx_with_deadline(Duration::ZERO);
        let outcome = execute_in(
            &ctx,
            &Task::Evaluate {
                train: TRAIN.to_string(),
                test: TEST_DB.to_string(),
                methods: vec![],
                fit_timeout: Some(Duration::from_secs(3600)),
            },
        );
        assert!(outcome.is_interrupted(), "{outcome:?}");
    }

    #[test]
    fn bad_database_text_is_a_domain_failure_not_a_panic() {
        let engine = Engine::new();
        let err = run_task_with(
            &engine,
            &Task::Check {
                train: "this is not a database".to_string(),
                classes: vec![],
            },
        )
        .unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn expired_deadline_yields_interrupted_outcome() {
        let engine = Engine::new();
        let ctx = engine.ctx_with_deadline(Duration::ZERO);
        let outcome = execute_in(
            &ctx,
            &Task::Check {
                train: TRAIN.to_string(),
                classes: vec![],
            },
        );
        match outcome {
            Outcome::Interrupted(i) => assert!(i.deadline_exceeded()),
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }
}
