//! `cqsep-serve`: a long-lived solver service speaking newline-delimited
//! JSON over stdin/stdout (default) or a Unix domain socket
//! (`--socket <path>`). See `service::server` for the wire format.

use engine::Engine;
use service::ServeOpts;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: cqsep-serve [options]
  --workers <n>        worker threads sharing the engine (default 2)
  --queue <n>          bounded job-queue capacity (default 64)
  --timeout <secs>     default per-task budget for requests without one
  --socket <path>      serve a Unix domain socket instead of stdin/stdout
  --threads <n>        cap solver parallelism per task at n threads
  --no-cache           run every hom/game query unmemoized
protocol: one JSON request per line in, one JSON response per line out;
          end of input drains, {\"op\":\"shutdown\"} cancels in-flight work";

fn parse_args(args: &[String]) -> Result<(ServeOpts, Option<String>, Engine), String> {
    let mut opts = ServeOpts::default();
    let mut socket = None;
    let mut engine = Engine::new();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = value(args, i, "--workers")?;
                opts.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --workers value {v:?}"))?;
                i += 1;
            }
            "--queue" => {
                let v = value(args, i, "--queue")?;
                opts.queue_cap = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --queue value {v:?}"))?;
                i += 1;
            }
            "--timeout" => {
                let v = value(args, i, "--timeout")?;
                let secs = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s >= 0.0 && s.is_finite())
                    .ok_or_else(|| format!("bad --timeout value {v:?}"))?;
                opts.default_timeout = Some(Duration::from_secs_f64(secs));
                i += 1;
            }
            "--socket" => {
                socket = Some(value(args, i, "--socket")?);
                i += 1;
            }
            "--threads" => {
                let v = value(args, i, "--threads")?;
                let n = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --threads value {v:?}"))?;
                engine = engine.with_threads(n);
                i += 1;
            }
            "--no-cache" => engine = engine.without_cache(),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok((opts, socket, engine))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, socket, engine) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let engine = Arc::new(engine);
    let result = match socket {
        Some(path) => service::serve_unix(engine, std::path::Path::new(&path), &opts),
        None => {
            let stdin = std::io::stdin().lock();
            service::serve(engine, stdin, std::io::stdout(), &opts).map(|_| ())
        }
    };
    if let Err(e) = result {
        eprintln!("cqsep-serve: {e}");
        std::process::exit(1);
    }
}
