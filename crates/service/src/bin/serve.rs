//! `cqsep-serve`: a long-lived solver service speaking newline-delimited
//! JSON over stdin/stdout (default), a Unix domain socket
//! (`--socket <path>`), or TCP (`--tcp <addr>` — concurrent
//! connections, multi-tenant engine LRU, snapshot warm starts). See
//! `service::server` for the wire format.

use service::{ServeOpts, TenantConfig, TenantRegistry};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: cqsep-serve [options]
  --workers <n>        worker threads sharing the engine pool (default 2)
  --queue <n>          bounded job-queue capacity (default 64)
  --timeout <secs>     default per-task budget for requests without one
  --socket <path>      serve a Unix domain socket instead of stdin/stdout
  --tcp <addr>         serve TCP (e.g. 127.0.0.1:0); prints the bound
                       address as 'listening on <addr>' on stdout
  --tenants <n>        resident-tenant LRU capacity (default 8)
  --cache-dir <dir>    tenant snapshot root: warm-start tenants from
                       <dir>/<tenant>/, snapshot on evict and shutdown
  --threads <n>        cap solver parallelism per task at n threads
  --no-cache           run every hom/game query unmemoized
protocol: one JSON request per line in, one JSON response per line out;
          requests may carry \"tenant\" for isolated engines;
          {\"op\":\"stats\"} reports counters, end of input drains,
          {\"op\":\"shutdown\"} cancels in-flight work";

enum Mode {
    Stdio,
    Socket(String),
    Tcp(String),
}

fn parse_args(args: &[String]) -> Result<(ServeOpts, Mode, TenantConfig), String> {
    let mut opts = ServeOpts::default();
    let mut mode = Mode::Stdio;
    let mut config = TenantConfig::default();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = value(args, i, "--workers")?;
                opts.workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --workers value {v:?}"))?;
                i += 1;
            }
            "--queue" => {
                let v = value(args, i, "--queue")?;
                opts.queue_cap = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --queue value {v:?}"))?;
                i += 1;
            }
            "--timeout" => {
                let v = value(args, i, "--timeout")?;
                let secs = v
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s >= 0.0 && s.is_finite())
                    .ok_or_else(|| format!("bad --timeout value {v:?}"))?;
                opts.default_timeout = Some(Duration::from_secs_f64(secs));
                i += 1;
            }
            "--socket" => {
                mode = Mode::Socket(value(args, i, "--socket")?);
                i += 1;
            }
            "--tcp" => {
                mode = Mode::Tcp(value(args, i, "--tcp")?);
                i += 1;
            }
            "--tenants" => {
                let v = value(args, i, "--tenants")?;
                config.capacity = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --tenants value {v:?}"))?;
                i += 1;
            }
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(value(args, i, "--cache-dir")?));
                i += 1;
            }
            "--threads" => {
                let v = value(args, i, "--threads")?;
                let n = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --threads value {v:?}"))?;
                config.threads = Some(n);
                i += 1;
            }
            "--no-cache" => config.use_cache = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok((opts, mode, config))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, mode, config) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let tenants = Arc::new(TenantRegistry::new(config));
    let result = match mode {
        Mode::Socket(path) => {
            #[cfg(unix)]
            {
                service::serve_unix(
                    Arc::clone(tenants.default_engine()),
                    std::path::Path::new(&path),
                    &opts,
                )
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                eprintln!("cqsep-serve: --socket is only available on Unix");
                std::process::exit(2);
            }
        }
        Mode::Tcp(addr) => match std::net::TcpListener::bind(&addr) {
            Ok(listener) => match listener.local_addr() {
                Ok(bound) => {
                    // The router (and scripts) parse this line.
                    println!("cqsep-serve: listening on {bound}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                    service::serve_tcp(tenants, listener, &opts).map(|summary| {
                        eprintln!(
                            "cqsep-serve: done: {} connection(s), {} ok, {} interrupted, {} error",
                            summary.connections, summary.ok, summary.interrupted, summary.failed
                        );
                    })
                }
                Err(e) => Err(e),
            },
            Err(e) => Err(e),
        },
        Mode::Stdio => {
            let stdin = std::io::stdin().lock();
            service::serve(
                Arc::clone(tenants.default_engine()),
                stdin,
                std::io::stdout(),
                &opts,
            )
            .map(|_| ())
        }
    };
    if let Err(e) = result {
        eprintln!("cqsep-serve: {e}");
        std::process::exit(1);
    }
}
