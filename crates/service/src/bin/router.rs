//! `cqsep-router`: the shard front-end. Spawns and supervises N
//! `cqsep-serve --tcp` worker processes, rendezvous-hashes each
//! request's tenant onto one of them, and proxies NDJSON lines to the
//! owning shard (resending in-flight lines across a worker
//! crash-restart). See `service::router` for the protocol details.

use service::RouterOpts;
use std::path::PathBuf;

const USAGE: &str = "usage: cqsep-router [options]
  --shards <n>         worker processes to hash tenants across (default 2)
  --listen <addr>      listen address (default 127.0.0.1:0); the bound
                       address is printed as 'listening on <addr>'
  --serve-bin <path>   cqsep-serve binary (default: sibling of this one)
  --cache-dir <dir>    snapshot root; shard i snapshots under <dir>/shard-i
  --workers <n>        forwarded to every worker
  --queue <n>          forwarded to every worker
  --timeout <secs>     forwarded to every worker
  --tenants <n>        forwarded to every worker (tenant LRU capacity)
  --threads <n>        forwarded to every worker
  --no-cache           forwarded to every worker
protocol: NDJSON as cqsep-serve; {\"op\":\"stats\"} answers with shard
          addresses/generations, {\"op\":\"shutdown\"} stops workers and
          router";

fn parse_args(args: &[String]) -> Result<(RouterOpts, String), String> {
    let mut opts = RouterOpts::default();
    let mut listen = "127.0.0.1:0".to_string();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                let v = value(args, i, "--shards")?;
                opts.shards = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --shards value {v:?}"))?;
                i += 1;
            }
            "--listen" => {
                listen = value(args, i, "--listen")?;
                i += 1;
            }
            "--serve-bin" => {
                opts.serve_bin = Some(PathBuf::from(value(args, i, "--serve-bin")?));
                i += 1;
            }
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(value(args, i, "--cache-dir")?));
                i += 1;
            }
            flag @ ("--workers" | "--queue" | "--timeout" | "--tenants" | "--threads") => {
                let v = value(args, i, flag)?;
                opts.worker_args.push(flag.to_string());
                opts.worker_args.push(v);
                i += 1;
            }
            "--no-cache" => opts.worker_args.push("--no-cache".to_string()),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
        i += 1;
    }
    Ok((opts, listen))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, listen) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cqsep-router: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = service::run_router(listener, &opts) {
        eprintln!("cqsep-router: {e}");
        std::process::exit(1);
    }
}
