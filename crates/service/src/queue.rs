//! A bounded, blocking priority queue with starvation-free scheduling:
//! the admission-control stage between the protocol front-end and the
//! worker pool.
//!
//! Selection order is governed by three signals:
//!
//! 1. **Effective priority** — the caller's priority plus an *aging
//!    boost*: every [`aging period`](JobQueue::with_aging) successful
//!    pops a waiting entry gains one priority level, so a low-priority
//!    job under sustained high-priority load catches up within a
//!    bounded number of queue cycles (`deficit × period` pops) instead
//!    of starving forever.
//! 2. **Fair share** — within one effective priority level, the tenant
//!    that has consumed the least engine work (as accounted in a shared
//!    [`FairShare`] ledger, fed by the pool from `EngineStats` deltas)
//!    pops first. Untagged entries bill to the default tenant.
//! 3. **Submission order** — a monotone sequence number breaks the
//!    remaining ties, so the default priority 0 with one tenant
//!    degrades to plain FIFO.
//!
//! `push` blocks while the queue is at capacity — backpressure reaches
//! the submitting client instead of growing an unbounded backlog.
//! [`JobQueue::close`] starts the drain: pushes fail fast, poppers
//! empty what is queued and then receive `None`; [`JobQueue::drain_now`]
//! instead takes the backlog away from the workers so a cancelling
//! shutdown can fail those jobs without running them.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Error returned by [`JobQueue::push`] after [`JobQueue::close`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue closed")
    }
}

impl std::error::Error for Closed {}

/// Pops a waiting entry must observe before its effective priority
/// rises one level (the default aging period).
pub const DEFAULT_AGING_PERIOD: u64 = 8;

/// Per-tenant cost ledger shared between the pool (writer: charges each
/// finished job's `EngineStats` delta) and the queue (reader: breaks
/// priority ties in favor of the lightest-billed tenant). Costs are
/// cumulative for the ledger's lifetime — fairness is long-run, not
/// per-window.
#[derive(Debug, Default)]
pub struct FairShare {
    ledger: Mutex<HashMap<String, TenantBill>>,
}

/// One tenant's row in the [`FairShare`] ledger.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantBill {
    /// Jobs executed on behalf of the tenant.
    pub jobs: u64,
    /// Accumulated engine cost ([`engine::EngineStats::cost`] deltas).
    pub cost: u64,
}

impl FairShare {
    pub fn new() -> FairShare {
        FairShare::default()
    }

    /// Bill `cost` units (and one job) to `tenant`. `None` bills the
    /// default tenant.
    pub fn charge(&self, tenant: Option<&str>, cost: u64) {
        let mut ledger = self.ledger.lock().unwrap();
        let bill = ledger.entry(tenant.unwrap_or("").to_string()).or_default();
        bill.jobs += 1;
        bill.cost = bill.cost.saturating_add(cost);
    }

    /// The tenant's accumulated cost (0 if never billed).
    pub fn cost(&self, tenant: Option<&str>) -> u64 {
        self.ledger
            .lock()
            .unwrap()
            .get(tenant.unwrap_or(""))
            .map(|b| b.cost)
            .unwrap_or(0)
    }

    /// All rows, sorted by tenant name (for the `stats` op).
    pub fn snapshot(&self) -> Vec<(String, TenantBill)> {
        let mut rows: Vec<(String, TenantBill)> = self
            .ledger
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

struct Entry<T> {
    priority: i64,
    seq: u64,
    /// Value of the queue's pop counter when this entry arrived; the
    /// difference to the current counter is the entry's age in cycles.
    born_at_pop: u64,
    tenant: Option<String>,
    item: T,
}

impl<T> Entry<T> {
    fn effective_priority(&self, pops: u64, aging_period: u64) -> i64 {
        if aging_period == 0 {
            return self.priority;
        }
        let age = pops.saturating_sub(self.born_at_pop) / aging_period;
        self.priority
            .saturating_add(age.min(i64::MAX as u64) as i64)
    }
}

struct State<T> {
    entries: Vec<Entry<T>>,
    next_seq: u64,
    /// Successful pops so far — the aging clock.
    pops: u64,
    closed: bool,
}

/// See the module docs.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    aging_period: u64,
    fair: Option<std::sync::Arc<FairShare>>,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap ≥ 1` queued items, with the
    /// default aging period and no fair-share ledger.
    pub fn bounded(cap: usize) -> JobQueue<T> {
        assert!(cap >= 1, "queue capacity must be at least 1");
        JobQueue {
            state: Mutex::new(State {
                entries: Vec::new(),
                next_seq: 0,
                pops: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            aging_period: DEFAULT_AGING_PERIOD,
            fair: None,
        }
    }

    /// Set the aging period (pops per priority level gained while
    /// waiting); `0` disables aging entirely.
    pub fn with_aging(mut self, period: u64) -> JobQueue<T> {
        self.aging_period = period;
        self
    }

    /// Attach a fair-share ledger consulted to break priority ties.
    pub fn with_fair_share(mut self, fair: std::sync::Arc<FairShare>) -> JobQueue<T> {
        self.fair = Some(fair);
        self
    }

    /// Enqueue an untagged item (bills/ranks as the default tenant).
    pub fn push(&self, item: T, priority: i64) -> Result<(), Closed> {
        self.push_tagged(item, priority, None)
    }

    /// Enqueue an item on behalf of `tenant`, blocking while the queue
    /// is full. Fails with [`Closed`] once [`close`](JobQueue::close)
    /// has been called (also when the call was already blocked at that
    /// moment).
    pub fn push_tagged(&self, item: T, priority: i64, tenant: Option<&str>) -> Result<(), Closed> {
        let mut st = self.state.lock().unwrap();
        while !st.closed && st.entries.len() >= self.cap {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return Err(Closed);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let born_at_pop = st.pops;
        st.entries.push(Entry {
            priority,
            seq,
            born_at_pop,
            tenant: tenant.map(str::to_string),
            item,
        });
        self.not_empty.notify_one();
        Ok(())
    }

    /// Index of the entry that should pop next: highest effective
    /// priority, then lightest-billed tenant, then earliest submission.
    fn select(&self, st: &State<T>) -> Option<usize> {
        let mut best: Option<(usize, i64, u64, u64)> = None;
        for (i, e) in st.entries.iter().enumerate() {
            let eff = e.effective_priority(st.pops, self.aging_period);
            let cost = match &self.fair {
                Some(fair) => fair.cost(e.tenant.as_deref()),
                None => 0,
            };
            let better = match best {
                None => true,
                Some((_, b_eff, b_cost, b_seq)) => {
                    (eff, std::cmp::Reverse(cost), std::cmp::Reverse(e.seq))
                        > (b_eff, std::cmp::Reverse(b_cost), std::cmp::Reverse(b_seq))
                }
            };
            if better {
                best = Some((i, eff, cost, e.seq));
            }
        }
        best.map(|(i, ..)| i)
    }

    /// Dequeue the best entry (see the module docs for the order),
    /// blocking while the queue is empty. Returns `None` once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(i) = self.select(&st) {
                let entry = st.entries.swap_remove(i);
                st.pops += 1;
                self.not_full.notify_one();
                return Some(entry.item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Stop admitting new items; wake every blocked `push` (to fail) and
    /// `pop` (to drain). Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Remove and return everything queued, in pop order. Used by the
    /// cancelling shutdown to report queued-but-unstarted jobs without
    /// running them.
    pub fn drain_now(&self) -> Vec<T> {
        let mut st = self.state.lock().unwrap();
        let mut out = Vec::with_capacity(st.entries.len());
        while let Some(i) = self.select(&st) {
            out.push(st.entries.swap_remove(i).item);
        }
        self.not_full.notify_all();
        out
    }

    /// Number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_one_priority() {
        let q = JobQueue::bounded(8);
        for i in 0..5 {
            q.push(i, 0).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn higher_priority_pops_first() {
        let q = JobQueue::bounded(8);
        q.push("low", -1).unwrap();
        q.push("mid", 0).unwrap();
        q.push("high", 7).unwrap();
        q.push("mid2", 0).unwrap();
        q.close();
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec!["high", "mid", "mid2", "low"]);
    }

    #[test]
    fn push_blocks_at_capacity_until_a_pop() {
        let q = Arc::new(JobQueue::bounded(1));
        q.push(1, 0).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2, 0));
        // Give the pusher time to block, then make room.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "second push must be blocked, not queued");
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_fails_pushes_and_drains_pops() {
        let q = Arc::new(JobQueue::bounded(4));
        q.push(1, 0).unwrap();
        q.close();
        assert_eq!(q.push(2, 0), Err(Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_a_blocked_pop() {
        let q = Arc::new(JobQueue::<i32>::bounded(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn drain_now_empties_the_backlog() {
        let q = JobQueue::bounded(8);
        q.push("a", 0).unwrap();
        q.push("b", 5).unwrap();
        assert_eq!(q.drain_now(), vec!["b", "a"]);
        assert!(q.is_empty());
    }

    #[test]
    fn aging_prevents_starvation_under_sustained_high_priority_load() {
        // One low-priority job against an endless stream of
        // high-priority jobs (one new arrival per pop — the queue never
        // runs dry). With aging period 4 and a deficit of 5 levels the
        // low job must surface within roughly (deficit + 1) × period
        // cycles — recent high arrivals age a little too, so the bound
        // is slightly past deficit × period = 20. Without aging it
        // would wait forever.
        let q = JobQueue::bounded(64).with_aging(4);
        q.push("low", 0).unwrap();
        for _ in 0..4 {
            q.push_tagged("high", 5, None).unwrap();
        }
        let mut cycles = 0u64;
        loop {
            let popped = q.pop().unwrap();
            cycles += 1;
            if popped == "low" {
                break;
            }
            assert!(
                cycles <= 32,
                "low-priority job starved past the aging bound"
            );
            // Sustained load: replace what we consumed.
            q.push("high", 5).unwrap();
        }
        assert!(
            (21..=32).contains(&cycles),
            "low popped after {cycles} cycles; expected within the \
             (deficit + 1) × period = 24-cycle band plus tie-breaks"
        );
    }

    #[test]
    fn aging_disabled_keeps_strict_priority_order() {
        let q = JobQueue::bounded(32).with_aging(0);
        q.push("low", -1).unwrap();
        for _ in 0..20 {
            q.push("high", 1).unwrap();
        }
        for _ in 0..20 {
            assert_eq!(q.pop(), Some("high"));
        }
        assert_eq!(q.pop(), Some("low"));
    }

    #[test]
    fn fair_share_breaks_ties_toward_the_lightest_tenant() {
        let fair = Arc::new(FairShare::new());
        fair.charge(Some("heavy"), 1_000);
        fair.charge(Some("light"), 10);
        let q = JobQueue::bounded(8).with_fair_share(Arc::clone(&fair));
        q.push_tagged("h1", 0, Some("heavy")).unwrap();
        q.push_tagged("l1", 0, Some("light")).unwrap();
        q.push_tagged("h2", 0, Some("heavy")).unwrap();
        q.push_tagged("l2", 0, Some("light")).unwrap();
        q.close();
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec!["l1", "l2", "h1", "h2"],
            "equal priority must favor the lightest-billed tenant"
        );
    }

    #[test]
    fn fair_share_never_overrides_priority() {
        let fair = Arc::new(FairShare::new());
        fair.charge(Some("heavy"), 1_000_000);
        let q = JobQueue::bounded(8).with_fair_share(Arc::clone(&fair));
        q.push_tagged("urgent-heavy", 5, Some("heavy")).unwrap();
        q.push_tagged("idle-light", 0, Some("light")).unwrap();
        assert_eq!(q.pop(), Some("urgent-heavy"));
    }

    #[test]
    fn fair_share_ledger_accumulates_and_snapshots() {
        let fair = FairShare::new();
        fair.charge(Some("a"), 5);
        fair.charge(Some("a"), 7);
        fair.charge(None, 3);
        assert_eq!(fair.cost(Some("a")), 12);
        assert_eq!(fair.cost(None), 3);
        assert_eq!(fair.cost(Some("ghost")), 0);
        let rows = fair.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "");
        assert_eq!(rows[0].1.jobs, 1);
        assert_eq!(rows[1].0, "a");
        assert_eq!(rows[1].1.jobs, 2);
        assert_eq!(rows[1].1.cost, 12);
    }
}
