//! A bounded, blocking priority queue (`Mutex` + two `Condvar`s +
//! `BinaryHeap`): the admission-control stage between the protocol
//! front-end and the worker pool.
//!
//! Higher priority pops first; within one priority level jobs pop in
//! submission order (a monotone sequence number breaks ties), so the
//! default priority 0 degrades to plain FIFO. `push` blocks while the
//! queue is at capacity — backpressure reaches the submitting client
//! instead of growing an unbounded backlog. [`JobQueue::close`] starts
//! the drain: pushes fail fast, poppers empty what is queued and then
//! receive `None`; [`JobQueue::drain_now`] instead takes the backlog
//! away from the workers so a cancelling shutdown can fail those jobs
//! without running them.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Error returned by [`JobQueue::push`] after [`JobQueue::close`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue closed")
    }
}

impl std::error::Error for Closed {}

struct Entry<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then *lower* sequence number
        // (earlier submission) first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// See the module docs.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap ≥ 1` queued items.
    pub fn bounded(cap: usize) -> JobQueue<T> {
        assert!(cap >= 1, "queue capacity must be at least 1");
        JobQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// Enqueue an item, blocking while the queue is full. Fails with
    /// [`Closed`] once [`close`](JobQueue::close) has been called (also
    /// when the call was already blocked at that moment).
    pub fn push(&self, item: T, priority: i64) -> Result<(), Closed> {
        let mut st = self.state.lock().unwrap();
        while !st.closed && st.heap.len() >= self.cap {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return Err(Closed);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(Entry {
            priority,
            seq,
            item,
        });
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue the highest-priority item, blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(entry) = st.heap.pop() {
                self.not_full.notify_one();
                return Some(entry.item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Stop admitting new items; wake every blocked `push` (to fail) and
    /// `pop` (to drain). Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Remove and return everything queued, in pop order. Used by the
    /// cancelling shutdown to report queued-but-unstarted jobs without
    /// running them.
    pub fn drain_now(&self) -> Vec<T> {
        let mut st = self.state.lock().unwrap();
        let mut out = Vec::with_capacity(st.heap.len());
        while let Some(entry) = st.heap.pop() {
            out.push(entry.item);
        }
        self.not_full.notify_all();
        out
    }

    /// Number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_one_priority() {
        let q = JobQueue::bounded(8);
        for i in 0..5 {
            q.push(i, 0).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn higher_priority_pops_first() {
        let q = JobQueue::bounded(8);
        q.push("low", -1).unwrap();
        q.push("mid", 0).unwrap();
        q.push("high", 7).unwrap();
        q.push("mid2", 0).unwrap();
        q.close();
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec!["high", "mid", "mid2", "low"]);
    }

    #[test]
    fn push_blocks_at_capacity_until_a_pop() {
        let q = Arc::new(JobQueue::bounded(1));
        q.push(1, 0).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2, 0));
        // Give the pusher time to block, then make room.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "second push must be blocked, not queued");
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_fails_pushes_and_drains_pops() {
        let q = Arc::new(JobQueue::bounded(4));
        q.push(1, 0).unwrap();
        q.close();
        assert_eq!(q.push(2, 0), Err(Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_a_blocked_pop() {
        let q = Arc::new(JobQueue::<i32>::bounded(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn drain_now_empties_the_backlog() {
        let q = JobQueue::bounded(8);
        q.push("a", 0).unwrap();
        q.push("b", 5).unwrap();
        assert_eq!(q.drain_now(), vec!["b", "a"]);
        assert!(q.is_empty());
    }
}
