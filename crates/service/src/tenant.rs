//! The tenant layer: one [`Engine`] (memo caches, lineage, statistics)
//! plus one [`Residents`] registry per tenant, so independent customers
//! sharing a server never see each other's verdicts, resident databases,
//! or lineage edges.
//!
//! A [`TenantRegistry`] holds the *default* tenant (requests without a
//! `tenant` field — also the engine the CLI and the in-process tests
//! hand in) pinned for the registry's lifetime, plus a size-capped LRU
//! of *named* tenants. Checking out a tenant past the capacity
//! **snapshots then evicts** the coldest named tenant: its verdict
//! tables and lineage go through [`Engine::save`] and its residents are
//! serialized to `residents.db`, all under `<cache-dir>/<tenant>/`, so
//! the next checkout warm-starts from disk ([`Engine::load`] reports
//! the imports as `restored_entries`, and re-queries land as cache
//! hits). Without a cache directory eviction is cold — the caches are
//! simply dropped.
//!
//! Tenant ids double as snapshot directory names, so they are
//! validated: 1–64 chars, first alphanumeric, rest `[A-Za-z0-9._-]`.
//! The default tenant persists under the reserved `_default` directory,
//! which no valid tenant id can collide with.

use crate::task::{load_training, Residents};
use engine::Engine;
use relational::spec::DatabaseSpec;
use serde::bytes::{write_atomic, ByteReader, ByteWriter};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic tag of a tenant's serialized resident registry.
const RESIDENTS_MAGIC: [u8; 8] = *b"CQSEPRD1";
/// File holding a tenant's residents inside its snapshot directory.
const RESIDENTS_FILE: &str = "residents.db";
/// Snapshot directory of the default (unnamed) tenant.
const DEFAULT_TENANT_DIR: &str = "_default";

/// How a registry builds and persists tenant engines.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// Maximum *named* tenants held in memory at once (≥ 1); the
    /// default tenant is pinned and does not count.
    pub capacity: usize,
    /// Snapshot root: tenant state persists under `<cache_dir>/<id>/`.
    /// `None` disables persistence — eviction discards the caches.
    pub cache_dir: Option<PathBuf>,
    /// Per-engine solver parallelism cap (`None`: adaptive default).
    pub threads: Option<usize>,
    /// Build engines with memo caches (the normal mode).
    pub use_cache: bool,
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            capacity: 8,
            cache_dir: None,
            threads: None,
            use_cache: true,
        }
    }
}

/// A checked-out tenant: the engine to run under and the resident
/// registry to resolve names against. Cheap clones of shared handles —
/// eviction while a job holds one is safe (the engine stays alive via
/// the `Arc`; only the registry's slot is released).
#[derive(Clone)]
pub struct TenantHandle {
    pub engine: Arc<Engine>,
    pub residents: Residents,
}

struct TenantEntry {
    handle: TenantHandle,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    named: HashMap<String, TenantEntry>,
    /// Monotone LRU clock (bumped per checkout).
    clock: u64,
    evictions: u64,
    /// Checkouts that imported at least one snapshot entry.
    warm_restores: u64,
    /// Total entries imported across all warm restores.
    restored_entries: u64,
}

/// See the module docs.
pub struct TenantRegistry {
    default_handle: TenantHandle,
    config: TenantConfig,
    inner: Mutex<Inner>,
}

/// Check a tenant id against the wire rules (also directory-safety:
/// ids name snapshot directories, so no separators, no leading dots,
/// and the `_default` reservation falls out of the first-char rule).
pub fn validate_tenant_id(id: &str) -> Result<(), String> {
    let bad = |why: &str| {
        Err(format!(
            "bad tenant id {id:?}: {why} (1-64 chars, first alphanumeric, rest [A-Za-z0-9._-])"
        ))
    };
    if id.is_empty() || id.len() > 64 {
        return bad("length out of range");
    }
    let mut chars = id.chars();
    let first = chars.next().unwrap();
    if !first.is_ascii_alphanumeric() {
        return bad("first char must be alphanumeric");
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')) {
        return bad("illegal character");
    }
    Ok(())
}

impl TenantRegistry {
    /// A registry that builds tenant engines from `config`. The default
    /// tenant's engine is built the same way and, when a cache
    /// directory is set, warm-started from `<cache_dir>/_default/`.
    pub fn new(config: TenantConfig) -> TenantRegistry {
        assert!(config.capacity >= 1, "tenant capacity must be at least 1");
        let handle = TenantHandle {
            engine: Arc::new(build_engine(&config)),
            residents: Residents::new(),
        };
        if let Some(dir) = config.cache_dir.as_ref() {
            load_tenant(&dir.join(DEFAULT_TENANT_DIR), &handle);
        }
        TenantRegistry {
            default_handle: handle,
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Wrap an existing engine + residents as the default tenant (the
    /// compatibility path for [`Pool::new`](crate::pool::Pool) callers
    /// that manage their own engine). Named tenants still work, built
    /// from the default [`TenantConfig`] without persistence.
    pub fn single(engine: Arc<Engine>, residents: Residents) -> TenantRegistry {
        TenantRegistry {
            default_handle: TenantHandle { engine, residents },
            config: TenantConfig::default(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The default tenant's engine (stats reporting around a batch).
    pub fn default_engine(&self) -> &Arc<Engine> {
        &self.default_handle.engine
    }

    /// Check out a tenant's engine + residents, creating (and, if a
    /// snapshot exists, warm-restoring) the tenant on first use and
    /// bumping its LRU slot. May snapshot-then-evict the coldest other
    /// named tenant to stay within capacity. `None` is the pinned
    /// default tenant.
    pub fn checkout(&self, tenant: Option<&str>) -> Result<TenantHandle, String> {
        let id = match tenant {
            None => return Ok(self.default_handle.clone()),
            Some(id) => id,
        };
        validate_tenant_id(id)?;
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.named.get_mut(id) {
            entry.last_used = clock;
            return Ok(entry.handle.clone());
        }
        // Cold checkout: build, warm-start from disk if possible.
        let handle = TenantHandle {
            engine: Arc::new(build_engine(&self.config)),
            residents: Residents::new(),
        };
        if let Some(dir) = self.tenant_dir(id) {
            let restored = load_tenant(&dir, &handle);
            if restored > 0 {
                inner.warm_restores += 1;
                inner.restored_entries += restored;
            }
        }
        inner.named.insert(
            id.to_string(),
            TenantEntry {
                handle: handle.clone(),
                last_used: clock,
            },
        );
        while inner.named.len() > self.config.capacity {
            let coldest = inner
                .named
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            let entry = inner.named.remove(&coldest).unwrap();
            inner.evictions += 1;
            if let Some(dir) = self.tenant_dir(&coldest) {
                if let Err(e) = save_tenant(&dir, &entry.handle) {
                    eprintln!("cqsep-serve: tenant {coldest:?} snapshot failed: {e}");
                }
            }
        }
        Ok(handle)
    }

    /// Snapshot every resident tenant (default included) to the cache
    /// directory. No-op without one. Returns the tenants saved.
    pub fn snapshot_all(&self) -> std::io::Result<usize> {
        let Some(root) = self.config.cache_dir.as_ref() else {
            return Ok(0);
        };
        save_tenant(&root.join(DEFAULT_TENANT_DIR), &self.default_handle)?;
        let mut saved = 1;
        let inner = self.inner.lock().unwrap();
        for (id, entry) in inner.named.iter() {
            save_tenant(&root.join(id), &entry.handle)?;
            saved += 1;
        }
        Ok(saved)
    }

    /// Named tenants currently resident in memory.
    pub fn resident_tenants(&self) -> usize {
        self.inner.lock().unwrap().named.len()
    }

    /// Snapshot-then-evict cycles so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    /// Cold checkouts that found a snapshot on disk.
    pub fn warm_restores(&self) -> u64 {
        self.inner.lock().unwrap().warm_restores
    }

    /// Total snapshot entries imported across all warm restores.
    pub fn restored_entries(&self) -> u64 {
        self.inner.lock().unwrap().restored_entries
    }

    fn tenant_dir(&self, id: &str) -> Option<PathBuf> {
        self.config.cache_dir.as_ref().map(|root| root.join(id))
    }
}

fn build_engine(config: &TenantConfig) -> Engine {
    let mut engine = Engine::new();
    if let Some(n) = config.threads {
        engine = engine.with_threads(n);
    }
    if !config.use_cache {
        engine = engine.without_cache();
    }
    engine
}

/// Persist one tenant's engine caches and residents under `dir`.
fn save_tenant(dir: &Path, handle: &TenantHandle) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    handle.engine.save(dir)?;
    let mut w = ByteWriter::with_magic(&RESIDENTS_MAGIC);
    let entries = handle.residents.entries();
    w.u32(entries.len() as u32);
    for (name, train) in &entries {
        w.str(name);
        w.str(&DatabaseSpec::from_database(&train.db, Some(&train.labeling)).to_text());
    }
    write_atomic(&dir.join(RESIDENTS_FILE), &w.finish())
}

/// Warm-start one tenant from `dir`, returning how many entries were
/// imported (verdict-table entries + lineage edges + residents).
/// Missing or corrupt files are a cold start, not an error.
fn load_tenant(dir: &Path, handle: &TenantHandle) -> u64 {
    let mut restored = match handle.engine.load(dir) {
        Ok(summary) => summary.total(),
        Err(_) => 0,
    };
    restored += load_residents(&dir.join(RESIDENTS_FILE), &handle.residents).unwrap_or(0);
    restored
}

/// Decode a residents file into `residents`; all-or-nothing like every
/// other persisted table (`None` imports nothing).
fn load_residents(path: &Path, residents: &Residents) -> Option<u64> {
    let bytes = std::fs::read(path).ok()?;
    let mut r = ByteReader::with_magic(&bytes, &RESIDENTS_MAGIC)?;
    let count = r.u32()?;
    // The count is untrusted input: never allocate by it up front (a
    // corrupt header would ask for gigabytes); each iteration's reads
    // are bounds-checked, so a lying count just fails below.
    let mut parsed = Vec::new();
    for _ in 0..count {
        let name = r.str()?;
        let train = load_training(&r.str()?).ok()?;
        parsed.push((name, train));
    }
    if !r.finished() {
        return None;
    }
    let imported = parsed.len() as u64;
    for (name, train) in parsed {
        residents.insert(&name, train);
    }
    Some(imported)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRAIN: &str = "rel E/2\nfact E(a,b)\nentity a +\nentity b -\n";

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqsep_tenants_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tenant_ids_are_validated() {
        for ok in ["a", "acme", "t-1", "A.b_c", "x9"] {
            assert!(validate_tenant_id(ok).is_ok(), "{ok}");
        }
        for bad in [
            "",
            ".",
            "..",
            "_default",
            "-x",
            "a/b",
            "a b",
            "ü",
            &"x".repeat(65),
        ] {
            assert!(validate_tenant_id(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn default_tenant_is_pinned_and_shared() {
        let registry = TenantRegistry::new(TenantConfig::default());
        let a = registry.checkout(None).unwrap();
        let b = registry.checkout(None).unwrap();
        assert!(Arc::ptr_eq(&a.engine, &b.engine));
        assert!(Arc::ptr_eq(&a.engine, registry.default_engine()));
        assert_eq!(registry.resident_tenants(), 0);
    }

    #[test]
    fn named_tenants_get_distinct_engines_and_residents() {
        let registry = TenantRegistry::new(TenantConfig::default());
        let a = registry.checkout(Some("a")).unwrap();
        let b = registry.checkout(Some("b")).unwrap();
        assert!(!Arc::ptr_eq(&a.engine, &b.engine));
        a.residents
            .insert("t", crate::task::load_training(TRAIN).unwrap());
        assert!(b.residents.get("t").is_none(), "residents are per-tenant");
        // A re-checkout sees the same handle.
        let a2 = registry.checkout(Some("a")).unwrap();
        assert!(Arc::ptr_eq(&a.engine, &a2.engine));
        assert!(a2.residents.get("t").is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_and_snapshots_round_trip() {
        let dir = tmp_dir("lru");
        let config = TenantConfig {
            capacity: 2,
            cache_dir: Some(dir.clone()),
            ..TenantConfig::default()
        };
        let registry = TenantRegistry::new(config);
        let t1 = registry.checkout(Some("t1")).unwrap();
        t1.residents
            .insert("db", crate::task::load_training(TRAIN).unwrap());
        // Do real engine work so the snapshot has verdict entries.
        let check = crate::task::Task::Check {
            train: TRAIN.to_string(),
            classes: vec![crate::task::ClassSpec::Cq],
        };
        let outcome = crate::task::execute_res_in(&t1.engine.ctx(), &t1.residents, &check);
        assert!(outcome.is_success(), "{outcome:?}");
        registry.checkout(Some("t2")).unwrap();
        assert_eq!(registry.resident_tenants(), 2);
        assert_eq!(registry.evictions(), 0);
        // Third tenant: t1 (coldest) is snapshotted and evicted.
        registry.checkout(Some("t3")).unwrap();
        assert_eq!(registry.resident_tenants(), 2);
        assert_eq!(registry.evictions(), 1);
        assert!(dir.join("t1").join(RESIDENTS_FILE).exists());
        // Re-checkout warm-restores residents (and any cache entries).
        let t1b = registry.checkout(Some("t1")).unwrap();
        assert!(
            t1b.residents.get("db").is_some(),
            "residents survive the evict/restore round trip"
        );
        assert!(registry.warm_restores() >= 1);
        assert!(registry.restored_entries() >= 1);
        // The restored verdict tables actually answer: replaying the
        // same check on the fresh engine must hit the restored caches
        // rather than re-derive everything.
        let before = t1b.engine.stats();
        let replay = crate::task::execute_res_in(&t1b.engine.ctx(), &t1b.residents, &check);
        assert!(replay.is_success(), "{replay:?}");
        let delta = t1b.engine.stats().since(&before);
        assert!(
            delta.hom.cache_hits + delta.game.cache_hits > 0,
            "warm-restored engine must serve cache hits: {delta:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_residents_file_is_a_cold_start() {
        let dir = tmp_dir("corrupt");
        std::fs::write(dir.join(RESIDENTS_FILE), b"CQSEPRD1garbage").unwrap();
        let residents = Residents::new();
        assert_eq!(load_residents(&dir.join(RESIDENTS_FILE), &residents), None);
        assert!(residents.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
