//! The worker pool: N threads pulling jobs from a bounded priority
//! [`JobQueue`] and executing each under the [`Ctx`](engine::Ctx) of
//! *its tenant's* engine — jobs without a tenant share the registry's
//! default engine (one set of memo tables — later jobs reuse verdicts
//! proved by earlier ones), jobs with one run fully isolated.
//!
//! Every finished job's `EngineStats` delta is billed to its tenant in
//! the shared [`FairShare`] ledger, which the queue consults to break
//! priority ties toward the lightest tenant; the queue's priority aging
//! keeps low-priority jobs from starving under sustained load.
//!
//! Every in-flight job's [`Interrupt`] handle is registered in a shared
//! table while it runs; the cancelling shutdown path walks the table and
//! trips every handle, so running solvers unwind with
//! `Interrupted { reason: Cancelled, .. }` at their next check instead
//! of running to completion. Exactly one [`Response`] is delivered per
//! submitted job — completed, interrupted, failed, or (for jobs still
//! queued when a cancelling shutdown starts) cancelled-before-start.

use crate::queue::{Closed, FairShare, JobQueue};
use crate::task::{execute_res_in, Outcome, Residents, Task};
use crate::tenant::{TenantHandle, TenantRegistry};
use engine::{Engine, Interrupted};
use interrupt::{Interrupt, Reason};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A submitted unit of work: the task plus its scheduling envelope.
#[derive(Clone, Debug)]
pub struct Job {
    /// Caller-chosen correlation id, echoed in the [`Response`].
    pub id: u64,
    pub task: Task,
    /// Per-task budget; `None` runs unbounded (still cancellable).
    pub timeout: Option<Duration>,
    /// Higher pops first; default 0 is FIFO (see the queue's aging).
    pub priority: i64,
    /// Tenant to run as; `None` is the shared default tenant.
    pub tenant: Option<String>,
}

/// The terminal report for one [`Job`].
#[derive(Clone, Debug)]
pub struct Response {
    pub id: u64,
    pub outcome: Outcome,
    /// Wall-clock execution time (zero for jobs cancelled while queued).
    pub elapsed: Duration,
}

type QueuedJob = (Job, Sender<Response>);

/// Executed-job counters, by terminal status (the `stats` op's source).
#[derive(Debug, Default)]
pub struct PoolCounters {
    pub executed: AtomicU64,
    pub ok: AtomicU64,
    pub interrupted: AtomicU64,
    pub failed: AtomicU64,
}

/// See the module docs.
pub struct Pool {
    tenants: Arc<TenantRegistry>,
    queue: Arc<JobQueue<QueuedJob>>,
    fair: Arc<FairShare>,
    counters: Arc<PoolCounters>,
    inflight: Arc<Mutex<HashMap<u64, Interrupt>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Spawn `workers ≥ 1` threads over a queue admitting `queue_cap`
    /// pending jobs, with a pool-private resident registry.
    pub fn new(engine: Arc<Engine>, workers: usize, queue_cap: usize) -> Pool {
        Pool::with_residents(engine, Residents::new(), workers, queue_cap)
    }

    /// [`Pool::new`] sharing a caller-owned resident registry, so
    /// residents created by `append` jobs outlive the pool (the Unix
    /// socket accept loop keeps one registry across connections).
    pub fn with_residents(
        engine: Arc<Engine>,
        residents: Residents,
        workers: usize,
        queue_cap: usize,
    ) -> Pool {
        Pool::with_tenants(
            Arc::new(TenantRegistry::single(engine, residents)),
            workers,
            queue_cap,
        )
    }

    /// The full multi-tenant form: jobs are routed to per-tenant
    /// engines/residents owned by `tenants`.
    pub fn with_tenants(tenants: Arc<TenantRegistry>, workers: usize, queue_cap: usize) -> Pool {
        assert!(workers >= 1, "need at least one worker");
        let fair = Arc::new(FairShare::new());
        let queue = Arc::new(JobQueue::bounded(queue_cap).with_fair_share(Arc::clone(&fair)));
        let counters = Arc::new(PoolCounters::default());
        let inflight = Arc::new(Mutex::new(HashMap::new()));
        let handles = (0..workers)
            .map(|_| {
                let tenants = Arc::clone(&tenants);
                let queue = Arc::clone(&queue);
                let inflight = Arc::clone(&inflight);
                let fair = Arc::clone(&fair);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    worker_loop(&tenants, &queue, &inflight, &fair, &counters)
                })
            })
            .collect();
        Pool {
            tenants,
            queue,
            fair,
            counters,
            inflight,
            workers: Mutex::new(handles),
        }
    }

    /// The default tenant's engine (for stats reporting around a batch).
    pub fn engine(&self) -> &Arc<Engine> {
        self.tenants.default_engine()
    }

    /// The tenant registry jobs are routed through.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.tenants
    }

    /// The per-tenant cost ledger (for the `stats` op).
    pub fn fair_share(&self) -> &Arc<FairShare> {
        &self.fair
    }

    /// Executed-job counters (for the `stats` op).
    pub fn counters(&self) -> &Arc<PoolCounters> {
        &self.counters
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Submit a job; its [`Response`] will arrive on `reply`. Blocks
    /// while the queue is full; fails once the pool is shutting down.
    pub fn submit(&self, job: Job, reply: Sender<Response>) -> Result<(), Closed> {
        let priority = job.priority;
        let tenant = job.tenant.clone();
        self.queue
            .push_tagged((job, reply), priority, tenant.as_deref())
    }

    /// Trip the interrupt handle of one in-flight job. Returns whether
    /// the id was actually running (queued/finished jobs are not).
    pub fn cancel(&self, id: u64) -> bool {
        match self.inflight.lock().unwrap().get(&id) {
            Some(handle) => {
                handle.cancel();
                true
            }
            None => false,
        }
    }

    /// Stop admitting jobs; workers drain the backlog then exit. Does
    /// not wait — pair with [`Pool::join`].
    pub fn close(&self) {
        self.queue.close();
    }

    /// Cancelling close: stop admitting jobs, report every still-queued
    /// job as cancelled *without running it*, and trip every in-flight
    /// job's handle (the solvers unwind at their next check and report
    /// `Interrupted`). Does not wait — pair with [`Pool::join`]. Safe
    /// to call from a connection thread while other connections still
    /// hold the pool.
    pub fn cancel_all(&self) {
        self.queue.close();
        let engine = self.tenants.default_engine();
        let zero = engine.stats();
        for (job, reply) in self.queue.drain_now() {
            let _ = reply.send(Response {
                id: job.id,
                outcome: Outcome::Interrupted(Interrupted {
                    reason: Reason::Cancelled,
                    partial_stats: Box::new(engine.stats().since(&zero)),
                }),
                elapsed: Duration::ZERO,
            });
        }
        for handle in self.inflight.lock().unwrap().values() {
            handle.cancel();
        }
    }

    /// Join the worker threads (after [`Pool::close`] or
    /// [`Pool::cancel_all`]; blocks until the backlog resolves).
    pub fn join(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in handles {
            let _ = w.join();
        }
    }

    /// Graceful drain: stop admitting jobs, let the workers finish
    /// everything already queued, then join them.
    pub fn shutdown_drain(self) {
        self.close();
        self.join();
    }

    /// Cancelling shutdown: [`Pool::cancel_all`] then join the workers.
    pub fn shutdown_cancel(self) {
        self.cancel_all();
        self.join();
    }
}

fn worker_loop(
    tenants: &TenantRegistry,
    queue: &JobQueue<QueuedJob>,
    inflight: &Mutex<HashMap<u64, Interrupt>>,
    fair: &FairShare,
    counters: &PoolCounters,
) {
    while let Some((job, reply)) = queue.pop() {
        let TenantHandle { engine, residents } = match tenants.checkout(job.tenant.as_deref()) {
            Ok(handle) => handle,
            Err(msg) => {
                counters.executed.fetch_add(1, Ordering::Relaxed);
                counters.failed.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response {
                    id: job.id,
                    outcome: Outcome::Failed(msg),
                    elapsed: Duration::ZERO,
                });
                continue;
            }
        };
        let handle = match job.timeout {
            Some(budget) => Interrupt::with_deadline(budget),
            None => Interrupt::none(),
        };
        inflight.lock().unwrap().insert(job.id, handle.clone());
        let started = Instant::now();
        let before = engine.stats();
        let ctx = engine.ctx_with_interrupt(handle);
        let outcome = execute_res_in(&ctx, &residents, &job.task);
        inflight.lock().unwrap().remove(&job.id);
        fair.charge(
            job.tenant.as_deref(),
            engine.stats().since(&before).cost().max(1),
        );
        counters.executed.fetch_add(1, Ordering::Relaxed);
        match &outcome {
            Outcome::Success(_) => counters.ok.fetch_add(1, Ordering::Relaxed),
            Outcome::Interrupted(_) => counters.interrupted.fetch_add(1, Ordering::Relaxed),
            Outcome::Failed(_) => counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        // A receiver that hung up just discards the report.
        let _ = reply.send(Response {
            id: job.id,
            outcome,
            elapsed: started.elapsed(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ClassSpec;
    use std::sync::mpsc::channel;

    const TRAIN: &str = "\
rel E/2
fact E(a,b)
fact E(b,c)
entity a +
entity b +
entity c -
";

    fn check_job(id: u64) -> Job {
        Job {
            id,
            task: Task::Check {
                train: TRAIN.to_string(),
                classes: vec![ClassSpec::Cq],
            },
            timeout: None,
            priority: 0,
            tenant: None,
        }
    }

    #[test]
    fn jobs_complete_and_correlate_by_id() {
        let pool = Pool::new(Arc::new(Engine::new()), 2, 8);
        let (tx, rx) = channel();
        for id in 0..4 {
            pool.submit(check_job(id), tx.clone()).unwrap();
        }
        drop(tx);
        let mut responses: Vec<Response> = rx.iter().collect();
        responses.sort_by_key(|r| r.id);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.outcome.is_success(), "{:?}", r.outcome);
        }
        assert_eq!(pool.counters().executed.load(Ordering::Relaxed), 4);
        assert_eq!(pool.counters().ok.load(Ordering::Relaxed), 4);
        assert!(
            pool.fair_share().cost(None) >= 4,
            "every job bills at least one cost unit to its tenant"
        );
        pool.shutdown_drain();
    }

    #[test]
    fn zero_timeout_reports_interrupted_not_success() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 4);
        let (tx, rx) = channel();
        let mut job = check_job(9);
        job.timeout = Some(Duration::ZERO);
        pool.submit(job, tx).unwrap();
        let r = rx.recv().unwrap();
        assert_eq!(r.id, 9);
        match r.outcome {
            Outcome::Interrupted(i) => assert!(i.deadline_exceeded()),
            other => panic!("expected Interrupted, got {other:?}"),
        }
        pool.shutdown_drain();
    }

    #[test]
    fn graceful_drain_finishes_queued_jobs() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 16);
        let (tx, rx) = channel();
        for id in 0..6 {
            pool.submit(check_job(id), tx.clone()).unwrap();
        }
        drop(tx);
        pool.shutdown_drain();
        let responses: Vec<Response> = rx.iter().collect();
        assert_eq!(responses.len(), 6);
        assert!(responses.iter().all(|r| r.outcome.is_success()));
    }

    #[test]
    fn cancelling_shutdown_reports_queued_jobs_as_cancelled() {
        // One worker, several queued jobs: at least the backlog must be
        // reported as cancelled-before-start.
        let pool = Pool::new(Arc::new(Engine::new()), 1, 16);
        let (tx, rx) = channel();
        for id in 0..8 {
            pool.submit(check_job(id), tx.clone()).unwrap();
        }
        drop(tx);
        pool.shutdown_cancel();
        let responses: Vec<Response> = rx.iter().collect();
        assert_eq!(responses.len(), 8, "every job gets exactly one response");
        let cancelled = responses
            .iter()
            .filter(|r| {
                matches!(
                    &r.outcome,
                    Outcome::Interrupted(i) if i.reason == Reason::Cancelled
                )
            })
            .count();
        let completed = responses.iter().filter(|r| r.outcome.is_success()).count();
        assert_eq!(cancelled + completed, 8);
        assert!(cancelled >= 1, "the backlog cannot all have run already");
    }

    #[test]
    fn cancel_by_id_only_hits_running_jobs() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 4);
        assert!(!pool.cancel(12345), "unknown id is not in flight");
        pool.shutdown_drain();
    }

    #[test]
    fn tenant_jobs_run_on_isolated_engines() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 8);
        let (tx, rx) = channel();
        let mut job = check_job(1);
        job.tenant = Some("acme".to_string());
        pool.submit(job, tx.clone()).unwrap();
        drop(tx);
        let r = rx.recv().unwrap();
        assert!(r.outcome.is_success(), "{:?}", r.outcome);
        // The work was billed to the tenant, not the default engine.
        assert!(pool.fair_share().cost(Some("acme")) >= 1);
        assert_eq!(pool.fair_share().cost(None), 0);
        let default_stats = pool.engine().stats();
        assert_eq!(
            default_stats.hom.solves, 0,
            "tenant work must not touch the default engine"
        );
        pool.shutdown_drain();
    }

    #[test]
    fn bad_tenant_id_fails_the_job_not_the_pool() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 8);
        let (tx, rx) = channel();
        let mut job = check_job(1);
        job.tenant = Some("../escape".to_string());
        pool.submit(job, tx.clone()).unwrap();
        let r = rx.recv().unwrap();
        match &r.outcome {
            Outcome::Failed(msg) => assert!(msg.contains("bad tenant id"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The pool still serves.
        pool.submit(check_job(2), tx.clone()).unwrap();
        drop(tx);
        let r2 = rx.recv().unwrap();
        assert!(r2.outcome.is_success());
        pool.shutdown_drain();
    }
}
