//! The worker pool: N threads sharing one [`Engine`] (one set of memo
//! tables — later jobs reuse verdicts proved by earlier ones), pulling
//! jobs from a bounded priority [`JobQueue`], executing each under its
//! own [`Ctx`](engine::Ctx) built from the job's timeout.
//!
//! Every in-flight job's [`Interrupt`] handle is registered in a shared
//! table while it runs; the cancelling shutdown path walks the table and
//! trips every handle, so running solvers unwind with
//! `Interrupted { reason: Cancelled, .. }` at their next check instead
//! of running to completion. Exactly one [`Response`] is delivered per
//! submitted job — completed, interrupted, failed, or (for jobs still
//! queued when a cancelling shutdown starts) cancelled-before-start.

use crate::queue::{Closed, JobQueue};
use crate::task::{execute_res_in, Outcome, Residents, Task};
use engine::{Engine, Interrupted};
use interrupt::{Interrupt, Reason};
use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A submitted unit of work: the task plus its scheduling envelope.
#[derive(Clone, Debug)]
pub struct Job {
    /// Caller-chosen correlation id, echoed in the [`Response`].
    pub id: u64,
    pub task: Task,
    /// Per-task budget; `None` runs unbounded (still cancellable).
    pub timeout: Option<Duration>,
    /// Higher pops first; default 0 is FIFO.
    pub priority: i64,
}

/// The terminal report for one [`Job`].
#[derive(Clone, Debug)]
pub struct Response {
    pub id: u64,
    pub outcome: Outcome,
    /// Wall-clock execution time (zero for jobs cancelled while queued).
    pub elapsed: Duration,
}

type QueuedJob = (Job, Sender<Response>);

/// See the module docs.
pub struct Pool {
    engine: Arc<Engine>,
    queue: Arc<JobQueue<QueuedJob>>,
    inflight: Arc<Mutex<HashMap<u64, Interrupt>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn `workers ≥ 1` threads over a queue admitting `queue_cap`
    /// pending jobs, with a pool-private resident registry.
    pub fn new(engine: Arc<Engine>, workers: usize, queue_cap: usize) -> Pool {
        Pool::with_residents(engine, Residents::new(), workers, queue_cap)
    }

    /// [`Pool::new`] sharing a caller-owned resident registry, so
    /// residents created by `append` jobs outlive the pool (the Unix
    /// socket accept loop keeps one registry across connections).
    pub fn with_residents(
        engine: Arc<Engine>,
        residents: Residents,
        workers: usize,
        queue_cap: usize,
    ) -> Pool {
        assert!(workers >= 1, "need at least one worker");
        let queue = Arc::new(JobQueue::bounded(queue_cap));
        let inflight = Arc::new(Mutex::new(HashMap::new()));
        let handles = (0..workers)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let queue = Arc::clone(&queue);
                let inflight = Arc::clone(&inflight);
                let residents = residents.clone();
                std::thread::spawn(move || worker_loop(&engine, &residents, &queue, &inflight))
            })
            .collect();
        Pool {
            engine,
            queue,
            inflight,
            workers: handles,
        }
    }

    /// The shared engine (for stats reporting around a batch).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Submit a job; its [`Response`] will arrive on `reply`. Blocks
    /// while the queue is full; fails once the pool is shutting down.
    pub fn submit(&self, job: Job, reply: Sender<Response>) -> Result<(), Closed> {
        let priority = job.priority;
        self.queue.push((job, reply), priority)
    }

    /// Trip the interrupt handle of one in-flight job. Returns whether
    /// the id was actually running (queued/finished jobs are not).
    pub fn cancel(&self, id: u64) -> bool {
        match self.inflight.lock().unwrap().get(&id) {
            Some(handle) => {
                handle.cancel();
                true
            }
            None => false,
        }
    }

    /// Graceful drain: stop admitting jobs, let the workers finish
    /// everything already queued, then join them.
    pub fn shutdown_drain(self) {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Cancelling shutdown: stop admitting jobs, report every
    /// still-queued job as cancelled *without running it*, trip every
    /// in-flight job's handle (the solvers unwind at their next check
    /// and report `Interrupted`), then join the workers.
    pub fn shutdown_cancel(self) {
        self.queue.close();
        let zero = self.engine.stats();
        for (job, reply) in self.queue.drain_now() {
            let _ = reply.send(Response {
                id: job.id,
                outcome: Outcome::Interrupted(Interrupted {
                    reason: Reason::Cancelled,
                    partial_stats: Box::new(self.engine.stats().since(&zero)),
                }),
                elapsed: Duration::ZERO,
            });
        }
        for handle in self.inflight.lock().unwrap().values() {
            handle.cancel();
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    engine: &Engine,
    residents: &Residents,
    queue: &JobQueue<QueuedJob>,
    inflight: &Mutex<HashMap<u64, Interrupt>>,
) {
    while let Some((job, reply)) = queue.pop() {
        let handle = match job.timeout {
            Some(budget) => Interrupt::with_deadline(budget),
            None => Interrupt::none(),
        };
        inflight.lock().unwrap().insert(job.id, handle.clone());
        let started = Instant::now();
        let ctx = engine.ctx_with_interrupt(handle);
        let outcome = execute_res_in(&ctx, residents, &job.task);
        inflight.lock().unwrap().remove(&job.id);
        // A receiver that hung up just discards the report.
        let _ = reply.send(Response {
            id: job.id,
            outcome,
            elapsed: started.elapsed(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ClassSpec;
    use std::sync::mpsc::channel;

    const TRAIN: &str = "\
rel E/2
fact E(a,b)
fact E(b,c)
entity a +
entity b +
entity c -
";

    fn check_job(id: u64) -> Job {
        Job {
            id,
            task: Task::Check {
                train: TRAIN.to_string(),
                classes: vec![ClassSpec::Cq],
            },
            timeout: None,
            priority: 0,
        }
    }

    #[test]
    fn jobs_complete_and_correlate_by_id() {
        let pool = Pool::new(Arc::new(Engine::new()), 2, 8);
        let (tx, rx) = channel();
        for id in 0..4 {
            pool.submit(check_job(id), tx.clone()).unwrap();
        }
        drop(tx);
        let mut responses: Vec<Response> = rx.iter().collect();
        responses.sort_by_key(|r| r.id);
        assert_eq!(responses.len(), 4);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!(r.outcome.is_success(), "{:?}", r.outcome);
        }
        pool.shutdown_drain();
    }

    #[test]
    fn zero_timeout_reports_interrupted_not_success() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 4);
        let (tx, rx) = channel();
        let mut job = check_job(9);
        job.timeout = Some(Duration::ZERO);
        pool.submit(job, tx).unwrap();
        let r = rx.recv().unwrap();
        assert_eq!(r.id, 9);
        match r.outcome {
            Outcome::Interrupted(i) => assert!(i.deadline_exceeded()),
            other => panic!("expected Interrupted, got {other:?}"),
        }
        pool.shutdown_drain();
    }

    #[test]
    fn graceful_drain_finishes_queued_jobs() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 16);
        let (tx, rx) = channel();
        for id in 0..6 {
            pool.submit(check_job(id), tx.clone()).unwrap();
        }
        drop(tx);
        pool.shutdown_drain();
        let responses: Vec<Response> = rx.iter().collect();
        assert_eq!(responses.len(), 6);
        assert!(responses.iter().all(|r| r.outcome.is_success()));
    }

    #[test]
    fn cancelling_shutdown_reports_queued_jobs_as_cancelled() {
        // One worker, several queued jobs: at least the backlog must be
        // reported as cancelled-before-start.
        let pool = Pool::new(Arc::new(Engine::new()), 1, 16);
        let (tx, rx) = channel();
        for id in 0..8 {
            pool.submit(check_job(id), tx.clone()).unwrap();
        }
        drop(tx);
        pool.shutdown_cancel();
        let responses: Vec<Response> = rx.iter().collect();
        assert_eq!(responses.len(), 8, "every job gets exactly one response");
        let cancelled = responses
            .iter()
            .filter(|r| {
                matches!(
                    &r.outcome,
                    Outcome::Interrupted(i) if i.reason == Reason::Cancelled
                )
            })
            .count();
        let completed = responses.iter().filter(|r| r.outcome.is_success()).count();
        assert_eq!(cancelled + completed, 8);
        assert!(cancelled >= 1, "the backlog cannot all have run already");
    }

    #[test]
    fn cancel_by_id_only_hits_running_jobs() {
        let pool = Pool::new(Arc::new(Engine::new()), 1, 4);
        assert!(!pool.cancel(12345), "unknown id is not in flight");
        pool.shutdown_drain();
    }
}
