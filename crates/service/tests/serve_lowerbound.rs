//! Acceptance test: `cqsep-serve` survives the paper's lower-bound
//! workload under a 1-second per-task budget. The batch must complete
//! (exactly one response per request), tasks that blow the budget must
//! report `interrupted` with the deadline reason, and tasks arriving
//! *after* a timed-out one must still succeed on the same engine — an
//! interrupted solve may not poison the shared memo tables.

use engine::Engine;
use relational::spec::DatabaseSpec;
use relational::TrainingDb;
use service::json::Json;
use service::{serve, ServeOpts};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::lowerbound;

fn spec_text(train: &TrainingDb) -> String {
    DatabaseSpec::from_database(&train.db, Some(&train.labeling)).to_text()
}

fn check_request(id: u64, train: &TrainingDb, classes: &[&str]) -> String {
    let classes = Json::Arr(classes.iter().map(|c| Json::Str(c.to_string())).collect());
    Json::Obj(vec![
        ("id".to_string(), Json::Num(id as f64)),
        ("task".to_string(), Json::Str("check".to_string())),
        ("train".to_string(), Json::Str(spec_text(train))),
        ("classes".to_string(), classes),
    ])
    .to_string()
}

#[test]
fn lowerbound_workload_with_one_second_budget() {
    // The paper's lower-bound families, escalating in size. The larger
    // alternating chains force real work (quadratic fact counts, m
    // entities, every pairwise cover game); whether a given host
    // finishes one inside a second is irrelevant — the protocol
    // guarantees are what is under test.
    let families: Vec<TrainingDb> = vec![
        lowerbound::example_6_2(),
        lowerbound::twin_cycles(3),
        lowerbound::twin_paths(5),
        lowerbound::alternating_paths(4),
        lowerbound::alternating_paths(7),
        lowerbound::alternating_paths(10),
    ];
    let mut lines: Vec<String> = families
        .iter()
        .enumerate()
        .map(|(i, t)| check_request(i as u64 + 1, t, &["cq", "ghw1"]))
        .collect();
    // The sentinel task: arrives after every heavyweight job, must
    // still succeed on the same (possibly partially warmed) engine.
    let sentinel_id = lines.len() as u64 + 1;
    lines.push(check_request(
        sentinel_id,
        &lowerbound::example_6_2(),
        &["cq"],
    ));
    let expected = lines.len();

    let opts = ServeOpts {
        workers: 2,
        queue_cap: 16,
        default_timeout: Some(Duration::from_secs(1)),
    };
    let input = lines.join("\n");
    let mut output = Vec::new();
    let started = Instant::now();
    let summary = serve(
        Arc::new(Engine::new()),
        input.as_bytes(),
        &mut output,
        &opts,
    )
    .unwrap();
    let elapsed = started.elapsed();

    // The batch completes: one response per request, none dropped, and
    // the 1-second budgets bound the total wall clock (generous slack
    // for slow hosts; without deadlines the big chains could run far
    // longer).
    assert_eq!(summary.total(), expected, "one response per request");
    assert_eq!(summary.failed, 0, "no task may fail outright");
    assert!(
        elapsed < Duration::from_secs(30),
        "budgeted batch took {elapsed:?}"
    );

    let responses: Vec<Json> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(responses.len(), expected);

    for resp in &responses {
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        let status = resp.get("status").and_then(Json::as_str).unwrap();
        match status {
            "ok" => {
                let out = resp.get("output").and_then(Json::as_str).unwrap();
                assert!(out.contains("separable"), "id {id}: {out}");
            }
            "interrupted" => {
                assert_eq!(
                    resp.get("reason").and_then(Json::as_str),
                    Some("deadline exceeded"),
                    "id {id}"
                );
                // The partial-stats report rides along.
                let stats = resp.get("stats").and_then(Json::as_str).unwrap();
                assert!(stats.contains("engine stats"), "id {id}: {stats}");
                // A timed-out task must not have consumed much more
                // than its budget.
                let elapsed_s = resp.get("elapsed_s").and_then(Json::as_f64).unwrap();
                assert!(elapsed_s < 10.0, "id {id} overran its budget: {elapsed_s}s");
            }
            other => panic!("id {id}: unexpected status {other:?}"),
        }
    }

    // Subsequent tasks on the same engine still succeed after timeouts.
    let sentinel = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_u64) == Some(sentinel_id))
        .expect("sentinel response");
    assert_eq!(
        sentinel.get("status").and_then(Json::as_str),
        Some("ok"),
        "the easy task after the heavyweights must succeed: {sentinel:?}"
    );
    let out = sentinel.get("output").and_then(Json::as_str).unwrap();
    assert!(out.contains("CQ-separable: true"), "{out}");
}
