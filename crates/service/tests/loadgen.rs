//! Latency-percentile load bench: ≥100 concurrent closed-loop NDJSON
//! clients hammering a 2-shard `cqsep-router`, measuring per-request
//! latency (p50/p99) and saturation throughput, with per-shard
//! forwarded counts proving the rendezvous hash spreads tenants.
//!
//! Results merge into `BENCH_service.json` at the repository root under
//! the `"loadgen"` key (other keys — the task-layer throughput section —
//! are preserved). Debug builds run a small smoke instead and skip the
//! file write: percentile numbers from an unoptimized binary would only
//! churn the benchmark record.

use service::json::{escape, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const TRAIN: &str = "rel E/2\nfact E(a,b)\nfact E(b,c)\nentity a +\nentity b +\nentity c -\n";

fn request_line(id: u64, tenant: &str) -> String {
    format!(
        "{{\"id\":{id},\"task\":\"check\",\"train\":{},\"classes\":[\"cq\"],\"tenant\":{}}}\n",
        escape(TRAIN),
        escape(tenant),
    )
}

fn read_json_line(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    assert!(!line.is_empty(), "router closed the stream early");
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replace `updates` keys in the root-level BENCH_service.json object,
/// preserving every other key (the task-layer bench owns its own).
fn merge_bench_json(path: &str, updates: Vec<(String, Json)>) {
    let mut fields: Vec<(String, Json)> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Obj(fields)) => fields,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    for (key, value) in updates {
        match fields.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key, value)),
        }
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        out.push_str(&format!("  {}: {v}{comma}\n", escape(k)));
    }
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH_service.json");
}

#[test]
fn loadgen_p50_p99_through_two_shard_router() {
    // Debug builds smoke the same path at a fraction of the load.
    let full = !cfg!(debug_assertions);
    let (clients, reqs_per_client) = if full { (100, 20) } else { (12, 4) };
    if !full {
        eprintln!("note: debug build — {clients}-client smoke, BENCH_service.json untouched");
    }

    let mut child = Command::new(env!("CARGO_BIN_EXE_cqsep-router"))
        .args([
            "--shards",
            "2",
            "--serve-bin",
            env!("CARGO_BIN_EXE_cqsep-serve"),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cqsep-router");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("router prints its address");
    let addr: String = first
        .trim()
        .rsplit("listening on ")
        .next()
        .expect("'listening on <addr>' line")
        .to_string();

    // Closed-loop clients: each holds one connection and issues its next
    // request only after the previous answer lands, so concurrency is
    // exactly `clients` and every latency sample includes queueing.
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(&addr).expect("connect to router");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let tenant = format!("t{}", c % 16);
                let mut latencies = Vec::with_capacity(reqs_per_client);
                for r in 0..reqs_per_client {
                    let id = (c as u64) * 10_000 + r as u64 + 1;
                    let line = request_line(id, &tenant);
                    let t0 = Instant::now();
                    writer.write_all(line.as_bytes()).unwrap();
                    writer.flush().unwrap();
                    let resp = read_json_line(&mut reader);
                    latencies.push(t0.elapsed());
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "client {c} response: {resp}"
                    );
                    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(id));
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread panicked"))
        .collect();
    let wall = started.elapsed();
    latencies.sort();

    let total = clients * reqs_per_client;
    assert_eq!(latencies.len(), total);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = total as f64 / wall.as_secs_f64();

    // Per-shard forwarded counts from the router's local stats op: the
    // 16 tenants must rendezvous onto both shards, and every request
    // must be accounted for.
    let control = TcpStream::connect(&addr).expect("connect control");
    control
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(control.try_clone().unwrap());
    let mut writer = control;
    writer.write_all(b"{\"op\":\"stats\",\"id\":1}\n").unwrap();
    writer.flush().unwrap();
    let stats = read_json_line(&mut reader);
    let doc = Json::parse(stats.get("output").and_then(Json::as_str).expect("output"))
        .expect("stats output is JSON");
    assert_eq!(
        doc.get("forwarded").and_then(Json::as_u64),
        Some(total as u64)
    );
    let shard_counts: Vec<u64> = doc
        .get("shards")
        .and_then(Json::as_array)
        .expect("shards")
        .iter()
        .map(|s| s.get("forwarded").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(shard_counts.len(), 2);
    assert!(
        shard_counts.iter().all(|&n| n > 0),
        "rendezvous hash left a shard idle: {shard_counts:?}"
    );

    writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    writer.flush().unwrap();
    drop(writer);
    let deadline = Instant::now() + Duration::from_secs(30);
    while child.try_wait().expect("try_wait").is_none() {
        assert!(Instant::now() < deadline, "router did not exit on shutdown");
        std::thread::sleep(Duration::from_millis(50));
    }

    let ms = |d: Duration| (d.as_secs_f64() * 1e5).round() / 100.0;
    println!(
        "loadgen: {clients} clients x {reqs_per_client} reqs, wall {:.2}s, \
         {throughput:.0} req/s, p50 {:.2}ms, p99 {:.2}ms, shards {shard_counts:?}",
        wall.as_secs_f64(),
        ms(p50),
        ms(p99),
    );

    if full {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let num = |x: f64| Json::Num((x * 100.0).round() / 100.0);
        let loadgen = Json::Obj(vec![
            ("clients".to_string(), Json::Num(clients as f64)),
            (
                "requests_per_client".to_string(),
                Json::Num(reqs_per_client as f64),
            ),
            ("total_requests".to_string(), Json::Num(total as f64)),
            ("shards".to_string(), Json::Num(2.0)),
            ("available_parallelism".to_string(), Json::Num(cores as f64)),
            ("wall_s".to_string(), num(wall.as_secs_f64())),
            ("throughput_req_per_s".to_string(), num(throughput)),
            ("p50_ms".to_string(), num(ms(p50))),
            ("p99_ms".to_string(), num(ms(p99))),
            (
                "per_shard_forwarded".to_string(),
                Json::Arr(shard_counts.iter().map(|&n| Json::Num(n as f64)).collect()),
            ),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
        merge_bench_json(path, vec![("loadgen".to_string(), loadgen)]);
    }
}
