//! Protocol fuzzing: arbitrary, malformed, truncated, and
//! strangely-typed NDJSON through the real parser and the real serve
//! loop. The contract under test: every non-empty request line yields
//! exactly one *typed* response (`ok` / `error` / `interrupted`) — the
//! server never panics, never hangs, and never drops a line silently.

use engine::Engine;
use proptest::prelude::*;
use service::json::Json;
use service::{serve, validate_tenant_id, ServeOpts};
use std::sync::Arc;

const TRAIN: &str = "rel E/2\nfact E(a,b)\nentity a +\nentity b -\n";

/// Arbitrary bytes flattened onto one line (the serve loop frames on
/// newlines, so embedded terminators would split the line and break the
/// one-response-per-line accounting).
fn garbage_line() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " "))
}

/// A well-formed check request.
fn valid_request() -> impl Strategy<Value = String> {
    (1u64..1000).prop_map(|id| {
        format!(
            "{{\"id\":{id},\"task\":\"check\",\"train\":{},\"classes\":[\"cq\"]}}",
            service::json::escape(TRAIN)
        )
    })
}

/// A well-formed request chopped mid-byte: must parse-fail cleanly.
fn truncated_request() -> impl Strategy<Value = String> {
    (valid_request(), 0usize..80).prop_map(|(full, cut)| {
        let cut = cut.min(full.len().saturating_sub(1));
        full[..cut].to_string()
    })
}

/// Structurally valid JSON with adversarial field types and values.
fn odd_request() -> impl Strategy<Value = String> {
    let task = prop_oneof![
        Just("\"check\"".to_string()),
        Just("\"relabel\"".to_string()),
        Just("\"evaluate\"".to_string()),
        Just("\"no-such-task\"".to_string()),
        Just("17".to_string()),
        Just("null".to_string()),
    ];
    let timeout = prop_oneof![
        Just("-1".to_string()),
        Just("1e308".to_string()),
        Just("\"soon\"".to_string()),
        Just("0.001".to_string()),
        Just("[]".to_string()),
    ];
    let priority = prop_oneof![
        Just("0.5".to_string()),
        Just("-9".to_string()),
        Just("\"high\"".to_string()),
        Just("99999999999999999999".to_string()),
    ];
    (task, timeout, priority, 0u64..1000).prop_map(|(t, to, p, id)| {
        format!("{{\"id\":{id},\"task\":{t},\"timeout_secs\":{to},\"priority\":{p}}}")
    })
}

fn any_line() -> BoxedStrategy<String> {
    prop_oneof![
        garbage_line().boxed(),
        truncated_request().boxed(),
        odd_request().boxed(),
        valid_request().boxed(),
    ]
    .boxed()
}

fn run_serve(input: &str) -> (Vec<Json>, service::ServeSummary) {
    let mut output = Vec::new();
    let summary = serve(
        Arc::new(Engine::new()),
        input.as_bytes(),
        &mut output,
        &ServeOpts::default(),
    )
    .expect("in-memory serve cannot fail on io");
    let responses = String::from_utf8(output)
        .expect("responses are UTF-8")
        .lines()
        .map(|l| Json::parse(l).expect("every response line is valid JSON"))
        .collect();
    (responses, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn json_parse_never_panics_and_accepted_values_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(v) = Json::parse(&text) {
            let again = Json::parse(&v.to_string())
                .map_err(|e| format!("reprint of accepted value rejected: {e}"))?;
            prop_assert_eq!(v, again);
        }
    }

    #[test]
    fn every_line_gets_exactly_one_typed_response(lines in proptest::collection::vec(any_line(), 1..10)) {
        let input = lines.join("\n");
        let (responses, summary) = run_serve(&input);
        let expected = lines.iter().filter(|l| !l.trim().is_empty()).count();
        prop_assert_eq!(responses.len(), expected, "one response per non-empty line");
        prop_assert_eq!(summary.total(), expected);
        for resp in &responses {
            let status = resp
                .get("status")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("response without status: {resp}"))?;
            prop_assert!(
                matches!(status, "ok" | "error" | "interrupted"),
                "unexpected status {:?}",
                status
            );
            if status == "error" {
                prop_assert!(
                    resp.get("error").and_then(Json::as_str).is_some(),
                    "error responses carry a message: {}",
                    resp
                );
            }
            prop_assert!(resp.get("id").and_then(Json::as_u64).is_some());
        }
    }

    #[test]
    fn arbitrary_tenant_ids_are_validated_not_trusted(bytes in proptest::collection::vec(any::<u8>(), 0..12)) {
        let tenant = String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " ");
        let line = format!(
            "{{\"id\":1,\"task\":\"check\",\"train\":{},\"classes\":[\"cq\"],\"tenant\":{}}}",
            service::json::escape(TRAIN),
            service::json::escape(&tenant),
        );
        let (responses, summary) = run_serve(&line);
        prop_assert_eq!(responses.len(), 1);
        let status = responses[0].get("status").and_then(Json::as_str);
        match validate_tenant_id(&tenant) {
            Ok(()) => prop_assert_eq!(status, Some("ok"), "valid tenant id must serve: {}", responses[0]),
            Err(_) => {
                prop_assert_eq!(status, Some("error"));
                prop_assert_eq!(summary.failed, 1);
                let msg = responses[0].get("error").and_then(Json::as_str).unwrap_or("");
                prop_assert!(msg.contains("bad tenant id"), "{}", msg);
            }
        }
    }
}
