//! End-to-end tests of the shard router: NDJSON round trips through
//! `cqsep-router` → `cqsep-serve --tcp` worker processes, tenant spread
//! across shards, and crash-restart resend (kill a worker mid-batch,
//! the batch still completes).

use service::json::Json;
use service::shard_for;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TRAIN: &str = "rel E/2\nfact E(a,b)\nfact E(b,c)\nentity a +\nentity b +\nentity c -\n";

/// A running router process plus its captured stdout/stderr streams.
struct RouterUnderTest {
    child: Child,
    addr: String,
    stderr_lines: Arc<Mutex<Vec<String>>>,
}

impl RouterUnderTest {
    fn spawn(shards: usize, extra: &[&str]) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_cqsep-router"));
        cmd.arg("--shards")
            .arg(shards.to_string())
            .arg("--serve-bin")
            .arg(env!("CARGO_BIN_EXE_cqsep-serve"))
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawn cqsep-router");

        let stderr = child.stderr.take().expect("stderr piped");
        let stderr_lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&stderr_lines);
        std::thread::spawn(move || {
            for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });

        let stdout = child.stdout.take().expect("stdout piped");
        let mut first = String::new();
        BufReader::new(stdout)
            .read_line(&mut first)
            .expect("router prints its address");
        let addr = first
            .trim()
            .rsplit("listening on ")
            .next()
            .expect("'listening on <addr>' line")
            .to_string();
        RouterUnderTest {
            child,
            addr,
            stderr_lines,
        }
    }

    /// Wait until a stderr line satisfying `pred` appears; return it.
    fn wait_stderr(&self, what: &str, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(line) = self.stderr_lines.lock().unwrap().iter().find(|l| pred(l)) {
                return line.clone();
            }
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Pid of shard `i`'s *current* worker process, from the supervisor's
    /// `shard {i} up (pid {p}, {addr}, generation {g})` stderr line.
    fn shard_pid(&self, shard: usize, generation: u64) -> u32 {
        let tag = format!("shard {shard} up (pid ");
        let gen_tag = format!("generation {generation})");
        let line = self.wait_stderr(&format!("shard {shard} generation {generation}"), |l| {
            l.contains(&tag) && l.contains(&gen_tag)
        });
        line.split("(pid ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparseable shard-up line: {line}"))
    }

    fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(&self.addr).expect("connect to router");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }
}

impl Drop for RouterUnderTest {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request_line(id: u64, tenant: &str) -> String {
    format!(
        "{{\"id\":{id},\"task\":\"check\",\"train\":{},\"classes\":[\"cq\"],\"tenant\":{}}}\n",
        service::json::escape(TRAIN),
        service::json::escape(tenant),
    )
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    assert!(!line.is_empty(), "router closed the stream early");
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

/// Tenants that rendezvous-hash onto each of the two shards, so the
/// spread assertion is deterministic rather than probabilistic.
fn tenants_for_both_shards() -> Vec<String> {
    let mut per_shard = [Vec::new(), Vec::new()];
    for i in 0.. {
        let t = format!("tenant-{i}");
        let shard = shard_for(&t, 2);
        if per_shard[shard].len() < 3 {
            per_shard[shard].push(t);
        }
        if per_shard.iter().all(|v| v.len() == 3) {
            break;
        }
    }
    per_shard.concat()
}

#[test]
fn round_trip_spreads_tenants_across_shards() {
    let mut router = RouterUnderTest::spawn(2, &[]);
    let (mut reader, mut writer) = router.connect();

    let tenants = tenants_for_both_shards();
    for (i, tenant) in tenants.iter().enumerate() {
        writer
            .write_all(request_line(i as u64 + 1, tenant).as_bytes())
            .unwrap();
    }
    writer.flush().unwrap();

    let mut ok = 0;
    for _ in &tenants {
        let resp = read_response(&mut reader);
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "response: {resp}"
        );
        ok += 1;
    }
    assert_eq!(ok, tenants.len());

    // Router-local stats: every request forwarded, both shards busy.
    writer.write_all(b"{\"op\":\"stats\",\"id\":77}\n").unwrap();
    writer.flush().unwrap();
    let stats = read_response(&mut reader);
    assert_eq!(stats.get("status").and_then(Json::as_str), Some("ok"));
    let doc = Json::parse(stats.get("output").and_then(Json::as_str).expect("output"))
        .expect("stats output is JSON");
    assert_eq!(
        doc.get("forwarded").and_then(Json::as_u64),
        Some(tenants.len() as u64)
    );
    let shards = doc.get("shards").and_then(Json::as_array).expect("shards");
    assert_eq!(shards.len(), 2);
    for shard in shards {
        let forwarded = shard.get("forwarded").and_then(Json::as_u64).unwrap();
        assert_eq!(forwarded, 3, "rendezvous spread: {doc}");
    }

    // Shutdown stops workers and router.
    writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    writer.flush().unwrap();
    drop(writer);
    drop(reader);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if router.child.try_wait().ok().flatten().is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "router did not exit on shutdown");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killed_worker_restarts_and_the_batch_still_completes() {
    let router = RouterUnderTest::spawn(1, &[]);
    let pid = router.shard_pid(0, 1);
    let (mut reader, mut writer) = router.connect();

    // Warm-up proves the shard serves before we shoot it.
    writer
        .write_all(request_line(1, "acme").as_bytes())
        .unwrap();
    writer.flush().unwrap();
    assert_eq!(
        read_response(&mut reader)
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );

    // Queue a batch, then kill the worker while lines are in flight.
    const BATCH: u64 = 24;
    for id in 2..2 + BATCH {
        writer
            .write_all(request_line(id, "acme").as_bytes())
            .unwrap();
    }
    writer.flush().unwrap();
    unsafe {
        libc_kill(pid as i32);
    }

    // The supervisor restarts the shard (generation 2) and the router
    // resends whatever was pending: all 24 answers arrive, exactly once.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..BATCH {
        let resp = read_response(&mut reader);
        let id = resp.get("id").and_then(Json::as_u64).expect("response id");
        assert!(seen.insert(id), "duplicate response id {id}");
        assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "response: {resp}"
        );
    }
    assert_eq!(seen.len(), BATCH as usize);
    router.wait_stderr("restart notice", |l| l.contains("restarting"));
}

/// SIGKILL via the raw syscall so the test needs no extra crates.
unsafe fn libc_kill(pid: i32) {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        kill(pid, 9);
    }
    #[cfg(not(unix))]
    {
        let _ = pid;
        panic!("worker-kill test is unix-only");
    }
}
