//! Regression tests for the delta-routed warm paths. These live in
//! their own integration binary (one process) because they assert on
//! `relational::fingerprint_computations()`, a process-global counter
//! that concurrent tests in a shared binary would perturb — and they
//! serialize against each other through [`COUNTER`] for the same
//! reason.

use engine::Engine;
use relational::Delta;
use service::task::{load_training, run_task_res_in, Residents, Task};
use std::sync::Mutex;

/// Held for the duration of any test that reads the global fingerprint
/// counter, so the two tests here never interleave their measurements.
static COUNTER: Mutex<()> = Mutex::new(());

const NOISY: &str = "rel E/2\nfact E(a,b)\nfact E(b,a)\nentity a +\nentity b -\n";

/// Satellite regression: `Task::Relabel` routes its repair through
/// `Delta::flip_label`, so a second identical request is answered by
/// the lineage registry instead of rehashing the database.
#[test]
fn repeated_relabel_hits_the_registry_without_fingerprint_recomputes() {
    let _serial = COUNTER.lock().unwrap();
    let engine = Engine::new();
    let residents = Residents::new();
    residents.insert("noisy", load_training(NOISY).unwrap());
    let task = Task::Relabel {
        train: String::new(),
        k: 1,
        name: Some("noisy".to_string()),
    };
    let ctx = engine.ctx();

    let fp_start = relational::fingerprint_computations();
    let first = run_task_res_in(&ctx, &residents, &task).unwrap().unwrap();
    let first_cost = relational::fingerprint_computations() - fp_start;
    assert!(first.output.contains("1 disagreement"), "{}", first.output);
    assert!(
        first.output.contains("applied label-only delta"),
        "{}",
        first.output
    );
    assert_eq!(engine.stats().sub.lineage_registry_hits, 0);

    let fp_mid = relational::fingerprint_computations();
    let second = run_task_res_in(&ctx, &residents, &task).unwrap().unwrap();
    let second_cost = relational::fingerprint_computations() - fp_mid;
    assert!(
        second.output.contains("lineage registry hit"),
        "{}",
        second.output
    );
    assert!(engine.stats().sub.lineage_registry_hits >= 1);
    // Both passes pay only for the per-call preorder skeleton; the
    // warm one must not add anything on top — in particular not the
    // child fingerprint of the flip delta (checked exactly below).
    assert!(
        second_cost <= first_cost,
        "second relabel recomputed {second_cost} fingerprints vs {first_cost} cold"
    );
    // Identical report modulo the registry-hit marker.
    assert_eq!(
        first.output.replace(" (lineage registry hit)", ""),
        second.output.replace(" (lineage registry hit)", "")
    );

    // The delta apply itself — the step the registry memoizes — does
    // zero fingerprint work on a repeat: replay the same flip against a
    // fresh copy of the resident and count.
    let flipped = second
        .output
        .lines()
        .find_map(|l| l.strip_prefix("* ").and_then(|r| r.split(' ').next()))
        .expect("the report marks the flipped entity with '*'");
    let mut copy = residents.get("noisy").unwrap();
    let delta = Delta::new().flip_label(flipped);
    let _ = copy.db.fingerprint(); // parent is known before the edit
    let fp_before = relational::fingerprint_computations();
    let receipt = engine.apply_training_delta(&mut copy, &delta).unwrap();
    assert!(receipt.registry_hit, "the task's relabels seeded this edge");
    assert_eq!(
        relational::fingerprint_computations(),
        fp_before,
        "a registry-hit apply must not recompute any fingerprint"
    );
}

/// `Recheck` against a resident is warm across requests: a repeat check
/// with no intervening edit is answered entirely from the caches, and
/// after an `append` the recheck sees the grown database (with the
/// fingerprint edge recorded for cross-database reuse).
#[test]
fn recheck_is_warm_across_requests_and_tracks_appends() {
    let _serial = COUNTER.lock().unwrap();
    let engine = Engine::new();
    let residents = Residents::new();
    let ctx = engine.ctx();
    let base = "rel E/2\nfact E(a,b)\nfact E(b,c)\nentity a +\nentity b +\nentity c -\n";
    run_task_res_in(
        &ctx,
        &residents,
        &Task::Append {
            name: "t".to_string(),
            base: Some(base.to_string()),
            delta: "# no-op birth\n".to_string(),
        },
    )
    .unwrap()
    .unwrap();
    let check = Task::Recheck {
        name: "t".to_string(),
        classes: vec![],
    };
    let cold = run_task_res_in(&ctx, &residents, &check).unwrap().unwrap();
    let after_cold = engine.stats();
    assert!(after_cold.hom.solves + after_cold.game.games_solved > 0);

    // Repeat with no edit: pure exact hits, zero fresh solving.
    let warm = run_task_res_in(&ctx, &residents, &check).unwrap().unwrap();
    assert_eq!(warm.output, cold.output);
    let since = engine.stats().since(&after_cold);
    assert_eq!(since.hom.solves, 0, "repeat recheck must not search");
    assert_eq!(since.game.games_solved, 0, "repeat recheck must not solve");
    assert!(since.hom.cache_hits + since.game.cache_hits > 0);

    // Grow the resident; the recheck reports the new shape and the
    // engine holds the lineage edge for cross-database subsumption.
    run_task_res_in(
        &ctx,
        &residents,
        &Task::Append {
            name: "t".to_string(),
            base: None,
            delta: "add-fact E(c,d)\nadd-entity d -\n".to_string(),
        },
    )
    .unwrap()
    .unwrap();
    let grown = run_task_res_in(&ctx, &residents, &check).unwrap().unwrap();
    assert!(grown.output.contains("4 entities"), "{}", grown.output);
    assert!(grown.output.contains("CQ-separable"), "{}", grown.output);
    assert!(engine.stats().sub.lineage_edges >= 1);
}
