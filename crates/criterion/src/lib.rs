//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — measuring with
//! plain wall-clock medians instead of criterion's statistical machinery.
//! Good enough to compare implementations on one machine; not a
//! replacement for real criterion reports.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&id.0);
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.0);
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Runs the measured closure and records sample times.
pub struct Bencher {
    samples: usize,
    median_secs: Option<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            median_secs: None,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up run, then `samples` timed runs; keep the median.
        std::hint::black_box(f());
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_secs = Some(times[times.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median_secs {
            Some(t) => println!("  {name}: {}", format_secs(t)),
            None => println!("  {name}: no measurement"),
        }
    }
}

fn format_secs(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else if t >= 1e-6 {
        format!("{:.3} µs", t * 1e6)
    } else {
        format!("{:.1} ns", t * 1e9)
    }
}

/// Re-export for benches that import `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_measurements() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("triangular", 100), &100u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn format_is_humane() {
        assert!(format_secs(2.0).ends_with(" s"));
        assert!(format_secs(2e-3).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
        assert!(format_secs(2e-9).ends_with(" ns"));
    }
}
