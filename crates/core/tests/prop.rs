//! Property tests for the separability algorithms: every generated model
//! must actually separate, every decision must match its definitional
//! criterion, and the approximation algorithms must be optimal.

use cq::EnumConfig;
use cqsep::{apx, gen_ghw, sep_cq, sep_cqm, sep_ghw};
use proptest::prelude::*;
use relational::{Database, Label, Labeling, Schema, TrainingDb, Val};

fn schema() -> Schema {
    let mut s = Schema::entity_schema();
    s.add_relation("E", 2);
    s
}

/// Strategy: a random training database (n nodes, random edges, all nodes
/// entities with random labels).
fn random_train() -> impl Strategy<Value = TrainingDb> {
    (2usize..5)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 0..(2 * n)),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(n, edges, labels)| {
            let mut db = Database::new(schema());
            let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
            let e = db.schema().rel_by_name("E").unwrap();
            for (a, b) in edges {
                db.add_fact(e, vec![vals[a], vals[b]]);
            }
            let mut labeling = Labeling::new();
            for (i, &v) in vals.iter().enumerate() {
                db.add_entity(v);
                labeling.set(
                    v,
                    if labels[i] {
                        Label::Positive
                    } else {
                        Label::Negative
                    },
                );
            }
            TrainingDb::new(db, labeling)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// If a solver says separable, its generated model must separate; if
    /// it says no, the definitional criterion must also say no.
    #[test]
    fn cq_decision_matches_generation(t in random_train()) {
        let decision = sep_cq::cq_separable(&t);
        match sep_cq::cq_generate(&t) {
            Some(model) => {
                prop_assert!(decision);
                prop_assert!(model.separates(&t), "{}", model.statistic);
            }
            None => prop_assert!(!decision),
        }
    }

    #[test]
    fn ghw_decision_matches_generation(t in random_train()) {
        for k in 1..=2 {
            let decision = sep_ghw::ghw_separable(&t, k);
            match gen_ghw::ghw_generate(&t, k, 500_000) {
                Ok(model) => {
                    prop_assert!(decision, "k={k}");
                    prop_assert!(model.separates(&t), "k={k}: {}", model.statistic);
                    for q in &model.statistic.features {
                        // Width certificates for small features only (the
                        // exact ghw search is exponential).
                        if q.atoms().len() <= 8 {
                            prop_assert!(cq::ghw(q) <= k, "k={k}: {q}");
                        }
                    }
                }
                Err(gen_ghw::GenError::NotSeparable) => prop_assert!(!decision),
                Err(gen_ghw::GenError::Budget { .. }) => {
                    prop_assert!(decision, "budget implies separable");
                }
            }
        }
    }

    #[test]
    fn cqm_model_separates_when_produced(t in random_train()) {
        for m in 1..=2 {
            if let Some(model) = sep_cqm::cqm_generate(&t, &EnumConfig::cqm(m)) {
                prop_assert!(model.separates(&t), "m={m}");
                for q in &model.statistic.features {
                    prop_assert!(q.atom_count_for_cqm() <= m);
                }
            }
        }
    }

    /// Algorithm 2 output: separable, and no labeling can beat it —
    /// brute-forced over all labelings.
    #[test]
    fn algorithm_2_is_optimal(t in random_train()) {
        let ents = t.entities();
        prop_assume!(ents.len() <= 4);
        let relabeled = apx::ghw_optimal_relabeling(&t, 1);
        let cand = TrainingDb::new(t.db.clone(), relabeled.clone());
        prop_assert!(sep_ghw::ghw_separable(&cand, 1));
        let ours = t.labeling.disagreement(&relabeled);
        let mut brute = usize::MAX;
        for mask in 0u32..(1 << ents.len()) {
            let mut lab = Labeling::new();
            for (i, &e) in ents.iter().enumerate() {
                lab.set(e, if mask & (1 << i) != 0 { Label::Positive } else { Label::Negative });
            }
            let c = TrainingDb::new(t.db.clone(), lab.clone());
            if sep_ghw::ghw_separable(&c, 1) {
                brute = brute.min(t.labeling.disagreement(&lab));
            }
        }
        prop_assert_eq!(ours, brute);
    }

    /// The separability hierarchy on random instances.
    #[test]
    fn hierarchy(t in random_train()) {
        let cqm1 = sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1));
        let g1 = sep_ghw::ghw_separable(&t, 1);
        let g2 = sep_ghw::ghw_separable(&t, 2);
        let cq = sep_cq::cq_separable(&t);
        let fo = cqsep::fo::fo_separable(&t);
        prop_assert!(!cqm1 || g1);
        prop_assert!(!g1 || g2);
        prop_assert!(!g2 || cq);
        prop_assert!(!cq || fo);
    }

    /// Classification consistency: on the training database itself,
    /// every classifier reproduces λ exactly when separable.
    #[test]
    fn classification_reproduces_training_labels(t in random_train()) {
        if sep_ghw::ghw_separable(&t, 1) {
            let lab = cqsep::cls_ghw::ghw_classify(&t, &t.db, 1).unwrap();
            for e in t.entities() {
                prop_assert_eq!(lab.get(e), t.labeling.get(e));
            }
        }
        if sep_cq::cq_separable(&t) {
            let lab = sep_cq::cq_classify(&t, &t.db).unwrap();
            for e in t.entities() {
                prop_assert_eq!(lab.get(e), t.labeling.get(e));
            }
        }
    }

    /// CQ[m]-ApxSep: the min-error model realizes its reported error and
    /// reports 0 exactly on separable instances.
    #[test]
    fn cqm_apx_consistent(t in random_train()) {
        let (model, errors) = apx::cqm_apx_generate(&t, &EnumConfig::cqm(1));
        prop_assert_eq!(model.errors(&t), errors);
        prop_assert_eq!(
            errors == 0,
            sep_cqm::cqm_separable(&t, &EnumConfig::cqm(1))
        );
        // GHW(1) is at least as expressive as CQ[1]:
        prop_assert!(apx::ghw_min_errors(&t, 1) <= errors);
    }
}
