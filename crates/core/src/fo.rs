//! Separability for more expressive feature languages (§8): FO, FO_k,
//! ∃FO, ∃FO⁺, the dimension-collapse property, and the
//! unbounded-dimension property.
//!
//! On a *finite* database, two entities satisfy the same unary FO queries
//! iff some automorphism maps one to the other; so FO-Sep reduces to
//! automorphism-orbit tests (GI-complete, matching Corollary 8.2 and the
//! Arenas–Díaz result the paper cites). FO_k-indistinguishability is the
//! k-pebble partial-isomorphism game. ∃FO collapses to FO
//! (Proposition 8.3(1)) and ∃FO⁺ to CQ (Proposition 8.3(2)).
//!
//! The dimension-collapse characterization (Theorem 8.4) — `L` collapses
//! iff `⋃_{q∈L} {q(D), η(D)∖q(D)}` is closed under intersection — is
//! implemented as a checker over explicit finite query sets, used by
//! the tests to *witness* that CQ and GHW(k) do not collapse while finite
//! FO-style families do.

use crate::statistic::Statistic;
use covergame::pebble_equivalent;
use cq::evaluate_unary;
use relational::iso::same_orbit;
use relational::{Database, Label, Labeling, TrainingDb, Val};
use std::collections::BTreeSet;

/// FO-Sep: separable iff no positive/negative pair lies in one
/// automorphism orbit. Also answers ∃FO-Sep and Σ_k-Sep by the collapse
/// results (Prop 8.3(1), Cor 8.5).
pub fn fo_separable(train: &TrainingDb) -> bool {
    fo_inseparability_witness(train).is_none()
}

/// A positive/negative automorphic pair, if any.
pub fn fo_inseparability_witness(train: &TrainingDb) -> Option<(Val, Val)> {
    train
        .opposing_pairs()
        .into_iter()
        .find(|&(p, n)| same_orbit(&train.db, p, n))
}

/// FO_k-Sep: separable iff no positive/negative pair is
/// FO_k-indistinguishable (k-pebble game equivalence). Needs `k ≥ 1`
/// (the free variable occupies one pebble).
pub fn fo_k_separable(train: &TrainingDb, k: usize) -> bool {
    train
        .opposing_pairs()
        .into_iter()
        .all(|(p, n)| !pebble_equivalent(&train.db, p, &train.db, n, k))
}

/// FO-Cls: label evaluation entities consistently with a single FO
/// feature that separates the training data (the dimension collapse of
/// Proposition 8.1 means one feature always suffices).
///
/// An FO query transfers labels exactly along pointed isomorphisms, so an
/// evaluation entity isomorphic (as a pointed structure) to a training
/// entity inherits its label; all others may be labeled freely — we label
/// them negative, which some FO feature realizes (FO defines every finite
/// pointed-isomorphism type).
pub fn fo_classify(train: &TrainingDb, eval: &Database) -> Option<Labeling> {
    if !fo_separable(train) {
        return None;
    }
    let train_entities = train.entities();
    let mut out = Labeling::new();
    for f in eval.entities() {
        let inherited = train_entities.iter().find_map(|&e| {
            if relational::iso::isomorphic(&train.db, eval, &[(e, f)]) {
                Some(train.labeling.get(e))
            } else {
                None
            }
        });
        out.set(f, inherited.unwrap_or(Label::Negative));
    }
    Some(out)
}

/// Constructive Proposition 8.1: the single FO feature separating an
/// FO-separable training database (delegates to the `folog` crate's
/// describing-formula machinery). `None` when not FO-separable.
///
/// The returned formula has free variable `folog::FoVar(0)`; evaluate
/// with [`folog::fo_selects`]. Describing formulas are exponential to
/// evaluate — this is the paper's constructiveness made concrete, not a
/// production classifier (use [`fo_classify`] for that).
pub fn fo_generate_single_feature(train: &TrainingDb) -> Option<folog::FoFormula> {
    folog::fo_single_feature(train)
}

/// FO-QBE (§8, Arenas–Díaz [4]): an FO explanation for `(D, S⁺, S⁻)`
/// exists iff no automorphism orbit of `D` contains both a positive and a
/// negative example — FO defines every orbit, so orbit-disjointness is
/// both necessary and sufficient. GI-complete, decided here through the
/// color-refinement + individualization iso solver.
pub fn fo_qbe(d: &Database, pos: &[Val], neg: &[Val]) -> bool {
    pos.iter()
        .all(|&p| neg.iter().all(|&n| !same_orbit(d, p, n)))
}

/// FO_k-QBE: as [`fo_qbe`] with k-pebble-game indistinguishability.
pub fn fo_k_qbe(d: &Database, pos: &[Val], neg: &[Val], k: usize) -> bool {
    pos.iter()
        .all(|&p| neg.iter().all(|&n| !pebble_equivalent(d, p, d, n, k)))
}

/// The Theorem 8.4 condition, checked for an explicit finite family of
/// feature queries on a concrete database: is
/// `⋃_q {q(D), η(D) ∖ q(D)}` closed under pairwise intersection (within
/// the family's generated sets)?
///
/// Returns a violating pair of sets if closure fails — i.e. a concrete
/// witness that the language fragment cannot have the dimension-collapse
/// property on this database.
pub fn intersection_closure_violation(
    d: &Database,
    queries: &[cq::Cq],
) -> Option<(BTreeSet<Val>, BTreeSet<Val>)> {
    let entities: BTreeSet<Val> = d.entities().into_iter().collect();
    let mut sets: Vec<BTreeSet<Val>> = Vec::new();
    for q in queries {
        let sel: BTreeSet<Val> = evaluate_unary(q, d).into_iter().collect();
        let co: BTreeSet<Val> = entities.difference(&sel).copied().collect();
        sets.push(sel);
        sets.push(co);
    }
    sets.sort();
    sets.dedup();
    for a in &sets {
        for b in &sets {
            let inter: BTreeSet<Val> = a.intersection(b).copied().collect();
            if !sets.contains(&inter) {
                return Some((a.clone(), b.clone()));
            }
        }
    }
    None
}

/// The Proposition 8.6 linear-family witness for the unbounded-dimension
/// property of CQ / GHW(k) / Σ_k⁺: a database (a directed path of entity
/// nodes) on which the out-path queries produce a strictly linear family
/// of `n` answer sets. Returns the training database whose alternating
/// labeling requires at least ~n/2... (in fact `n`) features — measured
/// empirically via [`min_dimension_of`] in tests and benches.
pub fn linear_family_db(n: usize) -> TrainingDb {
    let mut schema = relational::Schema::entity_schema();
    schema.add_relation("E", 2);
    let mut b = relational::DbBuilder::new(schema);
    for i in 0..n {
        let from = format!("v{i}");
        let to = format!("v{}", i + 1);
        b = b.fact("E", &[&from, &to]);
    }
    // Alternate labels along the path; only path elements are entities.
    for i in 0..=n {
        let name = format!("v{i}");
        b = if i % 2 == 0 {
            b.positive(&name)
        } else {
            b.negative(&name)
        };
    }
    b.training()
}

/// The minimal dimension of a statistic from the given (finite) candidate
/// pool that linearly separates `train` — brute force, for the
/// unbounded-dimension experiments (Theorems 5.7/8.7 measurements).
pub fn min_dimension_of(train: &TrainingDb, pool: &[cq::Cq], cap: usize) -> Option<usize> {
    min_dimension_of_with(engine::Engine::global(), train, pool, cap)
}

/// [`min_dimension_of`] with the subset LPs counted against a
/// caller-supplied [`engine::Engine`].
pub fn min_dimension_of_with(
    engine: &engine::Engine,
    train: &TrainingDb,
    pool: &[cq::Cq],
    cap: usize,
) -> Option<usize> {
    min_dimension_of_in(&engine.ctx(), train, pool, cap).expect("unbounded ctx cannot interrupt")
}

/// [`min_dimension_of`] under a task context: the handle is observed at
/// every subset-search node and inside each LP.
pub fn min_dimension_of_in(
    ctx: &engine::Ctx,
    train: &TrainingDb,
    pool: &[cq::Cq],
    cap: usize,
) -> Result<Option<usize>, engine::Interrupted> {
    ctx.check()?;
    let entities = train.entities();
    let labels: Vec<i32> = entities
        .iter()
        .map(|&e| train.labeling.get(e).to_i32())
        .collect();
    let stat = Statistic::new(pool.to_vec());
    let rows = stat.apply_in(ctx, &train.db, &entities)?;
    // Columns of the pool.
    let columns: Vec<Vec<i32>> = (0..pool.len())
        .map(|j| rows.iter().map(|r| r[j]).collect())
        .collect();

    fn rec(
        ctx: &engine::Ctx,
        columns: &[Vec<i32>],
        labels: &[i32],
        chosen: &mut Vec<usize>,
        start: usize,
        want: usize,
    ) -> Result<bool, engine::Interrupted> {
        ctx.check()?;
        if chosen.len() == want {
            let rows: Vec<Vec<i32>> = (0..labels.len())
                .map(|r| chosen.iter().map(|&c| columns[c][r]).collect())
                .collect();
            return Ok(ctx.separate(&rows, labels)?.is_some());
        }
        for c in start..columns.len() {
            chosen.push(c);
            if rec(ctx, columns, labels, chosen, c + 1, want)? {
                return Ok(true);
            }
            chosen.pop();
        }
        Ok(false)
    }

    for want in 0..=cap.min(pool.len()) {
        if labels.iter().all(|&l| l == labels[0]) {
            return Ok(Some(0));
        }
        let mut chosen = Vec::new();
        if want > 0 && rec(ctx, &columns, &labels, &mut chosen, 0, want)? {
            return Ok(Some(want));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse::parse_cq;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn fo_separates_what_cq_cannot() {
        // Two disjoint 3-cycles: CQ-inseparable (hom-equivalent), but FO
        // separates iff the pointed structures are non-automorphic —
        // they ARE automorphic here (swap the cycles), so FO also fails.
        let sym = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            .positive("a")
            .negative("x")
            .training();
        assert!(!crate::sep_cq::cq_separable(&sym));
        assert!(!fo_separable(&sym));

        // Break the symmetry: a 3-cycle vs a 4-cycle — still
        // CQ-inseparable? (C3,a) -> (C4,?) has no hom (odd into even);
        // so CQ separates. Use 3-cycle vs TWO 3-cycles sharing... take
        // one 3-cycle and a 6-cycle: hom both ways? C6 -> C3 yes; C3 ->
        // C6 no. So CQ separates too. The FO-vs-CQ gap needs
        // hom-equivalence with non-isomorphism:
        // one 3-cycle vs a disjoint pair of 3-cycles.
        let gap = DbBuilder::new(schema())
            // component 1: single triangle; entity a
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            // component 2: two triangles; entity x in the first
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            .fact("E", &["p", "q"])
            .fact("E", &["q", "r"])
            .fact("E", &["r", "p"])
            .positive("a")
            .negative("x")
            .training();
        // All triangle elements are hom-equivalent: CQ fails.
        assert!(!crate::sep_cq::cq_separable(&gap));
        // But no automorphism maps a to x: a's "database" has p,q,r
        // distinguishable... the automorphism must preserve the whole
        // structure, and both a and x lie on triangles, with the
        // structure symmetric under swapping the x- and p-triangles and
        // the a-triangle fixed? a can map to x only if some automorphism
        // does it — all three triangles are interchangeable! So FO also
        // fails here. The real FO winner: make the triangles
        // *distinguishable* by attaching a pendant edge to a's triangle.
        assert!(!fo_separable(&gap));

        let fo_wins = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            // pendant *out of* x's triangle breaks interchangeability
            // without affecting hom-equivalence of a and x... an edge
            // x -> t adds outgoing structure matched by the cycle
            // (fold t onto y), so hom-equivalence survives.
            .fact("E", &["x", "t"])
            .positive("a")
            .negative("x")
            .training();
        assert!(
            !crate::sep_cq::cq_separable(&fo_wins),
            "still hom-equivalent"
        );
        assert!(fo_separable(&fo_wins), "FO sees the pendant");
    }

    #[test]
    fn fo_k_hierarchy() {
        // Path endpoints: FO_2 already separates (∃y E(x,y)).
        let t = DbBuilder::new(schema())
            .fact("E", &["s", "t"])
            .positive("s")
            .negative("t")
            .training();
        assert!(!fo_k_separable(&t, 1));
        assert!(fo_k_separable(&t, 2));
        assert!(fo_separable(&t));
    }

    #[test]
    fn fo_classify_transfers_by_isomorphism() {
        let t = DbBuilder::new(schema())
            .fact("E", &["s", "t"])
            .positive("s")
            .negative("t")
            .training();
        // Eval: an isomorphic copy.
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .entity("u")
            .entity("v")
            .build();
        let lab = fo_classify(&t, &eval).unwrap();
        assert_eq!(lab.get(eval.val_by_name("u").unwrap()), Label::Positive);
        assert_eq!(lab.get(eval.val_by_name("v").unwrap()), Label::Negative);
        // Non-isomorphic eval entities default to negative.
        let other = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .fact("E", &["v", "w"])
            .entity("u")
            .build();
        let lab = fo_classify(&t, &other).unwrap();
        assert_eq!(lab.get(other.val_by_name("u").unwrap()), Label::Negative);
    }

    #[test]
    fn single_fo_feature_is_constructive() {
        // Proposition 8.1 end-to-end: decision and construction agree,
        // and the constructed feature reproduces λ.
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .positive("a")
            .negative("b")
            .negative("c")
            .training();
        assert!(fo_separable(&t));
        let f = fo_generate_single_feature(&t).expect("separable");
        for e in t.entities() {
            assert_eq!(
                folog::fo_selects(&t.db, &f, folog::FoVar(0), e),
                t.labeling.get(e) == Label::Positive
            );
        }
        // Inseparable: decision and construction agree on None.
        let bad = DbBuilder::new(schema())
            .fact("E", &["u", "u"])
            .fact("E", &["v", "v"])
            .positive("u")
            .negative("v")
            .training();
        assert!(!fo_separable(&bad));
        assert!(fo_generate_single_feature(&bad).is_none());
    }

    #[test]
    fn fo_qbe_matches_separability_on_partitions() {
        // When (S+, S-) partitions the entities, FO-QBE coincides with
        // FO-Sep (the dimension collapse: one FO feature explains).
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            .fact("E", &["x", "t"])
            .positive("a")
            .negative("x")
            .training();
        assert_eq!(
            fo_qbe(&t.db, &t.positives(), &t.negatives()),
            fo_separable(&t)
        );
        // FO_k-QBE is weaker for small k and monotone in k.
        let mut prev = false;
        for k in 1..=3 {
            let now = fo_k_qbe(&t.db, &t.positives(), &t.negatives(), k);
            if prev {
                assert!(now, "FO_k-QBE must be monotone in k");
            }
            prev = now;
        }
    }

    #[test]
    fn cq_fails_intersection_closure() {
        // Theorem 8.4 witness on Example 6.2's database: with q1 = R(x),
        // q2 = S(x), the family {q(D), η∖q(D)} is not ∩-closed.
        let mut s = Schema::entity_schema();
        s.add_relation("R", 1);
        s.add_relation("S", 1);
        let d = DbBuilder::new(s.clone())
            .fact("R", &["a"])
            .fact("S", &["a"])
            .fact("S", &["c"])
            .entity("a")
            .entity("b")
            .entity("c")
            .build();
        let q1 = parse_cq(&s, "q(x) :- eta(x), R(x)").unwrap();
        let q2 = parse_cq(&s, "q(x) :- eta(x), S(x)").unwrap();
        // q1(D) = {a}; q2(D) = {a,c}; complements {b,c}, {b}.
        // {b,c} ∩ {a,c} = {c}: not in the family → violation.
        assert!(intersection_closure_violation(&d, &[q1, q2]).is_some());
    }

    #[test]
    fn linear_family_needs_growing_dimension() {
        // Proposition 8.6 / Theorem 8.7 in miniature: on the alternating
        // path of length n, the pool of out-path queries (a linear
        // family) needs at least ⌈n/2⌉-ish features; measure exactly.
        let schema = schema();
        for n in [2usize, 4] {
            let t = linear_family_db(n);
            // Pool: out-path queries of lengths 1..=n.
            let pool: Vec<cq::Cq> = (1..=n)
                .map(|len| {
                    let mut body = String::from("q(x0) :- eta(x0)");
                    for i in 0..len {
                        body += &format!(", E(x{i},x{})", i + 1);
                    }
                    parse_cq(&schema, &body).unwrap()
                })
                .collect();
            let dim = min_dimension_of(&t, &pool, n + 1).expect("pool suffices");
            assert!(
                dim >= n / 2,
                "n={n}: alternating labels need ≥ n/2 linear-family features, got {dim}"
            );
        }
    }
}
