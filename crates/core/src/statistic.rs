//! Statistics and separator models (§2–§3 of the paper).

use cq::{indicator, Cq};
use linsep::LinearClassifier;
use relational::{Database, Label, Labeling, TrainingDb, Val};
use std::fmt;

/// A statistic `Π = (q_1, …, q_n)`: a sequence of unary feature queries.
#[derive(Clone, Debug)]
pub struct Statistic {
    pub features: Vec<Cq>,
}

impl Statistic {
    pub fn new(features: Vec<Cq>) -> Statistic {
        for q in &features {
            assert!(q.is_unary(), "feature queries must be unary");
        }
        Statistic { features }
    }

    /// The dimension (number of feature queries).
    pub fn dimension(&self) -> usize {
        self.features.len()
    }

    /// `Π^D(e)` for every entity `e` in `entities`: the ±1 feature matrix,
    /// one row per entity.
    ///
    /// Each feature column is an independent evaluation (a batch of hom
    /// tests for its query), so columns are computed on the parallel
    /// driver and then transposed into rows.
    pub fn apply(&self, d: &Database, entities: &[Val]) -> Vec<Vec<i32>> {
        self.apply_with(engine::Engine::global(), d, entities)
    }

    /// [`Statistic::apply`] with the column sweep fanned out under a
    /// caller-supplied [`engine::Engine`]'s thread budget.
    pub fn apply_with(
        &self,
        engine: &engine::Engine,
        d: &Database,
        entities: &[Val],
    ) -> Vec<Vec<i32>> {
        self.apply_in(&engine.ctx(), d, entities)
            .expect("unbounded ctx cannot interrupt")
    }

    /// [`Statistic::apply`] under a task context. The feature sweep runs
    /// in blocks with an interrupt check between blocks, so wide
    /// enumerated statistics (the `CQ[m]` solvers) stop promptly.
    pub fn apply_in(
        &self,
        ctx: &engine::Ctx,
        d: &Database,
        entities: &[Val],
    ) -> Result<Vec<Vec<i32>>, engine::Interrupted> {
        ctx.check()?;
        const BLOCK: usize = 32;
        let mut cols: Vec<Vec<i32>> = Vec::with_capacity(self.features.len());
        for chunk in self.features.chunks(BLOCK) {
            cols.extend(ctx.engine().par_map(chunk, |q| indicator(q, d, entities)));
            ctx.check()?;
        }
        let mut rows = vec![Vec::with_capacity(self.features.len()); entities.len()];
        for col in cols {
            for (row, v) in rows.iter_mut().zip(col) {
                row.push(v);
            }
        }
        Ok(rows)
    }

    /// Total number of atoms across the features — the size measure of
    /// Theorems 5.7 and 6.7.
    pub fn total_atoms(&self) -> usize {
        self.features.iter().map(|q| q.atoms().len()).sum()
    }
}

impl fmt::Display for Statistic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.features.iter().enumerate() {
            writeln!(f, "q{i}: {q}")?;
        }
        Ok(())
    }
}

/// A statistic together with a linear classifier: the pair `(Π, Λ_w̄)`
/// that the feature-generation algorithms produce.
#[derive(Clone, Debug)]
pub struct SeparatorModel {
    pub statistic: Statistic,
    pub classifier: LinearClassifier,
}

impl SeparatorModel {
    /// Classify the entities of `d` (any database over the schema).
    pub fn classify(&self, d: &Database) -> Labeling {
        self.classify_in(&engine::Engine::global().ctx(), d)
            .expect("unbounded ctx cannot interrupt")
    }

    /// [`SeparatorModel::classify`] under a task context: the feature
    /// sweep honours the context's engine and interrupt handle.
    pub fn classify_in(
        &self,
        ctx: &engine::Ctx,
        d: &Database,
    ) -> Result<Labeling, engine::Interrupted> {
        let entities = d.entities();
        let rows = self.statistic.apply_in(ctx, d, &entities)?;
        Ok(entities
            .into_iter()
            .zip(rows)
            .map(|(e, row)| (e, Label::from_sign(self.classifier.classify(&row))))
            .collect())
    }

    /// Does this model reproduce the training labels exactly
    /// (`L`-separation in the sense of Definition 3.1)?
    pub fn separates(&self, train: &TrainingDb) -> bool {
        self.errors(train) == 0
    }

    /// Number of training entities the model misclassifies (the error
    /// count of §7).
    pub fn errors(&self, train: &TrainingDb) -> usize {
        let predicted = self.classify(&train.db);
        train
            .entities()
            .into_iter()
            .filter(|&e| predicted.get(e) != train.labeling.get(e))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::parse::parse_cq;
    use numeric::qint;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn train() -> TrainingDb {
        DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training()
    }

    fn model() -> SeparatorModel {
        let q = parse_cq(&schema(), "q(x) :- eta(x), E(x,y)").unwrap();
        SeparatorModel {
            statistic: Statistic::new(vec![q]),
            classifier: LinearClassifier::new(qint(0), vec![qint(1)]),
        }
    }

    #[test]
    fn apply_builds_feature_matrix() {
        let t = train();
        let m = model();
        let rows = m.statistic.apply(&t.db, &t.entities());
        assert_eq!(rows, vec![vec![1], vec![1], vec![-1]]);
    }

    #[test]
    fn model_separates_training_db() {
        let t = train();
        let m = model();
        assert!(m.separates(&t));
        assert_eq!(m.errors(&t), 0);
    }

    #[test]
    fn errors_counted() {
        let mut t = train();
        // Flip a's label: the out-edge model now errs once.
        let a = t.db.val_by_name("a").unwrap();
        t.labeling.set(a, Label::Negative);
        assert_eq!(model().errors(&t), 1);
    }

    #[test]
    fn classify_evaluation_database() {
        let m = model();
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .entity("u")
            .entity("v")
            .build();
        let lab = m.classify(&eval);
        let u = eval.val_by_name("u").unwrap();
        let v = eval.val_by_name("v").unwrap();
        assert_eq!(lab.get(u), Label::Positive);
        assert_eq!(lab.get(v), Label::Negative);
    }

    #[test]
    fn dimension_and_atoms() {
        let m = model();
        assert_eq!(m.statistic.dimension(), 1);
        assert_eq!(m.statistic.total_atoms(), 2);
    }
}
