//! The literal `(L, ℓ)`-separability test of Lemma 6.3 — guess a ±1
//! vector per entity, check linear separability, ask an `L`-QBE oracle
//! per coordinate.
//!
//! This is the paper's algorithm verbatim: exhaustive over the
//! `(2^ℓ)^{|η(D)|}` vector assignments. The optimized solver in
//! [`crate::sep_dim`] restricts the guesses using indistinguishability
//! classes and up-set structure; this module exists as an *independent
//! oracle* so the test suite can confirm the two agree (they implement
//! one theorem through two very different searches), and as the honest
//! exhibit of the guess-and-check complexity the paper's upper bounds
//! are built from.

use crate::sep_dim::{DimBudget, DimClass, DimError};
use engine::{Ctx, Engine, Interrupted};
use relational::{TrainingDb, Val};

/// Decide `L`-Sep[ℓ] by the literal Lemma 6.3 search. Exponential in
/// `ℓ · |η(D)|`; use only on tiny instances (the test suite does).
pub fn sep_dim_naive(
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    sep_dim_naive_with(Engine::global(), train, class, ell, budget)
}

/// [`sep_dim_naive`] against a caller-supplied [`Engine`].
pub fn sep_dim_naive_with(
    engine: &Engine,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    sep_dim_naive_in(&engine.ctx(), train, class, ell, budget)
        .expect("unbounded ctx cannot interrupt")
}

/// [`sep_dim_naive`] under a task context: the handle is observed once
/// per guessed assignment κ (each LP and QBE call also checks on entry).
pub fn sep_dim_naive_in(
    ctx: &Ctx,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<Result<bool, DimError>, Interrupted> {
    ctx.check()?;
    let elems = train.entities();
    let n = elems.len();
    if n == 0 {
        return Ok(Ok(true));
    }
    assert!(
        n * ell <= 20,
        "naive Lemma 6.3 search is exponential; use cqsep::sep_dim instead"
    );
    let labels: Vec<i32> = elems
        .iter()
        .map(|&e| train.labeling.get(e).to_i32())
        .collect();

    // Enumerate κ : entities → {±1}^ℓ as one big bitmask.
    let total_bits = n * ell;
    'outer: for mask in 0u64..(1u64 << total_bits) {
        ctx.check()?;
        let kappa = |i: usize, j: usize| -> i32 {
            if mask & (1u64 << (i * ell + j)) != 0 {
                1
            } else {
                -1
            }
        };
        // Step 1: linear separability of the guessed vectors.
        let vectors: Vec<Vec<i32>> = (0..n)
            .map(|i| (0..ell).map(|j| kappa(i, j)).collect())
            .collect();
        if ctx.separate(&vectors, &labels)?.is_none() {
            continue;
        }
        // Step 2: each coordinate must be L-explainable.
        for j in 0..ell {
            let pos: Vec<Val> = (0..n)
                .filter(|&i| kappa(i, j) == 1)
                .map(|i| elems[i])
                .collect();
            let neg: Vec<Val> = (0..n)
                .filter(|&i| kappa(i, j) == -1)
                .map(|i| elems[i])
                .collect();
            // An all-negative coordinate: a constant-false feature. As in
            // the optimized solver, skip such guesses — a constant column
            // never affects separability (its weight can be zeroed), and
            // whether a never-satisfied CQ exists is schema-dependent.
            if pos.is_empty() {
                continue 'outer;
            }
            let verdict = match class {
                DimClass::Cq => {
                    engine::cq_qbe_decide_in(ctx, &train.db, &pos, &neg, budget.product_budget)?
                }
                DimClass::Ghw(k) => engine::ghw_qbe_decide_in(
                    ctx,
                    &train.db,
                    &pos,
                    &neg,
                    *k,
                    budget.product_budget,
                )?,
            };
            match verdict {
                Ok(true) => {}
                Ok(false) => continue 'outer,
                Err(e) => return Ok(Err(e.into())),
            }
        }
        return Ok(Ok(true));
    }
    Ok(Ok(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sep_dim::{cq_sep_dim, ghw_sep_dim};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use relational::{Database, Label, Labeling, Schema};

    fn random_train(n: usize, seed: u64) -> TrainingDb {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new(s);
        let e = db.schema().rel_by_name("E").unwrap();
        let vals: Vec<Val> = (0..n).map(|i| db.value(&format!("v{i}"))).collect();
        for i in 0..n {
            for j in 0..n {
                if rng.random::<f64>() < 0.3 {
                    db.add_fact(e, vec![vals[i], vals[j]]);
                }
            }
        }
        let mut labeling = Labeling::new();
        for &v in &vals {
            db.add_entity(v);
            labeling.set(
                v,
                if rng.random::<bool>() {
                    Label::Positive
                } else {
                    Label::Negative
                },
            );
        }
        TrainingDb::new(db, labeling)
    }

    /// The optimized up-set solver and the literal Lemma 6.3 search must
    /// agree — two independent implementations of one theorem.
    #[test]
    fn naive_agrees_with_optimized_cq() {
        let budget = DimBudget::default();
        for seed in 0..10 {
            let t = random_train(4, seed);
            for ell in 1..=2 {
                let naive = sep_dim_naive(&t, &DimClass::Cq, ell, &budget).unwrap();
                let smart = cq_sep_dim(&t, ell, &budget).unwrap();
                assert_eq!(naive, smart, "seed {seed}, ℓ={ell}");
            }
        }
    }

    #[test]
    fn naive_agrees_with_optimized_ghw() {
        let budget = DimBudget::default();
        for seed in 0..8 {
            let t = random_train(3, seed * 7 + 1);
            for ell in 1..=2 {
                let naive = sep_dim_naive(&t, &DimClass::Ghw(1), ell, &budget).unwrap();
                let smart = ghw_sep_dim(&t, 1, ell, &budget).unwrap();
                assert_eq!(naive, smart, "seed {seed}, ℓ={ell}");
            }
        }
    }

    #[test]
    fn example_6_2_through_the_naive_path() {
        let t = workloads_example();
        let budget = DimBudget::default();
        assert!(!sep_dim_naive(&t, &DimClass::Cq, 1, &budget).unwrap());
        assert!(sep_dim_naive(&t, &DimClass::Cq, 2, &budget).unwrap());
    }

    /// Example 6.2, built locally (workloads is a dev-dependency of the
    /// crate root, not reachable from unit tests... it is, but keep this
    /// self-contained).
    fn workloads_example() -> TrainingDb {
        let mut s = Schema::entity_schema();
        s.add_relation("R", 1);
        s.add_relation("S", 1);
        relational::DbBuilder::new(s)
            .fact("R", &["a"])
            .fact("S", &["a"])
            .fact("S", &["c"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training()
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn size_guard_trips() {
        let t = random_train(8, 3);
        let _ = sep_dim_naive(&t, &DimClass::Cq, 3, &DimBudget::default());
    }
}
