//! `GHW(k)`-separability in polynomial time (§5.1, Theorem 5.3).
//!
//! The GHW(k)-separability test (Proposition 5.5): accept iff no
//! positive/negative entity pair is mutually `→_k`-related. Each game
//! solve is polynomial for fixed `k` (and arity), so the whole test is —
//! in sharp contrast to generation (§5.2), which this module deliberately
//! does *not* do.

use crate::chain::{build_chain_in, ChainError, ChainModel};
use covergame::{CoverPreorder, UnionSkeleton};
use engine::{Ctx, Engine, Interrupted};
use relational::{TrainingDb, Val};

/// Decide `GHW(k)`-separability (Theorem 5.3).
pub fn ghw_separable(train: &TrainingDb, k: usize) -> bool {
    ghw_separable_with(Engine::global(), train, k)
}

/// [`ghw_separable`] against a caller-supplied [`Engine`].
pub fn ghw_separable_with(engine: &Engine, train: &TrainingDb, k: usize) -> bool {
    ghw_inseparability_witness_with(engine, train, k).is_none()
}

/// [`ghw_separable`] under a task context (interruptible).
pub fn ghw_separable_in(ctx: &Ctx, train: &TrainingDb, k: usize) -> Result<bool, Interrupted> {
    Ok(ghw_inseparability_witness_in(ctx, train, k)?.is_none())
}

/// A positive/negative pair that is `GHW(k)`-indistinguishable, if any
/// (the failure certificate of Lemma 5.4 (2)).
pub fn ghw_inseparability_witness(train: &TrainingDb, k: usize) -> Option<(Val, Val)> {
    ghw_inseparability_witness_with(Engine::global(), train, k)
}

/// [`ghw_inseparability_witness`] against a caller-supplied [`Engine`].
pub fn ghw_inseparability_witness_with(
    engine: &Engine,
    train: &TrainingDb,
    k: usize,
) -> Option<(Val, Val)> {
    ghw_inseparability_witness_in(&engine.ctx(), train, k).expect("unbounded ctx cannot interrupt")
}

/// [`ghw_inseparability_witness`] under a task context (interruptible).
pub fn ghw_inseparability_witness_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
) -> Result<Option<(Val, Val)>, Interrupted> {
    ctx.check()?;
    // All games share one database, hence one union skeleton; each pair's
    // two game solves are independent of every other pair's, so the
    // candidate sweep runs on the parallel driver. Verdicts memoize in
    // the engine's cache, where a later full-preorder sweep reuses them.
    // Workers swallow Stop with a filler verdict; the sticky post-fan-in
    // check discards the batch.
    let skeleton = UnionSkeleton::build(&train.db, k);
    let implies = |a: Val, b: Val| {
        ctx.cover_implies_with_skeleton(&train.db, &[a], &train.db, &[b], &skeleton)
            .unwrap_or(false)
    };
    let pairs = train.opposing_pairs();
    let hit = ctx
        .engine()
        .par_find_first(&pairs, |&(p, n)| implies(p, n) && implies(n, p))
        .map(|i| pairs[i]);
    ctx.check()?;
    Ok(hit)
}

/// The full `→_k` preorder over the training entities (used by
/// classification and the approximate algorithms; more expensive than the
/// pairwise test above but still polynomial).
pub fn ghw_preorder(train: &TrainingDb, k: usize) -> CoverPreorder {
    ghw_preorder_with(Engine::global(), train, k)
}

/// [`ghw_preorder`] against a caller-supplied [`Engine`].
pub fn ghw_preorder_with(engine: &Engine, train: &TrainingDb, k: usize) -> CoverPreorder {
    engine.preorder(&train.db, &train.entities(), k)
}

/// [`ghw_preorder`] under a task context (interruptible).
pub fn ghw_preorder_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
) -> Result<CoverPreorder, Interrupted> {
    ctx.preorder(&train.db, &train.entities(), k)
}

/// The chain model of Lemma 5.4 for the `→_k` preorder: the implicit
/// statistic `Π = (q_{e_1}, …, q_{e_m})` *represented by its preorder
/// only*, plus the linear classifier.
pub fn ghw_chain(train: &TrainingDb, k: usize) -> Result<ChainModel, ChainError> {
    ghw_chain_with(Engine::global(), train, k)
}

/// [`ghw_chain`] against a caller-supplied [`Engine`].
pub fn ghw_chain_with(
    engine: &Engine,
    train: &TrainingDb,
    k: usize,
) -> Result<ChainModel, ChainError> {
    ghw_chain_in(&engine.ctx(), train, k).expect("unbounded ctx cannot interrupt")
}

/// [`ghw_chain`] under a task context (interruptible).
pub fn ghw_chain_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
) -> Result<Result<ChainModel, ChainError>, Interrupted> {
    let pre = ghw_preorder_in(ctx, train, k)?;
    build_chain_in(ctx, train, &pre.elems, &pre.leq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Label, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn path_separable_at_k1() {
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training();
        assert!(ghw_separable(&t, 1));
        let chain = ghw_chain(&t, 1).unwrap();
        assert_eq!(chain.class_count(), 3);
    }

    #[test]
    fn width_hierarchy_on_cycles() {
        // a on a (shared-element) structure: entity x on C2, entity a on
        // C4, labeled oppositely. GHW(1) distinguishes: the 2-cycle query
        // ∃y E(x,y),E(y,x) has ghw 1 and holds only at the C2 members.
        let t = DbBuilder::new(schema())
            .fact("E", &["x", "y"])
            .fact("E", &["y", "x"])
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "d"])
            .fact("E", &["d", "a"])
            .positive("x")
            .negative("a")
            .training();
        assert!(ghw_separable(&t, 1));
        assert!(ghw_separable(&t, 2));
    }

    #[test]
    fn ghw_separable_implies_cq_separable() {
        // GHW(k) ⊆ CQ: a GHW(k)-separable instance is CQ-separable.
        let samples = [
            vec![("1", "2"), ("2", "3")],
            vec![("a", "b"), ("b", "a")],
            vec![("a", "a"), ("a", "b")],
        ];
        for edges in samples {
            let mut b = DbBuilder::new(schema());
            for (x, y) in &edges {
                b = b.fact("E", &[x, y]);
            }
            let t = b.positive(edges[0].0).negative(edges[0].1).training();
            for k in 1..=2 {
                if ghw_separable(&t, k) {
                    assert!(
                        crate::sep_cq::cq_separable(&t),
                        "GHW({k}) separated but CQ did not: {edges:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn witness_labels_are_correct() {
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        let (p, n) = ghw_inseparability_witness(&t, 1).expect("2-cycle collapses");
        assert_eq!(t.labeling.get(p), Label::Positive);
        assert_eq!(t.labeling.get(n), Label::Negative);
        assert!(!ghw_separable(&t, 2));
    }

    #[test]
    fn k_monotonicity_of_separability() {
        // GHW(k) ⊆ GHW(k+1): separability is monotone in k.
        let t = DbBuilder::new(schema())
            .fact("E", &["p", "q"])
            .fact("E", &["q", "r"])
            .fact("E", &["r", "p"])
            .fact("E", &["u", "v"])
            .fact("E", &["v", "w"])
            .fact("E", &["w", "u"])
            .fact("E", &["u", "w"])
            .positive("p")
            .negative("u")
            .training();
        let mut prev = false;
        for k in 1..=2 {
            let now = ghw_separable(&t, k);
            if prev {
                assert!(now, "separability must be monotone in k");
            }
            prev = now;
        }
    }
}
