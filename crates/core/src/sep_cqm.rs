//! `CQ[m]` and `CQ[m,p]` separability, generation, and classification
//! (§4: Proposition 4.1, Corollary 4.2, Proposition 4.3).
//!
//! Proposition 4.1's key observation: `(D, λ)` is `CQ[m]`-separable iff it
//! is separated by the statistic of **all** `CQ[m]` feature queries over
//! the relations of `D`, up to equivalence. So the algorithm enumerates
//! that statistic, evaluates the indicator matrix, and asks the exact LP
//! for a classifier. The enumeration is `|D|^m · 2^{poly(arity)}` — the
//! FPT shape of Corollary 4.2 — and bounding occurrences per variable
//! (`CQ[m,p]`) restores plain PTIME (Proposition 4.3).

use crate::statistic::{SeparatorModel, Statistic};
use cq::{enumerate_feature_queries, EnumConfig};
use engine::{Ctx, Engine, Interrupted};
use relational::{Database, Labeling, TrainingDb};

/// The full `CQ[m]` statistic over the relations populated in `D`
/// (Prop 4.1's `Π`), with the η guard on every feature.
pub fn full_statistic(d: &Database, config: &EnumConfig) -> Statistic {
    let config = match &config.relations {
        Some(_) => config.clone(),
        None => {
            let eta = d.schema().entity_rel();
            let populated: Vec<_> = d
                .populated_rels()
                .into_iter()
                .filter(|r| Some(*r) != eta)
                .collect();
            config.clone().over_relations(populated)
        }
    };
    Statistic::new(enumerate_feature_queries(d.schema(), &config))
}

/// Decide `CQ[m]`(-`[m,p]`) separability and produce the separating pair
/// `(Π, Λ_w̄)` when it exists (Proposition 4.1 is constructive).
///
/// Optimization over the literal Prop 4.1 statement: logically distinct
/// features with the *same indicator column on this training database*
/// are interchangeable for separability, so the enumeration runs with
/// cheap syntactic deduplication and the statistic keeps one feature per
/// distinct column. This changes neither the decision nor the
/// separation guarantee — only the (much smaller) LP dimension.
pub fn cqm_generate(train: &TrainingDb, config: &EnumConfig) -> Option<SeparatorModel> {
    cqm_generate_with(Engine::global(), train, config)
}

/// [`cqm_generate`] against a caller-supplied [`Engine`].
pub fn cqm_generate_with(
    engine: &Engine,
    train: &TrainingDb,
    config: &EnumConfig,
) -> Option<SeparatorModel> {
    cqm_generate_in(&engine.ctx(), train, config).expect("unbounded ctx cannot interrupt")
}

/// [`cqm_generate`] under a task context (interruptible): both the
/// enumerated feature-matrix sweep and the LP observe the handle.
pub fn cqm_generate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    config: &EnumConfig,
) -> Result<Option<SeparatorModel>, Interrupted> {
    let (statistic, rows, labels) = column_reduced_statistic_in(ctx, train, config)?;
    let classifier = match ctx.separate(&rows, &labels)? {
        Some(c) => c,
        None => return Ok(None),
    };
    Ok(Some(SeparatorModel {
        statistic,
        classifier,
    }))
}

/// The full (syntactically enumerated) `CQ[m]` statistic reduced to one
/// feature per distinct indicator column on `train`, with the reduced
/// feature matrix and the ±1 labels. Shared by the exact and approximate
/// solvers: column identity is all that matters for (approximate) linear
/// separability over a fixed training database.
/// A reduced statistic plus its feature matrix: the deduplicated
/// [`Statistic`], one indicator row per entity, and the entity labels.
pub type ReducedStatistic = (Statistic, Vec<Vec<i32>>, Vec<i32>);

pub fn column_reduced_statistic(train: &TrainingDb, config: &EnumConfig) -> ReducedStatistic {
    column_reduced_statistic_in(&Engine::global().ctx(), train, config)
        .expect("unbounded ctx cannot interrupt")
}

/// [`column_reduced_statistic`] under a task context: the feature-matrix
/// sweep runs through [`Statistic::apply_in`], observing the handle
/// between feature blocks.
pub fn column_reduced_statistic_in(
    ctx: &Ctx,
    train: &TrainingDb,
    config: &EnumConfig,
) -> Result<ReducedStatistic, Interrupted> {
    ctx.check()?;
    let statistic = full_statistic(&train.db, &config.clone().syntactic());
    let entities = train.entities();
    let rows = statistic.apply_in(ctx, &train.db, &entities)?;
    let nfeat = statistic.dimension();
    let mut seen = std::collections::HashSet::new();
    let mut kept_features = Vec::new();
    let mut kept_cols: Vec<Vec<i32>> = Vec::new();
    for j in 0..nfeat {
        let col: Vec<i32> = rows.iter().map(|r| r[j]).collect();
        if seen.insert(col.clone()) {
            kept_features.push(statistic.features[j].clone());
            kept_cols.push(col);
        }
    }
    let reduced_rows: Vec<Vec<i32>> = (0..entities.len())
        .map(|i| kept_cols.iter().map(|c| c[i]).collect())
        .collect();
    let labels: Vec<i32> = entities
        .iter()
        .map(|&e| train.labeling.get(e).to_i32())
        .collect();
    Ok((Statistic::new(kept_features), reduced_rows, labels))
}

/// Decision-only variant of [`cqm_generate`].
pub fn cqm_separable(train: &TrainingDb, config: &EnumConfig) -> bool {
    cqm_generate(train, config).is_some()
}

/// [`cqm_separable`] against a caller-supplied [`Engine`].
pub fn cqm_separable_with(engine: &Engine, train: &TrainingDb, config: &EnumConfig) -> bool {
    cqm_generate_with(engine, train, config).is_some()
}

/// [`cqm_separable`] under a task context (interruptible).
pub fn cqm_separable_in(
    ctx: &Ctx,
    train: &TrainingDb,
    config: &EnumConfig,
) -> Result<bool, Interrupted> {
    Ok(cqm_generate_in(ctx, train, config)?.is_some())
}

/// `CQ[m]`-Cls: classify an evaluation database with a model generated
/// from the training database (both constructive per §4).
pub fn cqm_classify(train: &TrainingDb, eval: &Database, config: &EnumConfig) -> Option<Labeling> {
    cqm_classify_with(Engine::global(), train, eval, config)
}

/// [`cqm_classify`] against a caller-supplied [`Engine`].
pub fn cqm_classify_with(
    engine: &Engine,
    train: &TrainingDb,
    eval: &Database,
    config: &EnumConfig,
) -> Option<Labeling> {
    cqm_generate_with(engine, train, config).map(|model| model.classify(eval))
}

/// [`cqm_classify`] under a task context (interruptible).
pub fn cqm_classify_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
    config: &EnumConfig,
) -> Result<Option<Labeling>, Interrupted> {
    match cqm_generate_in(ctx, train, config)? {
        None => Ok(None),
        Some(model) => model.classify_in(ctx, eval).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Label, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn path_train() -> TrainingDb {
        DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training()
    }

    #[test]
    fn one_atom_suffices_for_out_edges() {
        let t = path_train();
        let model = cqm_generate(&t, &EnumConfig::cqm(1)).expect("separable at m=1");
        assert!(model.separates(&t));
    }

    #[test]
    fn separability_monotone_in_m() {
        let t = path_train();
        for m in 1..=2 {
            assert!(cqm_separable(&t, &EnumConfig::cqm(m)), "m={m}");
        }
    }

    #[test]
    fn depth_two_pattern_needs_two_atoms() {
        // Distinguish "has an out-2-path" from "has only an out-1-path":
        // positives: 1; negatives: 2 (both have out-edges).
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .negative("2")
            .training();
        // m=1 candidates: out-edge (both +), in-edge (2 only, wrong
        // direction helps!): E(y,x) is true at 2 and false at 1 — that
        // separates with one atom after all. Verify the solver finds it.
        let m1 = cqm_generate(&t, &EnumConfig::cqm(1));
        assert!(m1.is_some_and(|m| m.separates(&t)));
    }

    #[test]
    fn genuinely_inseparable_stays_inseparable() {
        // Two hom-equivalent entities with opposite labels cannot be
        // separated by ANY CQ class, in particular CQ[m].
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        for m in 1..=2 {
            assert!(!cqm_separable(&t, &EnumConfig::cqm(m)), "m={m}");
        }
    }

    #[test]
    fn cqmp_weaker_than_cqm() {
        // Self-loop vs 2-cycle: E(x,x) requires two occurrences of x.
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "a"])
            .fact("E", &["b", "z"])
            .fact("E", &["z", "b"])
            .positive("a")
            .negative("b")
            .training();
        assert!(!cqm_separable(&t, &EnumConfig::cqmp(1, 1)));
        assert!(cqm_separable(&t, &EnumConfig::cqmp(1, 2)));
    }

    #[test]
    fn classify_eval_db() {
        let t = path_train();
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .entity("u")
            .entity("v")
            .build();
        let lab = cqm_classify(&t, &eval, &EnumConfig::cqm(1)).unwrap();
        let u = eval.val_by_name("u").unwrap();
        let v = eval.val_by_name("v").unwrap();
        assert_eq!(lab.get(u), Label::Positive);
        assert_eq!(lab.get(v), Label::Negative);
    }

    #[test]
    fn full_statistic_restricted_to_populated_relations() {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s.add_relation("Unused", 3);
        let d = DbBuilder::new(s).fact("E", &["a", "b"]).entity("a").build();
        let st = full_statistic(&d, &EnumConfig::cqm(1));
        for q in &st.features {
            assert!(
                !q.to_string().contains("Unused"),
                "unpopulated relation leaked into {q}"
            );
        }
    }
}
