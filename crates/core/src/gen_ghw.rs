//! Explicit `GHW(k)` feature generation (§5.2, Proposition 5.6).
//!
//! When `(D, λ)` is `GHW(k)`-separable, a separating statistic of
//! dimension ≤ `|η(D)|` exists whose features `q_e(x)` are conjunctions of
//! cover-game extractions (Lemma 5.4) — each of size up to *exponential*
//! in `|D|`, and Theorem 5.7 shows that blowup is unavoidable. The
//! generator therefore takes a node budget; callers who only need to
//! *classify* should use [`crate::cls_ghw`] instead, which is the whole
//! point of §5.3.

use crate::sep_ghw::ghw_chain_in;
use crate::statistic::{SeparatorModel, Statistic};
use covergame::extract::lemma54_feature;
use covergame::ExtractError;
use cq::Cq;
use engine::{Ctx, Engine, Interrupted};
use relational::TrainingDb;
use std::fmt;

/// Why explicit generation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The training database is not `GHW(k)`-separable.
    NotSeparable,
    /// Some feature's strategy unfolding exceeded the node budget
    /// (Theorem 5.7 in action).
    Budget { nodes: usize },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::NotSeparable => write!(f, "training database is not GHW(k)-separable"),
            GenError::Budget { nodes } => {
                write!(f, "feature extraction exceeded the {nodes}-node budget")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// Generate an explicit separating pair `(Π, Λ_w̄)` with features in
/// `GHW(k)` (Proposition 5.6). `max_nodes` bounds each feature's
/// strategy-tree unfolding.
pub fn ghw_generate(
    train: &TrainingDb,
    k: usize,
    max_nodes: usize,
) -> Result<SeparatorModel, GenError> {
    ghw_generate_with(Engine::global(), train, k, max_nodes)
}

/// [`ghw_generate`] against a caller-supplied [`Engine`]. The chain
/// model and its LP run through the engine; the per-feature strategy
/// unfoldings are uncached by nature (they need the analyzed game, not a
/// verdict).
pub fn ghw_generate_with(
    engine: &Engine,
    train: &TrainingDb,
    k: usize,
    max_nodes: usize,
) -> Result<SeparatorModel, GenError> {
    ghw_generate_in(&engine.ctx(), train, k, max_nodes).expect("unbounded ctx cannot interrupt")
}

/// [`ghw_generate`] under a task context (interruptible). The strategy
/// unfoldings themselves are budget-bounded and uncached, so the handle
/// is observed between features rather than inside an unfolding.
pub fn ghw_generate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
    max_nodes: usize,
) -> Result<Result<SeparatorModel, GenError>, Interrupted> {
    let chain = match ghw_chain_in(ctx, train, k)? {
        Ok(chain) => chain,
        Err(_) => return Ok(Err(GenError::NotSeparable)),
    };
    let entities = train.entities();
    let mut features: Vec<Cq> = Vec::with_capacity(chain.class_count());
    for c in 0..chain.class_count() {
        ctx.check()?;
        let e = chain.elems[chain.representative(c)];
        let q = match lemma54_feature(&train.db, e, &entities, k, max_nodes) {
            Ok(q) => q,
            Err(ExtractError::Budget { nodes }) => return Ok(Err(GenError::Budget { nodes })),
            Err(ExtractError::DuplicatorWins) => unreachable!("filtered by lemma54_feature"),
        };
        features.push(q);
    }
    Ok(Ok(SeparatorModel {
        statistic: Statistic::new(features),
        classifier: chain.classifier.clone(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::evaluate_unary;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn generated_model_separates() {
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training();
        let model = ghw_generate(&t, 1, 10_000).unwrap();
        assert!(model.separates(&t), "{}", model.statistic);
        assert_eq!(model.statistic.dimension(), 3);
    }

    #[test]
    fn features_select_up_sets() {
        // Each generated q_{e_i} must select exactly the →_k-upward
        // closure of e_i on the training database.
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training();
        let model = ghw_generate(&t, 1, 10_000).unwrap();
        let chain = crate::sep_ghw::ghw_chain(&t, 1).unwrap();
        for (c, q) in model.statistic.features.iter().enumerate() {
            let e = chain.elems[chain.representative(c)];
            let selected = evaluate_unary(q, &t.db);
            for (j, &e2) in chain.elems.iter().enumerate() {
                let expect = covergame::cover_implies(&t.db, &[e], &t.db, &[e2], 1);
                assert_eq!(selected.contains(&e2), expect, "feature {c} at entity {j}");
            }
        }
    }

    #[test]
    fn inseparable_reports_not_separable() {
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        assert!(matches!(
            ghw_generate(&t, 1, 10_000),
            Err(GenError::NotSeparable)
        ));
    }

    #[test]
    fn tiny_budget_reports_budget() {
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .fact("E", &["3", "4"])
            .fact("E", &["4", "5"])
            .positive("1")
            .negative("5")
            .training();
        match ghw_generate(&t, 1, 1) {
            Err(GenError::Budget { .. }) => {}
            Ok(model) => assert!(model.separates(&t)),
            Err(other) => panic!("{other}"),
        }
    }

    #[test]
    fn generated_features_have_bounded_ghw() {
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training();
        let model = ghw_generate(&t, 1, 10_000).unwrap();
        for q in &model.statistic.features {
            assert!(cq::ghw(q) <= 1, "{q}");
        }
    }
}
