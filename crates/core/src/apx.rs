//! Approximate separability (§7): classification with an ε fraction of
//! errors allowed.
//!
//! * **`GHW(k)`** (Theorem 7.4, Algorithm 2): relabel each
//!   `→_k`-equivalence class by majority vote. The resulting labeling is
//!   `GHW(k)`-separable and provably disagreement-minimal, so
//!   `GHW(k)`-ApxSep and `GHW(k)`-ApxCls are polynomial (Corollary 7.5).
//! * **`CQ[m]`** (Propositions 7.2/7.3): the feature matrix is fixed by
//!   enumeration; approximate linear separability (NP-complete, [17]) is
//!   solved exactly by the branch-and-bound in `linsep::minerror`.
//! * **Hardness transfer** (Proposition 7.1): [`pad_for_error`] maps an
//!   exact separability instance to an ε-error instance by adding a block
//!   of mutually indistinguishable, conflictingly-labeled *anchor*
//!   entities that soak up the entire error budget.

use crate::cls_ghw::ghw_classify_in;
use crate::sep_ghw::{ghw_preorder_in, ghw_preorder_with};
use crate::statistic::SeparatorModel;
use cq::EnumConfig;
use engine::{Ctx, Engine, Interrupted};
use relational::{Database, Label, Labeling, Schema, TrainingDb};

/// Algorithm 2: the disagreement-minimal `GHW(k)`-separable relabeling
/// `λ'` of the training database (majority vote per `→_k`-class).
pub fn ghw_optimal_relabeling(train: &TrainingDb, k: usize) -> Labeling {
    ghw_optimal_relabeling_with(Engine::global(), train, k)
}

/// [`ghw_optimal_relabeling`] against a caller-supplied [`Engine`].
pub fn ghw_optimal_relabeling_with(engine: &Engine, train: &TrainingDb, k: usize) -> Labeling {
    ghw_optimal_relabeling_from(&ghw_preorder_with(engine, train, k), &train.labeling)
}

/// [`ghw_optimal_relabeling`] under a task context (interruptible).
pub fn ghw_optimal_relabeling_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
) -> Result<Labeling, Interrupted> {
    Ok(ghw_optimal_relabeling_from(
        &ghw_preorder_in(ctx, train, k)?,
        &train.labeling,
    ))
}

/// Algorithm 2 against a precomputed `→_k` preorder. The preorder depends
/// only on the database — not the labels — so callers sweeping noise
/// levels or labelings should compute it once and reuse it here.
pub fn ghw_optimal_relabeling_from(
    pre: &covergame::CoverPreorder,
    labeling: &Labeling,
) -> Labeling {
    let mut out = Labeling::new();
    for class in &pre.classes {
        let score: i32 = class
            .iter()
            .map(|&i| labeling.get(pre.elems[i]).to_i32())
            .sum();
        let label = Label::from_sign(score);
        for &i in class {
            out.set(pre.elems[i], label);
        }
    }
    out
}

/// The minimum achievable error count for `GHW(k)` statistics (the `δ` of
/// Corollary 7.5's proof, as a count rather than a fraction).
pub fn ghw_min_errors(train: &TrainingDb, k: usize) -> usize {
    ghw_min_errors_with(Engine::global(), train, k)
}

/// [`ghw_min_errors`] against a caller-supplied [`Engine`].
pub fn ghw_min_errors_with(engine: &Engine, train: &TrainingDb, k: usize) -> usize {
    train
        .labeling
        .disagreement(&ghw_optimal_relabeling_with(engine, train, k))
}

/// [`ghw_min_errors`] under a task context (interruptible).
pub fn ghw_min_errors_in(ctx: &Ctx, train: &TrainingDb, k: usize) -> Result<usize, Interrupted> {
    Ok(train
        .labeling
        .disagreement(&ghw_optimal_relabeling_in(ctx, train, k)?))
}

/// `GHW(k)`-ApxSep: is the training database separable with error ε?
pub fn ghw_apx_separable(train: &TrainingDb, k: usize, eps: f64) -> bool {
    ghw_apx_separable_with(Engine::global(), train, k, eps)
}

/// [`ghw_apx_separable`] against a caller-supplied [`Engine`].
pub fn ghw_apx_separable_with(engine: &Engine, train: &TrainingDb, k: usize, eps: f64) -> bool {
    ghw_apx_separable_in(&engine.ctx(), train, k, eps).expect("unbounded ctx cannot interrupt")
}

/// [`ghw_apx_separable`] under a task context (interruptible).
pub fn ghw_apx_separable_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
    eps: f64,
) -> Result<bool, Interrupted> {
    ctx.check()?;
    let n = train.entities().len();
    if n == 0 {
        return Ok(true);
    }
    let min = ghw_min_errors_in(ctx, train, k)? as f64;
    Ok(min <= eps * n as f64)
}

/// `GHW(k)`-ApxCls (Corollary 7.5): classify an evaluation database by a
/// pair that separates `(D, λ')` exactly — hence `(D, λ)` with minimal
/// error. Returns the evaluation labeling.
pub fn ghw_apx_classify(train: &TrainingDb, eval: &Database, k: usize) -> Labeling {
    ghw_apx_classify_with(Engine::global(), train, eval, k)
}

/// [`ghw_apx_classify`] against a caller-supplied [`Engine`].
pub fn ghw_apx_classify_with(
    engine: &Engine,
    train: &TrainingDb,
    eval: &Database,
    k: usize,
) -> Labeling {
    ghw_apx_classify_in(&engine.ctx(), train, eval, k).expect("unbounded ctx cannot interrupt")
}

/// [`ghw_apx_classify`] under a task context (interruptible).
pub fn ghw_apx_classify_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
    k: usize,
) -> Result<Labeling, Interrupted> {
    // The relabeled training database is a clone — identical content,
    // identical fingerprint — so every game the relabeling's preorder and
    // the classification sweep replay is a hit in the engine's game cache.
    let relabeled = TrainingDb::new(train.db.clone(), ghw_optimal_relabeling_in(ctx, train, k)?);
    Ok(ghw_classify_in(ctx, &relabeled, eval, k)?
        .expect("Algorithm 2's relabeling is GHW(k)-separable by construction"))
}

/// `CQ[m]`-ApxSep / feature generation with minimum error
/// (Propositions 7.2/7.3): returns the best model and its error count.
pub fn cqm_apx_generate(train: &TrainingDb, config: &EnumConfig) -> (SeparatorModel, usize) {
    cqm_apx_generate_with(Engine::global(), train, config)
}

/// [`cqm_apx_generate`] against a caller-supplied [`Engine`].
pub fn cqm_apx_generate_with(
    engine: &Engine,
    train: &TrainingDb,
    config: &EnumConfig,
) -> (SeparatorModel, usize) {
    cqm_apx_generate_in(&engine.ctx(), train, config).expect("unbounded ctx cannot interrupt")
}

/// [`cqm_apx_generate`] under a task context: the enumeration sweep and
/// the branch-and-bound min-error search both observe the handle.
pub fn cqm_apx_generate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    config: &EnumConfig,
) -> Result<(SeparatorModel, usize), Interrupted> {
    let (statistic, rows, labels) =
        crate::sep_cqm::column_reduced_statistic_in(ctx, train, config)?;
    let r = ctx.min_error(&rows, &labels)?;
    Ok((
        SeparatorModel {
            statistic,
            classifier: r.classifier,
        },
        r.errors,
    ))
}

/// `CQ[m]`-ApxSep decision.
pub fn cqm_apx_separable(train: &TrainingDb, config: &EnumConfig, eps: f64) -> bool {
    cqm_apx_separable_with(Engine::global(), train, config, eps)
}

/// [`cqm_apx_separable`] against a caller-supplied [`Engine`].
pub fn cqm_apx_separable_with(
    engine: &Engine,
    train: &TrainingDb,
    config: &EnumConfig,
    eps: f64,
) -> bool {
    cqm_apx_separable_in(&engine.ctx(), train, config, eps).expect("unbounded ctx cannot interrupt")
}

/// [`cqm_apx_separable`] under a task context (interruptible).
pub fn cqm_apx_separable_in(
    ctx: &Ctx,
    train: &TrainingDb,
    config: &EnumConfig,
    eps: f64,
) -> Result<bool, Interrupted> {
    ctx.check()?;
    let n = train.entities().len();
    if n == 0 {
        return Ok(true);
    }
    let (_, errors) = cqm_apx_generate_in(ctx, train, config)?;
    Ok(errors as f64 <= eps * n as f64)
}

/// The Proposition 7.1-style padding: build `(D', λ')` over a schema
/// extended with a fresh unary `anchor` symbol such that, for the *fixed*
/// `eps ∈ [0, 1/2)`, `(D', λ')` is `L`-separable with error `eps` iff
/// `(D, λ)` is `L`-separable exactly — for every CQ class `L` containing
/// the single-atom queries.
///
/// The anchors are `M` mutually indistinguishable entities (each with an
/// `anchor` fact), `⌈M/2⌉` positive and `⌊M/2⌋` negative, with `M` chosen
/// so the forced `⌊M/2⌋` errors leave a spare budget `< 1`.
pub fn pad_for_error(train: &TrainingDb, eps: f64) -> TrainingDb {
    assert!(
        (0.0..0.5).contains(&eps),
        "Proposition 7.1 needs ε ∈ [0, 1/2)"
    );
    let n = train.entities().len();

    // Choose the anchor count: the smallest even M with
    // ⌊eps·(n+M)⌋ == M/2, so the anchors' forced ⌊M/2⌋ errors consume the
    // error budget exactly, leaving none for the original entities.
    // Stepping M by 2 changes budget−forced by 0 or −1 (since 2·eps < 1),
    // so the equality is always hit; M = 0 means no padding needed.
    let budget_of = |m: usize| (eps * (n + m) as f64).floor() as usize;
    let mut m = 0usize;
    while budget_of(m) != m / 2 {
        m += 2;
        assert!(m <= 100 * n + 100, "anchor search failed to converge");
    }

    // Extended schema.
    let mut schema = Schema::new();
    let old = train.db.schema();
    for r in old.rel_ids() {
        schema.add_relation(old.name(r), old.arity(r));
    }
    if schema
        .rel_by_name(relational::schema::ENTITY_REL_NAME)
        .is_none()
    {
        let eta = schema.add_relation(relational::schema::ENTITY_REL_NAME, 1);
        schema.set_entity(eta);
    } else {
        let eta = schema
            .rel_by_name(relational::schema::ENTITY_REL_NAME)
            .unwrap();
        schema.set_entity(eta);
    }
    let anchor = schema.add_relation("anchor", 1);

    let mut db = Database::new(schema);
    for v in train.db.dom() {
        db.value(train.db.val_name(v));
    }
    for f in train.db.facts() {
        let rel = db.schema().rel_by_name(old.name(f.rel)).unwrap();
        let args = f
            .args
            .iter()
            .map(|&a| db.value(train.db.val_name(a)))
            .collect();
        db.add_fact(rel, args);
    }
    let mut labeling = Labeling::new();
    for e in train.entities() {
        labeling.set(
            db.val_by_name(train.db.val_name(e)).unwrap(),
            train.labeling.get(e),
        );
    }
    for i in 0..m {
        let a = db.value(&format!("_anchor{i}"));
        db.add_fact(anchor, vec![a]);
        db.add_entity(a);
        labeling.set(
            a,
            if i % 2 == 0 {
                Label::Positive
            } else {
                Label::Negative
            },
        );
    }
    TrainingDb::new(db, labeling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::DbBuilder;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    /// Path with one noisy label: 1→2→3→4, labels +,+,−,− except entity 2
    /// flipped to −... build both clean and noisy variants.
    fn path4(labels: [bool; 4]) -> TrainingDb {
        let mut b = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .fact("E", &["3", "4"]);
        for (i, &l) in labels.iter().enumerate() {
            let name = (i + 1).to_string();
            b = if l {
                b.positive(&name)
            } else {
                b.negative(&name)
            };
        }
        b.training()
    }

    #[test]
    fn separable_instance_has_zero_min_errors() {
        let t = path4([true, true, false, false]);
        assert_eq!(ghw_min_errors(&t, 1), 0);
        assert!(ghw_apx_separable(&t, 1, 0.0));
    }

    #[test]
    fn conflicting_twins_force_one_error() {
        // Two disjoint 2-cycles with conflicting labels inside each...
        // simplest: one 2-cycle labeled +/-: the class {a, b} is mixed,
        // majority is a tie -> relabel the whole class positive, 1 error.
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        assert_eq!(ghw_min_errors(&t, 1), 1);
        assert!(!ghw_apx_separable(&t, 1, 0.0));
        assert!(ghw_apx_separable(&t, 1, 0.5));
        // The relabeling is separable and classification succeeds.
        let lab = ghw_apx_classify(&t, &t.db, 1);
        let a = t.db.val_by_name("a").unwrap();
        let b = t.db.val_by_name("b").unwrap();
        assert_eq!(lab.get(a), lab.get(b), "twins get one label");
    }

    #[test]
    fn algorithm_2_is_optimal_on_small_instances() {
        // Brute force: every GHW(k)-separable labeling λ'' must disagree
        // at least as much as Algorithm 2's λ'.
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .fact("E", &["c", "d"])
            .fact("E", &["d", "c"])
            .positive("a")
            .positive("b")
            .positive("c")
            .negative("d")
            .training();
        let best = ghw_min_errors(&t, 1);
        let ents = t.entities();
        let mut brute = usize::MAX;
        for mask in 0u32..(1 << ents.len()) {
            let mut lab = Labeling::new();
            for (i, &e) in ents.iter().enumerate() {
                lab.set(
                    e,
                    if mask & (1 << i) != 0 {
                        Label::Positive
                    } else {
                        Label::Negative
                    },
                );
            }
            let cand = TrainingDb::new(t.db.clone(), lab.clone());
            if crate::sep_ghw::ghw_separable(&cand, 1) {
                brute = brute.min(t.labeling.disagreement(&lab));
            }
        }
        assert_eq!(best, brute);
    }

    #[test]
    fn cqm_apx_on_noisy_path() {
        // Flip one label on a CQ[1]-separable path; min errors must be 1.
        let clean = path4([true, true, true, false]);
        let (_, e0) = cqm_apx_generate(&clean, &EnumConfig::cqm(1));
        assert_eq!(e0, 0);
        let noisy = path4([true, false, true, false]);
        let (model, e1) = cqm_apx_generate(&noisy, &EnumConfig::cqm(1));
        assert_eq!(e1, 1);
        assert_eq!(model.errors(&noisy), 1);
        assert!(cqm_apx_separable(&noisy, &EnumConfig::cqm(1), 0.25));
        assert!(!cqm_apx_separable(&noisy, &EnumConfig::cqm(1), 0.2));
    }

    #[test]
    fn padding_preserves_separability_status() {
        for eps in [0.1, 0.25, 0.4] {
            // Separable instance.
            let t = path4([true, true, false, false]);
            let padded = pad_for_error(&t, eps);
            let n = padded.entities().len() as f64;
            let budget = (eps * n).floor();
            let min = ghw_min_errors(&padded, 1) as f64;
            assert!(
                min <= budget,
                "eps={eps}: separable instance must fit the budget ({min} > {budget})"
            );

            // Inseparable instance (mixed 2-cycle).
            let bad = DbBuilder::new(schema())
                .fact("E", &["a", "b"])
                .fact("E", &["b", "a"])
                .positive("a")
                .negative("b")
                .training();
            let padded = pad_for_error(&bad, eps);
            let n = padded.entities().len() as f64;
            let min = ghw_min_errors(&padded, 1) as f64;
            assert!(
                min > eps * n,
                "eps={eps}: inseparable instance must exceed the budget"
            );
        }
    }

    #[test]
    fn anchors_are_schema_visible() {
        let t = path4([true, true, false, false]);
        let padded = pad_for_error(&t, 0.25);
        assert!(padded.db.schema().rel_by_name("anchor").is_some());
        assert!(padded.entities().len() > t.entities().len());
    }
}
