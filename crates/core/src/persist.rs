//! Text serialization of separator models, so trained classifiers can be
//! stored, inspected, and reloaded (used by the `cqsep-cli` tool).
//!
//! Format (one item per line, `#` comments):
//!
//! ```text
//! feature q(x) :- eta(x), E(x,y)
//! feature q(x) :- eta(x), E(y,x)
//! threshold 1/2
//! weights 1 -1/3
//! ```
//!
//! Queries use the Datalog-ish syntax of `cq::parse`; weights and the
//! threshold are exact rationals.

use crate::statistic::{SeparatorModel, Statistic};
use cq::parse::parse_cq;
use linsep::LinearClassifier;
use numeric::Rat;
use relational::Schema;
use std::fmt;

/// Error from [`parse_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParseError(pub String);

impl fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model: {}", self.0)
    }
}

impl std::error::Error for ModelParseError {}

/// Render a model in the text format.
pub fn model_to_text(model: &SeparatorModel) -> String {
    let mut out = String::new();
    for q in &model.statistic.features {
        out.push_str(&format!("feature {q}\n"));
    }
    out.push_str(&format!("threshold {}\n", model.classifier.threshold));
    out.push_str("weights");
    for w in &model.classifier.weights {
        out.push_str(&format!(" {w}"));
    }
    out.push('\n');
    out
}

/// Parse a model against a schema (the schema is not stored in the model;
/// ship it alongside, e.g. as the database spec).
pub fn parse_model(schema: &Schema, text: &str) -> Result<SeparatorModel, ModelParseError> {
    let mut features = Vec::new();
    let mut threshold: Option<Rat> = None;
    let mut weights: Option<Vec<Rat>> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| ModelParseError(format!("line {}: {msg}", lineno + 1));
        // A bare directive (e.g. `weights` with zero weights) has no
        // trailing whitespace; treat the rest as empty then.
        let (kind, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match kind {
            "feature" => {
                let q = parse_cq(schema, rest.trim()).map_err(|e| err(format!("{e}")))?;
                if !q.is_unary() {
                    return Err(err("feature queries must be unary".into()));
                }
                features.push(q);
            }
            "threshold" => {
                threshold = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err("bad threshold rational".into()))?,
                );
            }
            "weights" => {
                let ws: Result<Vec<Rat>, _> = rest.split_whitespace().map(|w| w.parse()).collect();
                weights = Some(ws.map_err(|_| err("bad weight rational".into()))?);
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }
    let threshold = threshold.ok_or_else(|| ModelParseError("missing threshold".into()))?;
    let weights = weights.ok_or_else(|| ModelParseError("missing weights".into()))?;
    if weights.len() != features.len() {
        return Err(ModelParseError(format!(
            "{} weights for {} features",
            weights.len(),
            features.len()
        )));
    }
    Ok(SeparatorModel {
        statistic: Statistic::new(features),
        classifier: LinearClassifier::new(threshold, weights),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq::EnumConfig;
    use relational::DbBuilder;

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    #[test]
    fn roundtrip_preserves_behavior() {
        let t = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training();
        let model = crate::sep_cqm::cqm_generate(&t, &EnumConfig::cqm(1)).unwrap();
        let text = model_to_text(&model);
        let back = parse_model(&schema(), &text).unwrap();
        assert_eq!(back.statistic.dimension(), model.statistic.dimension());
        // Behavioral equality on the training database.
        let a = model.classify(&t.db);
        let b = back.classify(&t.db);
        for e in t.entities() {
            assert_eq!(a.get(e), b.get(e));
        }
        assert!(back.separates(&t));
    }

    #[test]
    fn rational_weights_roundtrip() {
        let text = "\
# a hand-written model
feature q(x) :- eta(x), E(x,y)
threshold -1/2
weights 2/3
";
        let model = parse_model(&schema(), text).unwrap();
        assert_eq!(model.classifier.threshold, numeric::qrat(-1, 2));
        assert_eq!(model.classifier.weights[0], numeric::qrat(2, 3));
        let again = parse_model(&schema(), &model_to_text(&model)).unwrap();
        assert_eq!(again.classifier.threshold, model.classifier.threshold);
    }

    #[test]
    fn errors_are_descriptive() {
        let s = schema();
        assert!(
            parse_model(&s, "feature q(x) :- nosuch(x)\nthreshold 0\nweights 1")
                .unwrap_err()
                .0
                .contains("line 1")
        );
        assert!(parse_model(&s, "threshold 0\nweights 1 2").is_err()); // arity mismatch
        assert!(parse_model(&s, "weights 1").is_err()); // missing threshold
        assert!(parse_model(&s, "bogus x").is_err());
        assert!(parse_model(&s, "threshold x\nweights").is_err());
    }

    #[test]
    fn zero_feature_model() {
        let text = "threshold -1\nweights\n";
        let model = parse_model(&schema(), text).unwrap();
        assert_eq!(model.statistic.dimension(), 0);
        // Classifies everything positive (0 >= -1).
        let d = DbBuilder::new(schema()).entity("a").build();
        let lab = model.classify(&d);
        assert_eq!(
            lab.get(d.val_by_name("a").unwrap()),
            relational::Label::Positive
        );
    }
}
