//! The chain-statistic construction shared by the CQ and GHW(k)
//! algorithms (proof of Lemma 5.4, after Kimelfeld–Ré).
//!
//! Both the unrestricted-CQ case (preorder: `e ⪯ e'` iff
//! `(D,e) → (D,e')`) and the `GHW(k)` case (preorder `→_k`) separate via
//! the same recipe: take the indistinguishability classes `E_1 ⋯ E_m` in
//! topological order, use the canonical features `q_{e_i}` whose value at
//! an entity `e` is `+1` iff `e_i ⪯ e`, and linearly separate the
//! resulting *down-set indicator* vectors. This module implements the
//! label-purity check, the class vectors, and the exact-LP classifier —
//! everything except the preorder itself, which the callers supply.

use engine::{Ctx, Engine, Interrupted};
use linsep::LinearClassifier;
use relational::{Label, TrainingDb, Val};

/// The chain structure of a training database under some
/// indistinguishability preorder `⪯` over its entities.
#[derive(Clone, Debug)]
pub struct ChainModel {
    /// Entities, aligned with the rows/columns of the preorder matrix.
    pub elems: Vec<Val>,
    /// Class id per entity; classes are numbered in topological order.
    pub class_of: Vec<usize>,
    /// Members (indices into `elems`) of each class.
    pub classes: Vec<Vec<usize>>,
    /// `class_leq[i][j]`: class `i ⪯` class `j`.
    pub class_leq: Vec<Vec<bool>>,
    /// The label of each class, when classes are label-pure.
    pub class_label: Vec<Label>,
    /// A linear classifier over the `m`-dimensional implicit chain
    /// statistic that reproduces the class labels.
    pub classifier: LinearClassifier,
}

/// Why a chain model could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// Two entities with different labels are mutually `⪯` — the
    /// inseparability criterion of Lemma 5.4 (2).
    MixedClass { pos: Val, neg: Val },
}

/// Build the chain model from a full preorder matrix
/// (`leq[i][j] = elems[i] ⪯ elems[j]`).
pub fn build_chain(
    train: &TrainingDb,
    elems: &[Val],
    leq: &[Vec<bool>],
) -> Result<ChainModel, ChainError> {
    build_chain_with(Engine::global(), train, elems, leq)
}

/// [`build_chain`] with the class-vector LP counted against a
/// caller-supplied [`Engine`].
pub fn build_chain_with(
    engine: &Engine,
    train: &TrainingDb,
    elems: &[Val],
    leq: &[Vec<bool>],
) -> Result<ChainModel, ChainError> {
    build_chain_in(&engine.ctx(), train, elems, leq).expect("unbounded ctx cannot interrupt")
}

/// [`build_chain`] under a task context: interruptible, with the LP
/// counted against the context's engine. Inseparability ([`ChainError`])
/// stays in the inner `Result`; interruption is the outer one.
pub fn build_chain_in(
    ctx: &Ctx,
    train: &TrainingDb,
    elems: &[Val],
    leq: &[Vec<bool>],
) -> Result<Result<ChainModel, ChainError>, Interrupted> {
    ctx.check()?;
    let n = elems.len();

    // Group into equivalence classes (mutual ⪯), failing on mixed labels.
    let mut class_of = vec![usize::MAX; n];
    let mut reps: Vec<usize> = Vec::new();
    for i in 0..n {
        match reps.iter().position(|&r| leq[i][r] && leq[r][i]) {
            Some(c) => {
                class_of[i] = c;
                if train.labeling.get(elems[i]) != train.labeling.get(elems[reps[c]]) {
                    let (pos, neg) = if train.labeling.get(elems[i]) == Label::Positive {
                        (elems[i], elems[reps[c]])
                    } else {
                        (elems[reps[c]], elems[i])
                    };
                    return Ok(Err(ChainError::MixedClass { pos, neg }));
                }
            }
            None => {
                class_of[i] = reps.len();
                reps.push(i);
            }
        }
    }

    // Topological sort of classes.
    let m = reps.len();
    let mut indeg = vec![0usize; m];
    for c in 0..m {
        for e in 0..m {
            if c != e && leq[reps[c]][reps[e]] {
                indeg[e] += 1;
            }
        }
    }
    let mut order = Vec::with_capacity(m);
    let mut ready: Vec<usize> = (0..m).filter(|&e| indeg[e] == 0).collect();
    while let Some(c) = ready.pop() {
        order.push(c);
        for e in 0..m {
            if c != e && leq[reps[c]][reps[e]] {
                indeg[e] -= 1;
                if indeg[e] == 0 {
                    ready.push(e);
                }
            }
        }
    }
    assert_eq!(order.len(), m, "preorder classes must form a DAG");
    let mut topo_pos = vec![0usize; m];
    for (pos, &c) in order.iter().enumerate() {
        topo_pos[c] = pos;
    }
    let reps_sorted: Vec<usize> = {
        let mut v = vec![0usize; m];
        for (old, &r) in reps.iter().enumerate() {
            v[topo_pos[old]] = r;
        }
        v
    };
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); m];
    for i in 0..n {
        class_of[i] = topo_pos[class_of[i]];
        classes[class_of[i]].push(i);
    }

    let class_leq: Vec<Vec<bool>> = (0..m)
        .map(|c| {
            (0..m)
                .map(|e| c == e || leq[reps_sorted[c]][reps_sorted[e]])
                .collect()
        })
        .collect();
    let class_label: Vec<Label> = (0..m)
        .map(|c| train.labeling.get(elems[reps_sorted[c]]))
        .collect();

    // Class vectors under the implicit chain statistic: component j of
    // class c is +1 iff class j ⪯ class c.
    let vectors: Vec<Vec<i32>> = (0..m)
        .map(|c| {
            (0..m)
                .map(|j| if class_leq[j][c] { 1 } else { -1 })
                .collect()
        })
        .collect();
    let labels: Vec<i32> = class_label.iter().map(|l| l.to_i32()).collect();
    let classifier = ctx
        .separate(&vectors, &labels)?
        .expect("chain vectors with label-pure classes are always linearly separable (Lemma 5.4)");

    Ok(Ok(ChainModel {
        elems: elems.to_vec(),
        class_of,
        classes,
        class_leq,
        class_label,
        classifier,
    }))
}

impl ChainModel {
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Index (into `elems`) of the representative of class `c`.
    pub fn representative(&self, c: usize) -> usize {
        self.classes[c][0]
    }

    /// Classify an arbitrary ±1 chain vector (component `j` answering
    /// "is `e_j ⪯ this entity`?").
    pub fn classify_vector(&self, v: &[i32]) -> Label {
        Label::from_sign(self.classifier.classify(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn train(labels: &[(&str, bool)]) -> TrainingDb {
        let mut b = DbBuilder::new(Schema::entity_schema());
        for &(n, l) in labels {
            b = if l { b.positive(n) } else { b.negative(n) };
        }
        b.training()
    }

    #[test]
    fn total_order_any_labeling_separates() {
        // Chain e0 ⪯ e1 ⪯ e2 ⪯ e3 with an alternating labeling: the
        // chain construction must still separate (this is the crux of
        // the Kimelfeld–Ré lemma the paper leans on).
        let t = train(&[("a", true), ("b", false), ("c", true), ("d", false)]);
        let elems = t.entities();
        let n = elems.len();
        let leq: Vec<Vec<bool>> = (0..n).map(|i| (0..n).map(|j| i <= j).collect()).collect();
        let m = build_chain(&t, &elems, &leq).unwrap();
        assert_eq!(m.class_count(), 4);
        for c in 0..4 {
            let v: Vec<i32> = (0..4).map(|j| if j <= c { 1 } else { -1 }).collect();
            assert_eq!(m.classify_vector(&v), m.class_label[c]);
        }
    }

    #[test]
    fn mixed_class_detected() {
        let t = train(&[("a", true), ("b", false)]);
        let elems = t.entities();
        let leq = vec![vec![true, true], vec![true, true]];
        match build_chain(&t, &elems, &leq) {
            Err(ChainError::MixedClass { pos, neg }) => {
                assert_eq!(t.labeling.get(pos), Label::Positive);
                assert_eq!(t.labeling.get(neg), Label::Negative);
            }
            other => panic!("expected mixed class, got {other:?}"),
        }
    }

    #[test]
    fn antichain_classes() {
        // Discrete preorder: every entity its own class; any labeling
        // separates (vectors are distinct unit-ish patterns).
        let t = train(&[("a", true), ("b", false), ("c", true)]);
        let elems = t.entities();
        let leq: Vec<Vec<bool>> = (0..3).map(|i| (0..3).map(|j| i == j).collect()).collect();
        let m = build_chain(&t, &elems, &leq).unwrap();
        assert_eq!(m.class_count(), 3);
        for c in 0..3 {
            let v: Vec<i32> = (0..3).map(|j| if j == c { 1 } else { -1 }).collect();
            assert_eq!(m.classify_vector(&v), m.class_label[c]);
        }
    }

    #[test]
    fn diamond_partial_order() {
        // bottom ⪯ {mid1, mid2} ⪯ top with labels +,-,-,+ .
        let t = train(&[("bot", true), ("m1", false), ("m2", false), ("top", true)]);
        let elems = t.entities();
        let idx = |n: &str| elems.iter().position(|&v| t.db.val_name(v) == n).unwrap();
        let (b, m1, m2, top) = (idx("bot"), idx("m1"), idx("m2"), idx("top"));
        let mut leq = vec![vec![false; 4]; 4];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        leq[b][m1] = true;
        leq[b][m2] = true;
        leq[b][top] = true;
        leq[m1][top] = true;
        leq[m2][top] = true;
        let m = build_chain(&t, &elems, &leq).unwrap();
        assert_eq!(m.class_count(), 4);
        // Check classification of each class's own vector.
        for c in 0..4 {
            let v: Vec<i32> = (0..4)
                .map(|j| if m.class_leq[j][c] { 1 } else { -1 })
                .collect();
            assert_eq!(m.classify_vector(&v), m.class_label[c], "class {c}");
        }
    }
}
