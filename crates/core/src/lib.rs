//! # cqsep — Regularizing Conjunctive Features for Classification
//!
//! A complete implementation of the algorithms and constructions of
//!
//! > P. Barceló, A. Baumgartner, V. Dalmau, B. Kimelfeld.
//! > *Regularizing Conjunctive Features for Classification.* PODS 2019.
//!
//! The framework (Kimelfeld–Ré): a **training database** `(D, λ)` labels
//! the entities `η(D)` of a relational database as ±1; a **statistic**
//! `Π = (q_1, …, q_n)` of unary CQ **feature queries** maps every entity
//! to a ±1 vector; `(D, λ)` is `L`-**separable** when some statistic over
//! the query class `L` makes the labeled vectors linearly separable.
//!
//! This crate provides, per section of the paper:
//!
//! | Module | Paper | Problem |
//! |---|---|---|
//! | [`sep_cq`] | Thm 3.2, §6.2 | unrestricted `CQ`-Sep (coNP baseline), generation, classification |
//! | [`sep_cqm`] | §4 | `CQ[m]` / `CQ[m,p]`-Sep + generation + classification (FPT/PTIME) |
//! | [`sep_ghw`] | §5.1 | `GHW(k)`-Sep in polynomial time (Thm 5.3) |
//! | [`gen_ghw`] | §5.2 | explicit (worst-case exponential) `GHW(k)` feature generation (Prop 5.6) |
//! | [`cls_ghw`] | §5.3 | `GHW(k)`-Cls **without materializing the statistic** (Thm 5.8, Algorithm 1) |
//! | [`sep_dim`] | §6 | bounded-dimension `L`-Sep[ℓ] / `L`-Sep[*] via QBE |
//! | [`sep_dim_naive`] | Lemma 6.3 | the literal guess-and-check test (cross-validation oracle) |
//! | [`reduction`] | Lemma 6.5 | the executable QBE → Sep[ℓ] reduction |
//! | [`apx`] | §7 | approximate separability: Algorithm 2, min-error `CQ[m]`, the ε-padding reduction (Prop 7.1) |
//! | [`generalize`] | §7, motivation | train/test evaluation of the regularized languages (held-out accuracy) |
//! | [`fo`] | §8 | FO / FO_k / ∃FO⁺ separability, dimension collapse, unbounded dimension |
//! | [`statistic`] | §2–3 | statistics, separator models, verification |
//! | [`persist`] | — | text (de)serialization of separator models |
//!
//! # Example
//!
//! ```
//! use cqsep::{cls_ghw, sep_ghw, DbBuilder, Schema};
//!
//! // An entity schema: the distinguished unary η plus one binary relation.
//! let mut schema = Schema::entity_schema();
//! schema.add_relation("cites", 2);
//!
//! // A labeled training database (D, λ).
//! let train = DbBuilder::new(schema.clone())
//!     .fact("cites", &["a", "b"])
//!     .fact("cites", &["b", "c"])
//!     .positive("a")
//!     .negative("b")
//!     .negative("c")
//!     .training();
//!
//! // GHW(1)-separability is decidable in polynomial time (Theorem 5.3)...
//! assert!(sep_ghw::ghw_separable(&train, 1));
//!
//! // ...and evaluation data is classifiable without materializing the
//! // feature queries (Theorem 5.8, Algorithm 1).
//! let eval = DbBuilder::new(schema)
//!     .fact("cites", &["x", "y"])
//!     .entity("x")
//!     .entity("y")
//!     .build();
//! let labels = cls_ghw::ghw_classify(&train, &eval, 1).unwrap();
//! assert_eq!(labels.len(), 2);
//! ```

pub mod apx;
pub mod chain;
pub mod cls_ghw;
pub mod fo;
pub mod gen_ghw;
pub mod generalize;
pub mod persist;
pub mod reduction;
pub mod sep_cq;
pub mod sep_cqm;
pub mod sep_dim;
pub mod sep_dim_naive;
pub mod sep_ghw;
pub mod statistic;

pub use generalize::{evaluate, evaluate_in, evaluate_with, EvalReport, FitMethod};
pub use statistic::{SeparatorModel, Statistic};

// Re-export the building blocks users need alongside the algorithms.
pub use cq::{Cq, EnumConfig};
pub use engine::{Ctx, Engine, EngineStats, Interrupt, Interrupted, Reason, RestoreSummary};
pub use linsep::LinearClassifier;
pub use relational::{Database, DbBuilder, Label, Labeling, Schema, TrainingDb, Val};
