//! The executable reduction of Lemma 6.5: `L`-QBE (over instances with
//! `S⁻ = dom(D) ∖ S⁺`) reduces in polynomial time to `L`-Sep[ℓ].
//!
//! Given `(D, S⁺, S⁻)` and `ℓ ≥ 1`, the construction extends the schema
//! with the entity symbol `η` and `ℓ − 1` fresh unary symbols
//! `κ_1 … κ_{ℓ-1}`, adds fresh constants `c⁻, c_1 … c_{ℓ-1}` with facts
//! `κ_i(c_i)`, makes *every* element an entity, and labels
//! `S⁺ ∪ {c_1 … c_{ℓ-1}}` positive and `S⁻ ∪ {c⁻}` negative. Then
//! `(D', λ)` is `L`-separable with ℓ features iff `(D, S⁺, S⁻)` has an
//! `L`-explanation: the `κ_i(x)` features burn `ℓ − 1` dimensions, pinning
//! the remaining one to be an explanation.
//!
//! Used by the test suite to cross-validate the QBE solvers against the
//! dimension-bounded separability solvers, exactly as the paper uses it
//! to transfer lower bounds (Theorem 6.6, Theorem 6.10).

use relational::{Database, Label, Labeling, Schema, TrainingDb, Val};

/// Output of the reduction: the training database and the images of the
/// original domain elements.
pub struct ReducedInstance {
    pub train: TrainingDb,
    /// Mapping from original element names to the new database's values.
    pub image: Vec<(String, Val)>,
}

/// Apply the Lemma 6.5 construction.
///
/// `pos` must be nonempty and `pos ∪ neg` must cover `dom(D)` (the
/// restricted QBE form the lemma requires).
///
/// # Panics
/// Panics if the input schema already has an entity symbol (the lemma
/// adds its own) or if `pos`/`neg` do not partition the domain.
pub fn qbe_to_sep_ell(d: &Database, pos: &[Val], neg: &[Val], ell: usize) -> ReducedInstance {
    assert!(ell >= 1, "dimension bound must be at least 1");
    assert!(!pos.is_empty(), "Lemma 6.5 requires a nonempty S+");
    assert!(
        d.schema().entity_rel().is_none(),
        "input schema must not have an entity symbol"
    );
    {
        let mut all: Vec<Val> = pos.iter().chain(neg.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        let dom: Vec<Val> = d.dom().collect();
        assert_eq!(all, dom, "S+ and S- must partition dom(D)");
    }

    // Extended schema: original relations + η + κ_1..κ_{ℓ-1}.
    let mut schema = Schema::new();
    for r in d.schema().rel_ids() {
        schema.add_relation(d.schema().name(r), d.schema().arity(r));
    }
    let eta = schema.add_relation(relational::schema::ENTITY_REL_NAME, 1);
    schema.set_entity(eta);
    let kappas: Vec<_> = (1..ell)
        .map(|i| schema.add_relation(&format!("kappa{i}"), 1))
        .collect();

    let mut db = Database::new(schema);
    // Copy D's elements (by name) and facts.
    let mut image = Vec::new();
    for v in d.dom() {
        let nv = db.value(d.val_name(v));
        image.push((d.val_name(v).to_string(), nv));
    }
    for f in d.facts() {
        let rel = db.schema().rel_by_name(d.schema().name(f.rel)).unwrap();
        let args: Vec<Val> = f.args.iter().map(|&a| db.value(d.val_name(a))).collect();
        db.add_fact(rel, args);
    }
    // Fresh constants and κ facts.
    let c_minus = db.value("c_minus");
    let cs: Vec<Val> = (1..ell).map(|i| db.value(&format!("c{i}"))).collect();
    for (i, &c) in cs.iter().enumerate() {
        db.add_fact(kappas[i], vec![c]);
    }
    // η(D') = everything.
    for v in db.dom().collect::<Vec<_>>() {
        db.add_entity(v);
    }

    // Labeling.
    let mut labeling = Labeling::new();
    for &p in pos {
        labeling.set(db.val_by_name(d.val_name(p)).unwrap(), Label::Positive);
    }
    for &n in neg {
        labeling.set(db.val_by_name(d.val_name(n)).unwrap(), Label::Negative);
    }
    for &c in &cs {
        labeling.set(c, Label::Positive);
    }
    labeling.set(c_minus, Label::Negative);

    ReducedInstance {
        train: TrainingDb::new(db, labeling),
        image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sep_dim::{cq_sep_dim, DimBudget};
    use relational::DbBuilder;

    /// Build a plain (non-entity) database for QBE inputs.
    fn qbe_db() -> Database {
        let mut s = Schema::new();
        s.add_relation("R", 1);
        s.add_relation("E", 2);
        DbBuilder::new(s)
            .fact("R", &["a"])
            .fact("R", &["b"])
            .fact("E", &["a", "c"])
            .build()
    }

    fn v(d: &Database, n: &str) -> Val {
        d.val_by_name(n).unwrap()
    }

    #[test]
    fn reduction_preserves_yes_instances() {
        let d = qbe_db();
        // S+ = {a, b} (the R elements), S- = {c}: R(x) explains.
        let pos = [v(&d, "a"), v(&d, "b")];
        let neg = [v(&d, "c")];
        assert!(qbe::cq_qbe_decide(&d, &pos, &neg, 100_000).unwrap());
        for ell in 1..=2 {
            let red = qbe_to_sep_ell(&d, &pos, &neg, ell);
            assert!(
                cq_sep_dim(&red.train, ell, &DimBudget::default()).unwrap(),
                "ℓ={ell}"
            );
        }
    }

    #[test]
    fn reduction_preserves_no_instances() {
        let d = qbe_db();
        // S+ = {a, c}, S- = {b}: a CQ true at both a (R, out-edge) and c
        // (in-edge only) shares only trivial properties, all true at b?
        // b has R but no edges; c has no R. Common queries of {a,c}:
        // purely existential ones, true at b as well. No explanation.
        let pos = [v(&d, "a"), v(&d, "c")];
        let neg = [v(&d, "b")];
        assert!(!qbe::cq_qbe_decide(&d, &pos, &neg, 100_000).unwrap());
        for ell in 1..=2 {
            let red = qbe_to_sep_ell(&d, &pos, &neg, ell);
            assert!(
                !cq_sep_dim(&red.train, ell, &DimBudget::default()).unwrap(),
                "ℓ={ell}"
            );
        }
    }

    #[test]
    fn reduction_shape() {
        let d = qbe_db();
        let pos = [v(&d, "a"), v(&d, "b")];
        let neg = [v(&d, "c")];
        let red = qbe_to_sep_ell(&d, &pos, &neg, 3);
        // dom(D') = dom(D) + c_minus + c1 + c2, all entities.
        assert_eq!(red.train.db.entities().len(), 3 + 3);
        assert_eq!(red.train.positives().len(), 2 + 2);
        assert_eq!(red.train.negatives().len(), 1 + 1);
        // κ relations exist.
        assert!(red.train.db.schema().rel_by_name("kappa1").is_some());
        assert!(red.train.db.schema().rel_by_name("kappa2").is_some());
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn partition_enforced() {
        let d = qbe_db();
        let pos = [v(&d, "a")];
        let neg = [v(&d, "c")];
        qbe_to_sep_ell(&d, &pos, &neg, 1);
    }
}
