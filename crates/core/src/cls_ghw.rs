//! `GHW(k)`-classification without materializing the statistic
//! (§5.3, Theorem 5.8, Algorithm 1).
//!
//! The paradox of §5: `GHW(k)`-separability is polynomial (Thm 5.3) but
//! the separating feature queries can be exponentially large (Thm 5.7) —
//! yet evaluation databases can still be classified in polynomial time,
//! because evaluating the implicit feature `q_{e_i}` at a new entity `f`
//! is just the game question `(D, e_i) →_k (D', f)` (Propositions 5.1 and
//! 5.2). This module is Algorithm 1 verbatim:
//!
//! 1. topologically sort the `→_k`-equivalence classes of `η(D)`;
//! 2. build the linear classifier over the implicit chain statistic
//!    (never constructing `Π`);
//! 3. label each `f ∈ η(D')` by playing the `m` cover games.

use crate::chain::ChainError;
use crate::sep_ghw::ghw_chain_in;
use engine::{Ctx, Engine, Interrupted};
use relational::{Database, Labeling, TrainingDb, Val};

/// `GHW(k)`-Cls (Algorithm 1): label the entities of `eval` consistently
/// with a statistic-classifier pair that separates `train`. Returns
/// `Err` when the training database is not `GHW(k)`-separable (the
/// problem promise is violated).
pub fn ghw_classify(train: &TrainingDb, eval: &Database, k: usize) -> Result<Labeling, ChainError> {
    ghw_classify_with(Engine::global(), train, eval, k)
}

/// [`ghw_classify`] against a caller-supplied [`Engine`].
pub fn ghw_classify_with(
    engine: &Engine,
    train: &TrainingDb,
    eval: &Database,
    k: usize,
) -> Result<Labeling, ChainError> {
    ghw_classify_in(&engine.ctx(), train, eval, k).expect("unbounded ctx cannot interrupt")
}

/// [`ghw_classify`] under a task context (interruptible).
pub fn ghw_classify_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
    k: usize,
) -> Result<Result<Labeling, ChainError>, Interrupted> {
    let chain = match ghw_chain_in(ctx, train, k)? {
        Ok(chain) => chain,
        Err(e) => return Ok(Err(e)),
    };
    // The games' left side is always the training database: build its
    // union skeleton once for all m × |η(D')| games. The games are
    // pairwise independent, so the whole m × |η(D')| grid fans out on
    // the parallel driver, memoizing through the engine's cache
    // (Algorithm 2 replays exactly these games after relabeling).
    // Workers swallow Stop with filler verdicts; the sticky post-fan-in
    // check discards the batch.
    let skeleton = covergame::UnionSkeleton::build(&train.db, k);
    let evals = eval.entities();
    let m = chain.class_count();
    let cells: Vec<(Val, usize)> = evals
        .iter()
        .flat_map(|&f| (0..m).map(move |c| (f, c)))
        .collect();
    // Lines 3–9 of Algorithm 1: 𝟙_{q_{e_i}(D')}(f) = +1 iff
    // (D, e_i) →_k (D', f).
    let verdicts = ctx.engine().par_map(&cells, |&(f, c)| {
        let e = chain.elems[chain.representative(c)];
        ctx.cover_implies_with_skeleton(&train.db, &[e], eval, &[f], &skeleton)
            .unwrap_or(false)
    });
    ctx.check()?;
    let mut out = Labeling::new();
    for (fi, &f) in evals.iter().enumerate() {
        let v: Vec<i32> = (0..m)
            .map(|c| if verdicts[fi * m + c] { 1 } else { -1 })
            .collect();
        out.set(f, chain.classify_vector(&v));
    }
    Ok(Ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Label, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn path_train() -> TrainingDb {
        DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training()
    }

    #[test]
    fn training_db_classified_consistently() {
        let t = path_train();
        let lab = ghw_classify(&t, &t.db, 1).unwrap();
        for e in t.entities() {
            assert_eq!(lab.get(e), t.labeling.get(e), "{}", t.db.val_name(e));
        }
    }

    #[test]
    fn eval_db_gets_pattern_based_labels() {
        let t = path_train();
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .fact("E", &["v", "w"])
            .fact("E", &["w", "x"])
            .entity("u")
            .entity("v")
            .entity("w")
            .entity("x")
            .build();
        let lab = ghw_classify(&t, &eval, 1).unwrap();
        // Under →_1, u/v start long out-paths like entity 1 or richer;
        // x is a pure sink like entity 3.
        let name = |s: &str| eval.val_by_name(s).unwrap();
        assert_eq!(lab.get(name("u")), Label::Positive);
        assert_eq!(lab.get(name("x")), Label::Negative);
    }

    #[test]
    fn inseparable_training_db_errors() {
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        assert!(ghw_classify(&t, &t.db, 1).is_err());
    }

    #[test]
    fn agrees_with_explicit_generation_when_feasible() {
        // Cross-check Algorithm 1 against the materialized statistic of
        // gen_ghw on a small instance.
        // Use an isomorphic copy of the training database as evaluation:
        // there the finite extracted features and the ideal implicit
        // features provably coincide, so the two classifiers must agree.
        // (On unrelated evaluation databases both outputs are *valid*
        // GHW(k)-Cls answers but need not be equal.)
        let t = path_train();
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .fact("E", &["v", "w"])
            .entity("u")
            .entity("v")
            .entity("w")
            .build();
        let implicit = ghw_classify(&t, &eval, 1).unwrap();
        let model = crate::gen_ghw::ghw_generate(&t, 1, 10_000)
            .expect("generation feasible on this instance");
        assert!(model.separates(&t));
        let explicit = model.classify(&eval);
        for f in eval.entities() {
            assert_eq!(implicit.get(f), explicit.get(f), "{}", eval.val_name(f));
        }
    }
}
