//! Bounded-dimension separability: `L`-Sep[ℓ] and `L`-Sep[*] (§6).
//!
//! Example 6.2 shows the pairwise-indistinguishability criterion breaks
//! once the dimension is capped; the `(L, ℓ)`-separability test
//! (Lemma 6.3) instead *guesses* a ±1 vector per entity, checks linear
//! separability, and asks an `L`-QBE oracle per coordinate. We implement
//! the guess with structure instead of brute force:
//!
//! * `L`-indistinguishable entities must receive identical vectors, so we
//!   work on indistinguishability classes;
//! * every feature's positive set is **upward closed** in the
//!   indistinguishability preorder (`e ⪯ e'` and `e ∈ q(D)` imply
//!   `e' ∈ q(D)`), so candidate coordinates are up-sets of the class
//!   poset;
//! * an up-set is a usable coordinate iff the QBE instance
//!   (up-set, complement) has an `L`-explanation — decided by the product
//!   construction for `CQ`/`GHW(k)` and by enumeration for `CQ[m]`.
//!
//! The search over ≤ ℓ explainable columns plus the exact LP is the
//! (necessarily) exponential part: `CQ`-Sep[ℓ] is coNEXPTIME-complete and
//! `GHW(k)`-Sep[ℓ] EXPTIME-complete (Theorem 6.6), `CQ[m]`-Sep[ℓ]
//! NP-complete (Theorem 6.10). That part is engineered, not just
//! endured: candidate columns are deduplicated (exact duplicates *and*
//! complements — negating a weight realizes the complement) by
//! [`dedup_column_indices`] before the sweep, and [`search_columns`]
//! fans the ≤ ℓ-subset enumeration out under the [`Engine`]'s thread
//! budget, refuting most subsets with a cheap conflict scan before any
//! LP is assembled.

use engine::{Ctx, Engine, Interrupted};
use linsep::{has_label_conflict, LpBackend, SepBasis};
use qbe::QbeError;
use relational::{Database, TrainingDb, Val};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Which feature class the dimension-bounded search runs over.
#[derive(Clone, Debug)]
pub enum DimClass {
    /// All conjunctive queries (QBE oracle: product homomorphism).
    Cq,
    /// CQs of generalized hypertree width ≤ k (QBE oracle: `→_k`).
    Ghw(usize),
}

/// Errors from the dimension-bounded search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimError {
    /// The product construction inside a QBE call blew its budget.
    Qbe(QbeError),
    /// More up-sets than the configured cap (the class poset is too wide
    /// for exhaustive search at this budget).
    TooManyUpsets { cap: usize },
}

impl fmt::Display for DimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimError::Qbe(e) => write!(f, "QBE oracle failed: {e}"),
            DimError::TooManyUpsets { cap } => {
                write!(f, "more than {cap} candidate feature columns")
            }
        }
    }
}

impl std::error::Error for DimError {}

impl From<QbeError> for DimError {
    fn from(e: QbeError) -> DimError {
        DimError::Qbe(e)
    }
}

/// Resource budgets for the search.
#[derive(Clone, Debug)]
pub struct DimBudget {
    /// Fact budget for each QBE product construction.
    pub product_budget: usize,
    /// Cap on the number of enumerated up-sets (candidate columns).
    pub max_upsets: usize,
}

impl Default for DimBudget {
    fn default() -> DimBudget {
        DimBudget {
            product_budget: 2_000_000,
            max_upsets: 1 << 16,
        }
    }
}

/// Decide `L`-Sep[ℓ]: is `train` separable by a statistic of at most
/// `ell` features from the class? (With `ell` from the input this is the
/// `L`-Sep[*] variant — same code, per the paper's definitions.)
pub fn sep_dim(
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    sep_dim_with(Engine::global(), train, class, ell, budget)
}

/// [`sep_dim`] against a caller-supplied [`Engine`].
pub fn sep_dim_with(
    engine: &Engine,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    Ok(sep_dim_witness_with(engine, train, class, ell, budget)?.is_some())
}

/// [`sep_dim`] under a task context (interruptible).
pub fn sep_dim_in(
    ctx: &Ctx,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<Result<bool, DimError>, Interrupted> {
    Ok(sep_dim_witness_in(ctx, train, class, ell, budget)?.map(|w| w.is_some()))
}

/// One feature coordinate per entry: the `(positive, negative)` entity
/// split it must realize.
pub type WitnessSplits = Vec<(Vec<Val>, Vec<Val>)>;

/// As [`sep_dim`], but on success returns, for each chosen feature
/// coordinate, the `(positive, negative)` entity split it must realize —
/// i.e. the QBE instances whose explanations form a witnessing statistic
/// (fed to [`sep_dim_generate`]).
pub fn sep_dim_witness(
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<Option<WitnessSplits>, DimError> {
    sep_dim_witness_with(Engine::global(), train, class, ell, budget)
}

/// [`sep_dim_witness`] against a caller-supplied [`Engine`]: the preorder
/// sweep, QBE oracle calls, and subset-search LPs all run through (and
/// count against) `engine`.
pub fn sep_dim_witness_with(
    engine: &Engine,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<Option<WitnessSplits>, DimError> {
    sep_dim_witness_in(&engine.ctx(), train, class, ell, budget)
        .expect("unbounded ctx cannot interrupt")
}

/// [`sep_dim_witness`] under a task context: the preorder sweep, every
/// QBE oracle call, and the subset search all observe the handle.
pub fn sep_dim_witness_in(
    ctx: &Ctx,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
) -> Result<Result<Option<WitnessSplits>, DimError>, Interrupted> {
    ctx.check()?;
    let elems = train.entities();
    if elems.is_empty() {
        return Ok(Ok(Some(Vec::new())));
    }
    let n = elems.len();

    // Indistinguishability preorder for the class.
    let leq = preorder_matrix_in(ctx, &train.db, &elems, class)?;

    // Equivalence classes; mixed-label classes are hopeless at any ℓ.
    let mut class_of = vec![usize::MAX; n];
    let mut reps: Vec<usize> = Vec::new();
    for i in 0..n {
        match reps.iter().position(|&r| leq[i][r] && leq[r][i]) {
            Some(c) => class_of[i] = c,
            None => {
                class_of[i] = reps.len();
                reps.push(i);
            }
        }
    }
    let m = reps.len();
    for i in 0..n {
        for j in 0..n {
            if class_of[i] == class_of[j]
                && train.labeling.get(elems[i]) != train.labeling.get(elems[j])
            {
                return Ok(Ok(None));
            }
        }
    }

    // Class-level strict order for up-set enumeration.
    let class_leq: Vec<Vec<bool>> = (0..m)
        .map(|c| (0..m).map(|e| leq[reps[c]][reps[e]]).collect())
        .collect();

    // Enumerate up-sets of the class poset.
    let upsets = match enumerate_upsets(&class_leq, budget.max_upsets) {
        Some(u) => u,
        None => {
            return Ok(Err(DimError::TooManyUpsets {
                cap: budget.max_upsets,
            }))
        }
    };

    // Filter to QBE-explainable columns, as ±1 class vectors.
    let mut columns: Vec<Vec<i32>> = Vec::new();
    let mut column_sets: Vec<(Vec<Val>, Vec<Val>)> = Vec::new();
    for u in &upsets {
        let pos: Vec<Val> = (0..n)
            .filter(|&i| u[class_of[i]])
            .map(|i| elems[i])
            .collect();
        let neg: Vec<Val> = (0..n)
            .filter(|&i| !u[class_of[i]])
            .map(|i| elems[i])
            .collect();
        let explainable = if pos.is_empty() {
            // A constant-false feature: any CQ false on all entities. It
            // never helps linear separability beyond a constant column,
            // but include it iff such a query exists; the always-true
            // column covers the complementary constant. Checking
            // existence in general is class-specific; we conservatively
            // skip the empty column (a constant feature cannot change
            // separability: flipping its weight's sign absorbs it).
            false
        } else {
            let verdict = match class {
                DimClass::Cq => {
                    engine::cq_qbe_decide_in(ctx, &train.db, &pos, &neg, budget.product_budget)?
                }
                DimClass::Ghw(k) => engine::ghw_qbe_decide_in(
                    ctx,
                    &train.db,
                    &pos,
                    &neg,
                    *k,
                    budget.product_budget,
                )?,
            };
            match verdict {
                Ok(b) => b,
                Err(e) => return Ok(Err(e.into())),
            }
        };
        if explainable {
            columns.push((0..m).map(|c| if u[c] { 1 } else { -1 }).collect());
            column_sets.push((pos, neg));
        }
    }

    // Distinct up-sets give distinct columns, so within this arm only
    // complement pairs can collide — but the shared helper drops both
    // kinds. Done after the QBE filter because explainability is not
    // complement-symmetric (the complement of an explainable split need
    // not be explainable); LP separability is, so the search loses
    // nothing.
    let keep = dedup_column_indices(&columns);
    if keep.len() < columns.len() {
        columns = keep.iter().map(|&j| columns[j].clone()).collect();
        column_sets = keep.iter().map(|&j| column_sets[j].clone()).collect();
    }

    // Search subsets of ≤ ℓ columns for one that linearly separates the
    // class labels.
    let labels: Vec<i32> = reps
        .iter()
        .map(|&r| train.labeling.get(elems[r]).to_i32())
        .collect();
    Ok(Ok(search_columns_in(ctx, &columns, &labels, ell)?.map(
        |chosen| chosen.into_iter().map(|c| column_sets[c].clone()).collect(),
    )))
}

/// Convenience wrappers matching the paper's problem names.
pub fn cq_sep_dim(train: &TrainingDb, ell: usize, budget: &DimBudget) -> Result<bool, DimError> {
    sep_dim(train, &DimClass::Cq, ell, budget)
}

pub fn ghw_sep_dim(
    train: &TrainingDb,
    k: usize,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    sep_dim(train, &DimClass::Ghw(k), ell, budget)
}

/// [`cq_sep_dim`] against a caller-supplied [`Engine`].
pub fn cq_sep_dim_with(
    engine: &Engine,
    train: &TrainingDb,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    sep_dim_with(engine, train, &DimClass::Cq, ell, budget)
}

/// [`ghw_sep_dim`] against a caller-supplied [`Engine`].
pub fn ghw_sep_dim_with(
    engine: &Engine,
    train: &TrainingDb,
    k: usize,
    ell: usize,
    budget: &DimBudget,
) -> Result<bool, DimError> {
    sep_dim_with(engine, train, &DimClass::Ghw(k), ell, budget)
}

/// [`cq_sep_dim`] under a task context (interruptible).
pub fn cq_sep_dim_in(
    ctx: &Ctx,
    train: &TrainingDb,
    ell: usize,
    budget: &DimBudget,
) -> Result<Result<bool, DimError>, Interrupted> {
    sep_dim_in(ctx, train, &DimClass::Cq, ell, budget)
}

/// [`ghw_sep_dim`] under a task context (interruptible).
pub fn ghw_sep_dim_in(
    ctx: &Ctx,
    train: &TrainingDb,
    k: usize,
    ell: usize,
    budget: &DimBudget,
) -> Result<Result<bool, DimError>, Interrupted> {
    sep_dim_in(ctx, train, &DimClass::Ghw(k), ell, budget)
}

/// `CQ[m]`-Sep[ℓ] / `CQ[m]`-Sep[*] (§6.3): enumerate the `CQ[m]` feature
/// queries, deduplicate their indicator columns, and search for ≤ ℓ
/// columns that linearly separate. NP-complete (Theorem 6.10); exact.
pub fn cqm_sep_dim(train: &TrainingDb, config: &cq::EnumConfig, ell: usize) -> bool {
    cqm_sep_dim_with(Engine::global(), train, config, ell)
}

/// [`cqm_sep_dim`] against a caller-supplied [`Engine`].
pub fn cqm_sep_dim_with(
    engine: &Engine,
    train: &TrainingDb,
    config: &cq::EnumConfig,
    ell: usize,
) -> bool {
    cqm_sep_dim_in(&engine.ctx(), train, config, ell).expect("unbounded ctx cannot interrupt")
}

/// [`cqm_sep_dim`] under a task context: the candidate enumeration sweep
/// and the subset search both observe the handle.
pub fn cqm_sep_dim_in(
    ctx: &Ctx,
    train: &TrainingDb,
    config: &cq::EnumConfig,
    ell: usize,
) -> Result<bool, Interrupted> {
    ctx.check()?;
    // Syntactic enumeration suffices: the column deduplication below
    // subsumes logical-equivalence dedup for this fixed training
    // database, at a fraction of the cost.
    let statistic = crate::sep_cqm::full_statistic(&train.db, &config.clone().syntactic());
    let elems = train.entities();
    let rows = statistic.apply_in(ctx, &train.db, &elems)?;
    let labels: Vec<i32> = elems
        .iter()
        .map(|&e| train.labeling.get(e).to_i32())
        .collect();
    // Transpose to columns and deduplicate (also dropping complements:
    // negating a feature's weight realizes the complement column).
    let nfeat = statistic.dimension();
    let all: Vec<Vec<i32>> = (0..nfeat)
        .map(|j| rows.iter().map(|r| r[j]).collect())
        .collect();
    let columns: Vec<Vec<i32>> = dedup_column_indices(&all)
        .into_iter()
        .map(|j| all[j].clone())
        .collect();
    // Rows here are entities (not classes); search directly.
    Ok(search_columns_in(ctx, &columns, &labels, ell)?.is_some())
}

/// Generate an explicit ℓ-feature separating model (statistic +
/// classifier) for `L`-Sep[ℓ], or `None` when the instance is not
/// ℓ-separable. The features are QBE explanations of the witness
/// coordinates: product-canonical CQs for `CQ`, cover-game extractions
/// for `GHW(k)` — both worst-case exponential in size (Theorem 6.7), so
/// `extract_budget` caps the `GHW(k)` unfoldings.
pub fn sep_dim_generate(
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
    extract_budget: usize,
) -> Result<Option<crate::statistic::SeparatorModel>, DimError> {
    sep_dim_generate_with(Engine::global(), train, class, ell, budget, extract_budget)
}

/// [`sep_dim_generate`] against a caller-supplied [`Engine`].
pub fn sep_dim_generate_with(
    engine: &Engine,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
    extract_budget: usize,
) -> Result<Option<crate::statistic::SeparatorModel>, DimError> {
    sep_dim_generate_in(&engine.ctx(), train, class, ell, budget, extract_budget)
        .expect("unbounded ctx cannot interrupt")
}

/// [`sep_dim_generate`] under a task context (interruptible).
pub fn sep_dim_generate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
    extract_budget: usize,
) -> Result<Result<Option<crate::statistic::SeparatorModel>, DimError>, Interrupted> {
    let witness = match sep_dim_witness_in(ctx, train, class, ell, budget)? {
        Ok(Some(w)) => w,
        Ok(None) => return Ok(Ok(None)),
        Err(e) => return Ok(Err(e)),
    };
    let mut features: Vec<cq::Cq> = Vec::with_capacity(witness.len());
    for (pos, neg) in &witness {
        let explained = match class {
            DimClass::Cq => {
                engine::cq_qbe_explain_in(ctx, &train.db, pos, neg, budget.product_budget)?
            }
            DimClass::Ghw(k) => engine::ghw_qbe_explain_in(
                ctx,
                &train.db,
                pos,
                neg,
                *k,
                budget.product_budget,
                extract_budget,
            )?,
        };
        let q = match explained {
            Ok(q) => q.expect("witness coordinate was QBE-verified explainable"),
            Err(e) => return Ok(Err(e.into())),
        };
        features.push(q.with_entity_guard());
    }
    // A zero-feature witness (uniform labels) still needs a classifier.
    let statistic = crate::statistic::Statistic::new(features);
    let entities = train.entities();
    let rows = statistic.apply_in(ctx, &train.db, &entities)?;
    let labels: Vec<i32> = entities
        .iter()
        .map(|&e| train.labeling.get(e).to_i32())
        .collect();
    let classifier = ctx
        .separate(&rows, &labels)?
        .expect("witness columns were LP-verified separable");
    Ok(Ok(Some(crate::statistic::SeparatorModel {
        statistic,
        classifier,
    })))
}

/// `L`-Cls[ℓ]: classify an evaluation database with an explicit
/// ℓ-feature model generated from the training database (the
/// classification counterpart the paper notes for the constructive
/// cases, e.g. `CQ[m]`-Cls[*] in Prop 6.8).
pub fn sep_dim_classify(
    train: &TrainingDb,
    eval: &Database,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
    extract_budget: usize,
) -> Result<Option<relational::Labeling>, DimError> {
    sep_dim_classify_with(
        Engine::global(),
        train,
        eval,
        class,
        ell,
        budget,
        extract_budget,
    )
}

/// [`sep_dim_classify`] against a caller-supplied [`Engine`].
pub fn sep_dim_classify_with(
    engine: &Engine,
    train: &TrainingDb,
    eval: &Database,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
    extract_budget: usize,
) -> Result<Option<relational::Labeling>, DimError> {
    Ok(
        sep_dim_generate_with(engine, train, class, ell, budget, extract_budget)?
            .map(|model| model.classify(eval)),
    )
}

/// [`sep_dim_classify`] under a task context (interruptible).
pub fn sep_dim_classify_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
    class: &DimClass,
    ell: usize,
    budget: &DimBudget,
    extract_budget: usize,
) -> Result<Result<Option<relational::Labeling>, DimError>, Interrupted> {
    Ok(
        sep_dim_generate_in(ctx, train, class, ell, budget, extract_budget)?
            .map(|model| model.map(|m| m.classify(eval))),
    )
}

/// The indistinguishability preorder matrix for the class, under a task
/// context: workers swallow Stop with filler verdicts; the sticky
/// post-fan-in check discards the matrix.
fn preorder_matrix_in(
    ctx: &Ctx,
    d: &Database,
    elems: &[Val],
    class: &DimClass,
) -> Result<Vec<Vec<bool>>, Interrupted> {
    let n = elems.len();
    // n² independent indistinguishability queries: run them on the
    // engine's parallel driver, with both query kinds memoized by
    // database content in the engine's tables.
    let cells: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    let flat = ctx.engine().par_map(&cells, |&(i, j)| {
        i == j
            || match class {
                DimClass::Cq => ctx
                    .hom_exists(d, d, &[(elems[i], elems[j])])
                    .unwrap_or(false),
                DimClass::Ghw(k) => ctx
                    .cover_implies(d, &[elems[i]], d, &[elems[j]], *k)
                    .unwrap_or(false),
            }
    });
    ctx.check()?;
    Ok(flat.chunks(n.max(1)).map(|row| row.to_vec()).collect())
}

/// All up-sets of the class preorder, as membership vectors; `None` if
/// more than `cap`.
///
/// Generated directly (no subset filtering): classes are processed from
/// ⪯-maximal to ⪯-minimal; a class may be included only when all its
/// strict successors already are, so every branch of the recursion emits
/// a valid up-set — `O(#up-sets · m²)` total, independent of `2^m`.
fn enumerate_upsets(class_leq: &[Vec<bool>], cap: usize) -> Option<Vec<Vec<bool>>> {
    let m = class_leq.len();
    // Compute a reverse topological order (successors first), so that
    // when a class is decided all its strict successors already are.
    let order: Vec<usize> = {
        let mut indeg = vec![0usize; m]; // # strict predecessors
        for (c, row) in class_leq.iter().enumerate() {
            for (e, &le) in row.iter().enumerate() {
                if c != e && le {
                    indeg[e] += 1;
                }
            }
        }
        let mut topo = Vec::with_capacity(m);
        let mut ready: Vec<usize> = (0..m).filter(|&e| indeg[e] == 0).collect();
        while let Some(c) = ready.pop() {
            topo.push(c);
            for e in 0..m {
                if c != e && class_leq[c][e] {
                    indeg[e] -= 1;
                    if indeg[e] == 0 {
                        ready.push(e);
                    }
                }
            }
        }
        assert_eq!(topo.len(), m, "class preorder must be acyclic");
        topo.reverse();
        topo
    };

    fn rec(
        class_leq: &[Vec<bool>],
        order: &[usize],
        i: usize,
        current: &mut Vec<bool>,
        out: &mut Vec<Vec<bool>>,
        cap: usize,
    ) -> bool {
        if out.len() > cap {
            return false;
        }
        if i == order.len() {
            out.push(current.clone());
            return out.len() <= cap;
        }
        let c = order[i];
        // Exclude c.
        current[c] = false;
        if !rec(class_leq, order, i + 1, current, out, cap) {
            return false;
        }
        // Include c: allowed iff every strict successor is included.
        let ok = (0..class_leq.len()).all(|e| e == c || !class_leq[c][e] || current[e]);
        if ok {
            current[c] = true;
            if !rec(class_leq, order, i + 1, current, out, cap) {
                return false;
            }
            current[c] = false;
        }
        true
    }

    let mut out = Vec::new();
    let mut current = vec![false; m];
    if rec(class_leq, &order, 0, &mut current, &mut out, cap) {
        Some(out)
    } else {
        None
    }
}

/// Indices of a canonical subset of `columns` after dropping exact
/// duplicates and complements. For ±1 features `w·(−c̄) = (−w)·c̄`, so a
/// weight flip realizes any dropped complement and LP separability over
/// the kept columns equals separability over the full set. Returning
/// indices (first occurrence wins) lets callers keep side tables — the
/// QBE splits in [`sep_dim_witness`], the queries in [`cqm_sep_dim`] —
/// aligned with the surviving columns.
pub fn dedup_column_indices(columns: &[Vec<i32>]) -> Vec<usize> {
    let mut seen: HashSet<Vec<i32>> = HashSet::with_capacity(columns.len());
    let mut keep = Vec::new();
    for (j, col) in columns.iter().enumerate() {
        let flipped: Vec<i32> = col.iter().map(|&x| -x).collect();
        if seen.insert(col.clone()) && !seen.contains(&flipped) {
            keep.push(j);
        }
    }
    keep
}

/// Lexicographic `k`-combination generator over `0..n`, yielding into a
/// caller-owned buffer so the parallel sweep can work block by block with
/// bounded memory.
struct Combinations {
    n: usize,
    k: usize,
    cur: Vec<usize>,
    done: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Combinations {
        Combinations {
            n,
            k,
            cur: (0..k).collect(),
            done: k > n,
        }
    }

    fn next_combo(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // Advance: rightmost position that can still move right.
        let (n, k) = (self.n, self.k);
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.cur[i] < n - k + i {
                self.cur[i] += 1;
                for j in i + 1..k {
                    self.cur[j] = self.cur[j - 1] + 1;
                }
                break;
            }
        }
        Some(out)
    }
}

/// Combinations per parallel block: large enough to keep every worker
/// busy between early-exit checks, small enough that a hit near the
/// front of a size class wastes little speculative work (and memory
/// stays bounded however many subsets the sweep spans).
const SEARCH_BLOCK: usize = 256;

/// Does this column subset linearly separate the labels? The cheap
/// `O(rows·ℓ)` conflict scan (identical projected rows with opposite
/// labels) refutes most non-separating subsets before any LP exists —
/// those hits are reported to the LP engine's prune counter.
fn subset_separates(ctx: &Ctx, columns: &[Vec<i32>], labels: &[i32], chosen: &[usize]) -> bool {
    let rows: Vec<Vec<i32>> = (0..labels.len())
        .map(|r| chosen.iter().map(|&c| columns[c][r]).collect())
        .collect();
    if has_label_conflict(&rows, labels) {
        ctx.engine().record_conflict_prune();
        return false;
    }
    // A Stop mid-LP yields a filler `false`; the callers' sticky
    // re-checks discard the whole sweep when the handle tripped.
    ctx.separate(&rows, labels)
        .map(|c| c.is_some())
        .unwrap_or(false)
}

/// Cap on retained parent bases per size class: beyond this many subsets
/// the full map stops growing (lookups just miss; correctness is
/// untouched — a miss means a cold solve).
const BASIS_STORE_CAP: usize = 1 << 16;

/// Optimal-basis cache for the size-ascending subset sweep: the reason
/// the warm-started sparse backend pays off.
///
/// Two maps, both keyed so that the *next* LP can find a starting basis
/// in O(1):
///
/// * `full` — bases from the **previous** size class, keyed by the whole
///   subset that produced them. When the sweep at size `k` tests
///   `S ∪ {j}`, the key `S` (= the first `k − 1` chosen columns, since
///   enumeration is lexicographic) recovers the parent's basis, offered
///   as a [`Warm::Basis`] extension.
/// * `sibling` — the latest basis from the **current** size class, keyed
///   by the subset's `k − 1`-column prefix. Lexicographic order visits
///   all `prefix + [j]` consecutively, and sibling bases that exclude
///   the one dirty column are reusable verbatim (the near-free
///   [`Warm::Reuse`] path) — this is what keeps the sweep warm even when
///   every smaller subset was conflict-pruned and `full` is empty.
///
/// Shared across the parallel fan-out behind a mutex; entries are
/// `Arc`-cloned out so the lock is never held across an LP. Warm offers
/// are *verified* downstream (feasibility of the reassembled basis
/// against the actual instance), so a stale or concurrent overwrite can
/// cost pivots but never change a verdict.
struct BasisStore {
    maps: Mutex<BasisMaps>,
}

#[derive(Default)]
struct BasisMaps {
    full: HashMap<Vec<usize>, Arc<SepBasis>>,
    sibling: HashMap<Vec<usize>, Arc<SepBasis>>,
    /// Newest basis of the current size class, offered when both keyed
    /// lookups miss. A basis from *any* same-shape subset is a valid
    /// seed — the variable tags remap positionally and feasibility is
    /// re-verified against the actual columns — so even a subset whose
    /// prefix was never solved starts from a plausible vertex instead
    /// of the all-slack origin.
    latest: Option<Arc<SepBasis>>,
}

impl BasisStore {
    fn new() -> BasisStore {
        BasisStore {
            maps: Mutex::new(BasisMaps::default()),
        }
    }

    /// Enter size class `k`: siblings from the previous class are no
    /// longer siblings, and only bases of arity `k − 1` can still serve
    /// as parents.
    fn begin_size_class(&self, k: usize) {
        let mut maps = self.maps.lock().unwrap();
        maps.sibling.clear();
        maps.latest = None;
        maps.full.retain(|key, _| key.len() + 1 == k);
    }

    /// Best available starting basis for `chosen`, preferring a clean
    /// sibling (whole-factorization reuse) over the parent (basis
    /// extension) over a dirty sibling (remap + refactorize) over the
    /// newest same-shape basis from anywhere in the size class.
    fn lookup(&self, chosen: &[usize], nrows: usize) -> Option<Arc<SepBasis>> {
        let prefix = &chosen[..chosen.len() - 1];
        let maps = self.maps.lock().unwrap();
        let sib = maps.sibling.get(prefix);
        if let Some(sb) = sib {
            if sb.reuses_cleanly(chosen.len(), nrows) {
                return Some(Arc::clone(sb));
            }
        }
        maps.full
            .get(prefix)
            .or(sib)
            .or(maps.latest.as_ref())
            .map(Arc::clone)
    }

    /// Record the optimal basis of `chosen` for its lexicographic
    /// successors (sibling map and same-class fallback, latest wins) and
    /// for the next size class (full map, capped).
    fn store(&self, chosen: &[usize], basis: Arc<SepBasis>) {
        let mut maps = self.maps.lock().unwrap();
        maps.sibling
            .insert(chosen[..chosen.len() - 1].to_vec(), Arc::clone(&basis));
        maps.latest = Some(Arc::clone(&basis));
        if maps.full.len() < BASIS_STORE_CAP {
            maps.full.insert(chosen.to_vec(), basis);
        }
    }
}

/// [`subset_separates`] through the warm-start machinery: consult the
/// [`BasisStore`] for a starting basis, solve on the chosen backend, and
/// bank the optimal basis (returned even for inseparable subsets — the
/// LP is solved to optimality either way) for the subsets still to come.
fn subset_separates_warm(
    ctx: &Ctx,
    columns: &[Vec<i32>],
    labels: &[i32],
    chosen: &[usize],
    store: &BasisStore,
    backend: LpBackend,
) -> bool {
    let rows: Vec<Vec<i32>> = (0..labels.len())
        .map(|r| chosen.iter().map(|&c| columns[c][r]).collect())
        .collect();
    if has_label_conflict(&rows, labels) {
        ctx.engine().record_conflict_prune();
        return false;
    }
    let warm = store.lookup(chosen, labels.len());
    // A Stop mid-LP yields a filler `false`; the callers' sticky
    // re-checks discard the whole sweep when the handle tripped.
    match ctx.separate_warm(&rows, labels, warm.as_deref(), backend) {
        Ok(out) => {
            if let Some(basis) = out.basis {
                store.store(chosen, Arc::new(basis));
            }
            out.result.is_some()
        }
        Err(_) => false,
    }
}

/// Is there a choice of ≤ ℓ columns whose induced vectors (rows = the
/// matrix rows) linearly separate `labels`? Returns the chosen column
/// indices (possibly empty when the labels are uniform).
///
/// The sweep runs size classes in ascending order and, within a size,
/// blocks of lexicographic combinations fanned out over
/// [`par_find_first`] — so the result is deterministic (the
/// lexicographically first witness of minimum size) regardless of worker
/// count, and a hit early in the enumeration exits without touching the
/// rest. [`search_columns_seq`] is the single-threaded reference with
/// the same verdict.
pub fn search_columns(columns: &[Vec<i32>], labels: &[i32], ell: usize) -> Option<Vec<usize>> {
    search_columns_with(Engine::global(), columns, labels, ell)
}

/// [`search_columns`] against a caller-supplied [`Engine`]: the subset
/// sweep fans out under the engine's thread budget and every LP decision
/// (conflict prune, perceptron hit, simplex solve) counts against it.
pub fn search_columns_with(
    engine: &Engine,
    columns: &[Vec<i32>],
    labels: &[i32],
    ell: usize,
) -> Option<Vec<usize>> {
    search_columns_in(&engine.ctx(), columns, labels, ell).expect("unbounded ctx cannot interrupt")
}

/// [`search_columns`] under a task context: the sweep observes the
/// handle once per [`SEARCH_BLOCK`]-combination block (between parallel
/// fan-outs), so cancellation lands within one block's worth of LPs.
pub fn search_columns_in(
    ctx: &Ctx,
    columns: &[Vec<i32>],
    labels: &[i32],
    ell: usize,
) -> Result<Option<Vec<usize>>, Interrupted> {
    search_columns_backend_in(ctx, columns, labels, ell, LpBackend::default())
}

/// [`search_columns`] against a caller-supplied [`Engine`] and an
/// explicit LP backend. With [`LpBackend::DenseCold`] every subset LP is
/// a cold dense solve (the pre-warm-start behavior, kept as the
/// benchmark baseline and agreement oracle).
pub fn search_columns_with_backend(
    engine: &Engine,
    columns: &[Vec<i32>],
    labels: &[i32],
    ell: usize,
    backend: LpBackend,
) -> Option<Vec<usize>> {
    search_columns_backend_in(&engine.ctx(), columns, labels, ell, backend)
        .expect("unbounded ctx cannot interrupt")
}

/// [`search_columns_in`] with an explicit LP backend — the full sweep:
/// size classes ascend, combinations within a class are lexicographic,
/// and every solved subset banks its optimal basis in a [`BasisStore`]
/// to warm its siblings and extensions.
///
/// Parallelism is adaptive: when the engine's effective parallelism is
/// below 2 (single-core hardware, or a thread budget of 1) the sweep
/// takes a direct sequential path — same enumeration order, no block
/// materialization, no channel/worker setup — instead of paying the
/// parallel driver's coordination cost for zero concurrency. Warm-start
/// hit rates are also strictly better sequentially (every sibling LP
/// sees its immediate predecessor's basis), so the fallback is faster on
/// two counts.
pub fn search_columns_backend_in(
    ctx: &Ctx,
    columns: &[Vec<i32>],
    labels: &[i32],
    ell: usize,
    backend: LpBackend,
) -> Result<Option<Vec<usize>>, Interrupted> {
    ctx.check()?;
    // Trivial case: uniform labels need zero features.
    if labels.iter().all(|&l| l == 1) || labels.iter().all(|&l| l == -1) {
        return Ok(Some(Vec::new()));
    }
    let store = BasisStore::new();
    let sequential = ctx.engine().effective_parallelism() < 2;
    let mut block: Vec<Vec<usize>> = Vec::with_capacity(SEARCH_BLOCK);
    for k in 1..=ell.min(columns.len()) {
        store.begin_size_class(k);
        let mut combos = Combinations::new(columns.len(), k);
        if sequential {
            // Direct path: one LP at a time on the calling thread, with
            // the handle observed before every subset.
            while let Some(chosen) = combos.next_combo() {
                ctx.check()?;
                if subset_separates_warm(ctx, columns, labels, &chosen, &store, backend) {
                    return Ok(Some(chosen));
                }
            }
            continue;
        }
        loop {
            ctx.check()?;
            block.clear();
            while block.len() < SEARCH_BLOCK {
                match combos.next_combo() {
                    Some(c) => block.push(c),
                    None => break,
                }
            }
            if block.is_empty() {
                break;
            }
            let hit = ctx.engine().par_find_first(&block, |chosen| {
                subset_separates_warm(ctx, columns, labels, chosen, &store, backend)
            });
            // Sticky re-check: a hit found by a tripped worker's filler
            // verdict must not be reported as a witness.
            ctx.check()?;
            if let Some(i) = hit {
                return Ok(Some(block.swap_remove(i)));
            }
        }
    }
    // A Stop that produced only filler verdicts in the tail must not be
    // reported as a definitive "no witness".
    ctx.check()?;
    Ok(None)
}

/// Sequential reference for [`search_columns`]: plain depth-first subset
/// enumeration, one LP at a time. Kept for agreement tests and as the
/// baseline leg of the LP-engine benchmarks. The verdict always matches
/// the parallel sweep; the witness may differ (DFS order is not
/// size-ascending), but both are valid ≤ ℓ separating subsets.
pub fn search_columns_seq(columns: &[Vec<i32>], labels: &[i32], ell: usize) -> Option<Vec<usize>> {
    search_columns_seq_with(Engine::global(), columns, labels, ell)
}

/// [`search_columns_seq`] against a caller-supplied [`Engine`].
pub fn search_columns_seq_with(
    engine: &Engine,
    columns: &[Vec<i32>],
    labels: &[i32],
    ell: usize,
) -> Option<Vec<usize>> {
    search_columns_seq_in(&engine.ctx(), columns, labels, ell)
        .expect("unbounded ctx cannot interrupt")
}

/// [`search_columns_seq`] under a task context: the DFS observes the
/// handle at every search node.
pub fn search_columns_seq_in(
    ctx: &Ctx,
    columns: &[Vec<i32>],
    labels: &[i32],
    ell: usize,
) -> Result<Option<Vec<usize>>, Interrupted> {
    ctx.check()?;
    if labels.iter().all(|&l| l == 1) || labels.iter().all(|&l| l == -1) {
        return Ok(Some(Vec::new()));
    }
    let mut chosen: Vec<usize> = Vec::new();
    fn rec(
        ctx: &Ctx,
        columns: &[Vec<i32>],
        labels: &[i32],
        ell: usize,
        start: usize,
        chosen: &mut Vec<usize>,
    ) -> Result<bool, Interrupted> {
        ctx.check()?;
        if !chosen.is_empty() && subset_separates(ctx, columns, labels, chosen) {
            // The filler-on-Stop inside `subset_separates` only produces
            // false negatives, and the per-node entry check above turns
            // a tripped handle into Interrupted before the next LP.
            return Ok(true);
        }
        if chosen.len() == ell {
            return Ok(false);
        }
        for c in start..columns.len() {
            chosen.push(c);
            if rec(ctx, columns, labels, ell, c + 1, chosen)? {
                return Ok(true);
            }
            chosen.pop();
        }
        Ok(false)
    }
    Ok(if rec(ctx, columns, labels, ell, 0, &mut chosen)? {
        Some(chosen)
    } else {
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linsep::separate;
    use relational::{DbBuilder, Schema};

    fn example_6_2() -> TrainingDb {
        // D = {R(a), S(a), S(c)}, entities a,b,c; λ(a)=λ(b)=+, λ(c)=−.
        let mut s = Schema::entity_schema();
        s.add_relation("R", 1);
        s.add_relation("S", 1);
        DbBuilder::new(s)
            .fact("R", &["a"])
            .fact("S", &["a"])
            .fact("S", &["c"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training()
    }

    #[test]
    fn example_6_2_dimension_gap() {
        // The paper's Example 6.2: not separable with one feature, but
        // separable with two.
        let t = example_6_2();
        let b = DimBudget::default();
        assert!(!cq_sep_dim(&t, 1, &b).unwrap());
        assert!(cq_sep_dim(&t, 2, &b).unwrap());
        // Same under CQ[1].
        assert!(!cqm_sep_dim(&t, &cq::EnumConfig::cqm(1), 1));
        assert!(cqm_sep_dim(&t, &cq::EnumConfig::cqm(1), 2));
    }

    #[test]
    fn dimension_monotonicity() {
        let t = example_6_2();
        let b = DimBudget::default();
        let mut prev = false;
        for ell in 1..=3 {
            let now = cq_sep_dim(&t, ell, &b).unwrap();
            if prev {
                assert!(now, "Sep[ℓ] must be monotone in ℓ");
            }
            prev = now;
        }
        assert!(prev);
    }

    #[test]
    fn single_feature_when_one_suffices() {
        let mut s = Schema::entity_schema();
        s.add_relation("R", 1);
        let t = DbBuilder::new(s)
            .fact("R", &["a"])
            .fact("R", &["b"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training();
        let bud = DimBudget::default();
        assert!(cq_sep_dim(&t, 1, &bud).unwrap());
        assert!(ghw_sep_dim(&t, 1, 1, &bud).unwrap());
        assert!(cqm_sep_dim(&t, &cq::EnumConfig::cqm(1), 1));
    }

    #[test]
    fn mixed_class_is_hopeless_at_any_dimension() {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        let t = DbBuilder::new(s)
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        let bud = DimBudget::default();
        for ell in 1..=3 {
            assert!(!cq_sep_dim(&t, ell, &bud).unwrap());
            assert!(!ghw_sep_dim(&t, 1, ell, &bud).unwrap());
            assert!(!cqm_sep_dim(&t, &cq::EnumConfig::cqm(2), ell));
        }
    }

    #[test]
    fn unbounded_matches_pairwise_criterion() {
        // With ℓ = #entities, Sep[ℓ] coincides with plain separability.
        let t = example_6_2();
        let bud = DimBudget::default();
        assert_eq!(
            cq_sep_dim(&t, 3, &bud).unwrap(),
            crate::sep_cq::cq_separable(&t)
        );
    }

    #[test]
    fn ghw_dimension_gap_matches_cq_on_small_instance() {
        let t = example_6_2();
        let bud = DimBudget::default();
        // On unary relations GHW(1) features are as strong as CQ here.
        assert!(!ghw_sep_dim(&t, 1, 1, &bud).unwrap());
        assert!(ghw_sep_dim(&t, 1, 2, &bud).unwrap());
    }

    #[test]
    fn generated_dim_bounded_model_separates() {
        let t = example_6_2();
        let b = DimBudget::default();
        // ℓ = 1: no model.
        assert!(sep_dim_generate(&t, &DimClass::Cq, 1, &b, 100_000)
            .unwrap()
            .is_none());
        // ℓ = 2: an explicit 2-feature model that separates.
        let model = sep_dim_generate(&t, &DimClass::Cq, 2, &b, 100_000)
            .unwrap()
            .expect("ℓ=2 suffices");
        assert!(model.statistic.dimension() <= 2);
        assert!(model.separates(&t));
        // Same through GHW(1).
        let model = sep_dim_generate(&t, &DimClass::Ghw(1), 2, &b, 100_000)
            .unwrap()
            .expect("ℓ=2 suffices");
        assert!(model.statistic.dimension() <= 2);
        assert!(model.separates(&t));
    }

    #[test]
    fn dim_bounded_classification() {
        let t = example_6_2();
        let b = DimBudget::default();
        let lab = sep_dim_classify(&t, &t.db, &DimClass::Cq, 2, &b, 100_000)
            .unwrap()
            .expect("ℓ=2 separates");
        for e in t.entities() {
            assert_eq!(lab.get(e), t.labeling.get(e));
        }
    }

    #[test]
    fn dedup_drops_duplicates_and_complements() {
        let cols = vec![
            vec![1, 1, -1],   // keep
            vec![1, 1, -1],   // duplicate
            vec![-1, -1, 1],  // complement of 0
            vec![1, -1, 1],   // keep
            vec![-1, 1, -1],  // complement of 3
            vec![-1, -1, -1], // keep
        ];
        assert_eq!(dedup_column_indices(&cols), vec![0, 3, 5]);
        assert!(dedup_column_indices(&[]).is_empty());
    }

    #[test]
    fn search_columns_edge_cases() {
        // Uniform labels: zero features suffice, even with ℓ > 0 and no
        // columns at all.
        assert_eq!(search_columns(&[], &[1, 1], 3), Some(Vec::new()));
        assert_eq!(search_columns(&[], &[-1, -1, -1], 0), Some(Vec::new()));
        // Mixed labels with no columns: hopeless at any ℓ.
        assert_eq!(search_columns(&[], &[1, -1], 2), None);
        // ℓ = 0 with mixed labels: hopeless.
        let col = vec![vec![1, -1]];
        assert_eq!(search_columns(&col, &[1, -1], 0), None);
        // ℓ exceeding the column count is clamped, not an error.
        assert_eq!(search_columns(&col, &[1, -1], 99), Some(vec![0]));
        // Single-row instances are uniformly labeled by definition.
        assert_eq!(search_columns(&[vec![1]], &[-1], 1), Some(Vec::new()));
        // The sequential reference agrees on all of the above.
        assert_eq!(search_columns_seq(&[], &[1, 1], 3), Some(Vec::new()));
        assert_eq!(search_columns_seq(&[], &[1, -1], 2), None);
        assert_eq!(search_columns_seq(&col, &[1, -1], 0), None);
        assert_eq!(search_columns_seq(&col, &[1, -1], 99), Some(vec![0]));
    }

    #[test]
    fn parallel_witness_is_minimum_size_lexicographic() {
        // Columns 0 and 1 each fail alone; column 2 works alone. The
        // parallel sweep (size-ascending) must return [2], regardless of
        // what a DFS would try first.
        let labels = vec![1, -1, 1, -1];
        let cols = vec![vec![1, 1, -1, -1], vec![-1, -1, 1, 1], vec![1, -1, 1, -1]];
        assert_eq!(search_columns(&cols, &labels, 2), Some(vec![2]));
    }

    #[test]
    fn sequential_and_parallel_search_agree_across_seeds() {
        // Random column matrices; the two engines must give the same
        // verdict and, on success, witnesses that really separate within
        // the ℓ budget.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for trial in 0..30 {
            let nrows = 3 + rnd() % 5;
            let ncols = 1 + rnd() % 6;
            let ell = 1 + rnd() % 3;
            let columns: Vec<Vec<i32>> = (0..ncols)
                .map(|_| {
                    (0..nrows)
                        .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                        .collect()
                })
                .collect();
            let labels: Vec<i32> = (0..nrows)
                .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                .collect();
            let par = search_columns(&columns, &labels, ell);
            let seq = search_columns_seq(&columns, &labels, ell);
            assert_eq!(
                par.is_some(),
                seq.is_some(),
                "trial {trial}: {columns:?} {labels:?} ell={ell}"
            );
            for witness in [&par, &seq].into_iter().flatten() {
                assert!(witness.len() <= ell);
                let rows: Vec<Vec<i32>> = (0..labels.len())
                    .map(|r| witness.iter().map(|&c| columns[c][r]).collect())
                    .collect();
                assert!(
                    separate(&rows, &labels).is_some(),
                    "trial {trial}: witness {witness:?} does not separate"
                );
            }
        }
    }

    #[test]
    fn warm_sparse_and_cold_dense_backends_find_identical_witnesses() {
        // Both backends are deterministic — lexicographically first
        // witness of minimum size — so they must return *identical*
        // witnesses, not merely matching verdicts. This is the
        // S → S ∪ {j} regression guard: a warm-started basis that
        // changed any subset's feasibility verdict would change which
        // witness the sweep finds first.
        let warm_engine = Engine::new();
        let cold_engine = Engine::new();
        let mut x = 0x2545f4914f6cdd1du64;
        let mut rnd = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for trial in 0..40 {
            let nrows = 3 + rnd() % 6;
            let ncols = 1 + rnd() % 6;
            let ell = 1 + rnd() % 3;
            let columns: Vec<Vec<i32>> = (0..ncols)
                .map(|_| {
                    (0..nrows)
                        .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                        .collect()
                })
                .collect();
            let labels: Vec<i32> = (0..nrows)
                .map(|_| if rnd() % 2 == 0 { 1 } else { -1 })
                .collect();
            let warm = search_columns_with_backend(
                &warm_engine,
                &columns,
                &labels,
                ell,
                LpBackend::SparseWarm,
            );
            let cold = search_columns_with_backend(
                &cold_engine,
                &columns,
                &labels,
                ell,
                LpBackend::DenseCold,
            );
            assert_eq!(
                warm, cold,
                "trial {trial}: {columns:?} {labels:?} ell={ell}"
            );
            if let Some(witness) = &warm {
                let rows: Vec<Vec<i32>> = (0..labels.len())
                    .map(|r| witness.iter().map(|&c| columns[c][r]).collect())
                    .collect();
                assert!(separate(&rows, &labels).is_some());
            }
        }
        // Both tiers did real LP work; only the warm backend may have
        // touched the sparse solver.
        let warm_stats = warm_engine.stats();
        let cold_stats = cold_engine.stats();
        assert_eq!(cold_stats.lp.sparse_pivots, 0);
        assert_eq!(cold_stats.lp.warm_start_hits, 0);
        assert!(warm_stats.lp.lps_solved > 0);
        // The warm backend skips the perceptron tier whenever a basis is
        // on offer, so it can only send *more* subsets to the LP tier —
        // never fewer, and never with a different verdict.
        assert!(
            warm_stats.lp.lps_solved >= cold_stats.lp.lps_solved,
            "warm backend decided fewer subsets by LP than cold: {warm_stats:?} vs {cold_stats:?}"
        );
        assert_eq!(
            warm_stats.lp.conflict_prunes, cold_stats.lp.conflict_prunes,
            "the conflict tier is backend-independent"
        );
    }

    #[test]
    fn warm_start_hits_fire_on_the_sibling_sweep() {
        // A size-1 sweep over many columns on an inseparable instance
        // solves one LP per column with a shared (empty) prefix: after
        // the first cold solve, every sibling should start warm.
        let labels = vec![1, -1, 1, -1, -1];
        let columns: Vec<Vec<i32>> = vec![
            vec![1, 1, -1, -1, 1],
            vec![-1, 1, 1, -1, 1],
            vec![1, -1, -1, 1, 1],
            vec![1, 1, 1, -1, -1],
        ];
        let engine = Engine::new();
        let found =
            search_columns_with_backend(&engine, &columns, &labels, 1, LpBackend::SparseWarm);
        let stats = engine.stats();
        // Whatever the verdict, every LP after the first in the size
        // class had a sibling basis on offer.
        if stats.lp.lps_solved >= 2 {
            assert!(
                stats.lp.warm_start_hits + stats.lp.warm_start_misses >= stats.lp.lps_solved - 1,
                "sibling bases were never offered: {stats:?}"
            );
            assert!(
                stats.lp.warm_start_hits >= 1,
                "no sibling warm start ever succeeded: {stats:?}"
            );
        }
        // Cross-check the verdict against the cold reference.
        let cold =
            search_columns_with_backend(&Engine::new(), &columns, &labels, 1, LpBackend::DenseCold);
        assert_eq!(found, cold);
    }

    #[test]
    fn upset_enumeration_counts() {
        // Antichain of 3: all 8 subsets are up-sets.
        let anti = vec![vec![false; 3]; 3];
        assert_eq!(enumerate_upsets(&anti, 100).unwrap().len(), 8);
        // Chain of 3 (0 ⪯ 1 ⪯ 2): up-sets are suffixes: 4 of them.
        let mut chain = vec![vec![false; 3]; 3];
        chain[0][1] = true;
        chain[0][2] = true;
        chain[1][2] = true;
        assert_eq!(enumerate_upsets(&chain, 100).unwrap().len(), 4);
        // Cap enforcement.
        assert!(enumerate_upsets(&anti, 3).is_none());
    }
}
