//! Train/test generalization evaluation across the regularized
//! hypothesis languages.
//!
//! The paper's languages — `CQ[m]` (§4), `GHW(k)` (§5), `Sep[ℓ]` (§6) —
//! and the min-error ε-approximate path (§7) trade *fitting power* for
//! *generalization*: related work shows that extremal fitting CQs
//! provably do not generalize (arXiv:2312.03407) and CQ learning is not
//! efficiently PAC (arXiv:2208.10255). This module measures the
//! trade-off directly: fit a model on a training database with one
//! [`FitMethod`], score it on a held-out labeled test database, and
//! report accuracy/precision/recall plus the training-side error count.
//!
//! Every fit method is **total**: when exact fitting fails (inseparable
//! training data under the chosen regularization strength) the method
//! degrades explicitly rather than erroring —
//!
//! * [`FitMethod::Cqm`] and [`FitMethod::Sep`] fall back to the
//!   majority-class constant predictor (maximal regularization), with
//!   [`EvalReport::fit_exact`] = false;
//! * [`FitMethod::Ghw`] always classifies via Algorithm 2's
//!   disagreement-minimal relabeling + Algorithm 1 (Corollary 7.5);
//! * [`FitMethod::MinError`] always produces the exact minimum-error
//!   `CQ[m]` model (Propositions 7.2/7.3).

use crate::apx::{cqm_apx_generate_in, ghw_apx_classify_in, ghw_min_errors_in};
use crate::sep_cqm::{column_reduced_statistic_in, cqm_generate_in};
use crate::sep_dim::{dedup_column_indices, search_columns_in};
use crate::statistic::{SeparatorModel, Statistic};
use cq::EnumConfig;
use engine::{Ctx, Engine, Interrupted};
use relational::{Database, Label, Labeling, TrainingDb};

/// How to fit a classifier on the training database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitMethod {
    /// Exact `CQ[m]` separation (majority fallback when inseparable).
    Cqm(usize),
    /// `GHW(k)` via the ε-optimal relabeling (Algorithm 2) and
    /// classification without generation (Algorithm 1) — always total.
    Ghw(usize),
    /// `CQ[m]`-`Sep[ℓ]`: at most `ell` features chosen from the `CQ[m]`
    /// bank (majority fallback when no ≤ℓ subset separates). The subset
    /// sweep is the warm-started [`search_columns_in`] path.
    Sep { m: usize, ell: usize },
    /// Exact minimum-error `CQ[m]` (the NP-complete ε-approximate path
    /// through `linsep::minerror`) — always total.
    MinError(usize),
}

/// The `CQ[m]` bank a bare `sep<ℓ>` spelling draws features from.
pub const SEP_DEFAULT_BANK: usize = 2;

impl FitMethod {
    /// Parse `cqm<m>` / `ghw<k>` / `sep<ℓ>` / `minerr<m>` (all
    /// parameters ≥ 1; `sep<ℓ>` uses the `CQ[2]` feature bank). Every
    /// malformed spelling produces the same one-line message.
    pub fn parse(s: &str) -> Result<FitMethod, String> {
        let bad =
            || format!("bad method {s:?} (expected cqm<m≥1>, ghw<k≥1>, sep<ℓ≥1>, minerr<m≥1>)");
        let num = |suffix: &str| suffix.parse::<usize>().ok().filter(|&v| v >= 1);
        if let Some(m) = s.strip_prefix("cqm") {
            return num(m).map(FitMethod::Cqm).ok_or_else(bad);
        }
        if let Some(k) = s.strip_prefix("ghw") {
            return num(k).map(FitMethod::Ghw).ok_or_else(bad);
        }
        if let Some(ell) = s.strip_prefix("sep") {
            return num(ell)
                .map(|ell| FitMethod::Sep {
                    m: SEP_DEFAULT_BANK,
                    ell,
                })
                .ok_or_else(bad);
        }
        if let Some(m) = s.strip_prefix("minerr") {
            return num(m).map(FitMethod::MinError).ok_or_else(bad);
        }
        Err(bad())
    }

    /// The regularization strength knob of the method (its bound).
    pub fn strength(&self) -> usize {
        match *self {
            FitMethod::Cqm(m) | FitMethod::MinError(m) => m,
            FitMethod::Ghw(k) => k,
            FitMethod::Sep { ell, .. } => ell,
        }
    }
}

impl std::fmt::Display for FitMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FitMethod::Cqm(m) => write!(f, "CQ[{m}]"),
            FitMethod::Ghw(k) => write!(f, "GHW({k})"),
            FitMethod::Sep { m, ell } => write!(f, "CQ[{m}]-Sep[{ell}]"),
            FitMethod::MinError(m) => write!(f, "MinErr[{m}]"),
        }
    }
}

/// Held-out evaluation of one fitted model.
#[derive(Clone, Copy, Debug)]
pub struct EvalReport {
    /// The method that produced the model.
    pub method: FitMethod,
    /// Did the fit reproduce the (possibly noisy) training labels
    /// exactly? False for the majority fallback and for approximate
    /// fits that paid a nonzero error.
    pub fit_exact: bool,
    /// Training entities the fitted model misclassifies.
    pub train_errors: usize,
    /// Features in the fitted statistic (None when the method does not
    /// materialize one: `GHW(k)` and the majority fallback).
    pub dimension: Option<usize>,
    /// Held-out confusion counts (positive = the paper's `+1`).
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl EvalReport {
    /// Held-out test size.
    pub fn test_size(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Held-out accuracy in `[0, 1]` (1.0 on an empty test set).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.test_size())
    }

    /// Precision (1.0 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall (1.0 when the test set has no positives).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Fit `method` on `train` and score it on the labeled held-out `test`.
pub fn evaluate(train: &TrainingDb, test: &TrainingDb, method: FitMethod) -> EvalReport {
    evaluate_with(Engine::global(), train, test, method)
}

/// [`evaluate`] against a caller-supplied [`Engine`].
pub fn evaluate_with(
    engine: &Engine,
    train: &TrainingDb,
    test: &TrainingDb,
    method: FitMethod,
) -> EvalReport {
    evaluate_in(&engine.ctx(), train, test, method).expect("unbounded ctx cannot interrupt")
}

/// [`evaluate`] under a task context (interruptible): the fit, the
/// training-error count, and the held-out classification sweep all
/// observe the handle.
pub fn evaluate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    test: &TrainingDb,
    method: FitMethod,
) -> Result<EvalReport, Interrupted> {
    ctx.check()?;
    let fitted = match method {
        FitMethod::Cqm(m) => cqm_generate_in(ctx, train, &EnumConfig::cqm(m))?
            .map(|model| (model, 0usize))
            .ok_or(Fallback),
        FitMethod::MinError(m) => {
            let (model, errors) = cqm_apx_generate_in(ctx, train, &EnumConfig::cqm(m))?;
            Ok((model, errors))
        }
        FitMethod::Sep { m, ell } => sep_generate_in(ctx, train, m, ell)?.ok_or(Fallback),
        FitMethod::Ghw(k) => {
            // No materialized statistic: classify directly (Algorithm 2
            // relabeling + Algorithm 1), which is minimum-error on the
            // training side by Corollary 7.5.
            let train_errors = ghw_min_errors_in(ctx, train, k)?;
            let predicted = ghw_apx_classify_in(ctx, train, &test.db, k)?;
            return Ok(report(method, train_errors, None, test, &predicted));
        }
    };
    match fitted {
        Ok((model, train_errors)) => {
            let predicted = classify_in(ctx, &model, &test.db)?;
            Ok(report(
                method,
                train_errors,
                Some(model.statistic.dimension()),
                test,
                &predicted,
            ))
        }
        Err(Fallback) => {
            // Maximal regularization: the majority-class constant
            // predictor. This is what "the language cannot fit the
            // data" costs — the honest baseline the curves bottom out
            // at, not an error.
            let (majority, minority_count) = majority_of(train);
            let predicted: Labeling = test
                .db
                .entities()
                .into_iter()
                .map(|e| (e, majority))
                .collect();
            Ok(report(method, minority_count, None, test, &predicted))
        }
    }
}

/// Marker for "the exact fit does not exist; use the fallback".
struct Fallback;

/// Constructive `CQ[m]`-`Sep[ℓ]` generation: enumerate the deduplicated
/// `CQ[m]` column bank, sweep ≤ℓ subsets (size-ascending, warm-started —
/// the `BasisStore` path of `sep_dim`), and realize the first separating
/// subset as an explicit model. `None` when no ≤ℓ subset separates.
pub fn sep_generate_in(
    ctx: &Ctx,
    train: &TrainingDb,
    m: usize,
    ell: usize,
) -> Result<Option<(SeparatorModel, usize)>, Interrupted> {
    let (statistic, rows, labels) = column_reduced_statistic_in(ctx, train, &EnumConfig::cqm(m))?;
    let nfeat = statistic.dimension();
    let all: Vec<Vec<i32>> = (0..nfeat)
        .map(|j| rows.iter().map(|r| r[j]).collect())
        .collect();
    // Also drop complement columns (a negated weight realizes them);
    // `keep` maps swept column index -> feature index.
    let keep = dedup_column_indices(&all);
    let columns: Vec<Vec<i32>> = keep.iter().map(|&j| all[j].clone()).collect();
    let chosen = match search_columns_in(ctx, &columns, &labels, ell)? {
        Some(c) => c,
        None => return Ok(None),
    };
    let features: Vec<cq::Cq> = chosen
        .iter()
        .map(|&c| statistic.features[keep[c]].clone())
        .collect();
    let sub_rows: Vec<Vec<i32>> = rows
        .iter()
        .map(|r| chosen.iter().map(|&c| r[keep[c]]).collect())
        .collect();
    let classifier = ctx
        .separate(&sub_rows, &labels)?
        .expect("search_columns verified this subset separates");
    Ok(Some((
        SeparatorModel {
            statistic: Statistic::new(features),
            classifier,
        },
        0,
    )))
}

/// [`SeparatorModel::classify`] under a task context.
pub fn classify_in(
    ctx: &Ctx,
    model: &SeparatorModel,
    d: &Database,
) -> Result<Labeling, Interrupted> {
    let entities = d.entities();
    let rows = model.statistic.apply_in(ctx, d, &entities)?;
    Ok(entities
        .into_iter()
        .zip(rows)
        .map(|(e, row)| (e, Label::from_sign(model.classifier.classify(&row))))
        .collect())
}

fn majority_of(train: &TrainingDb) -> (Label, usize) {
    let pos = train.positives().len();
    let neg = train.negatives().len();
    if pos >= neg {
        (Label::Positive, neg)
    } else {
        (Label::Negative, pos)
    }
}

fn report(
    method: FitMethod,
    train_errors: usize,
    dimension: Option<usize>,
    test: &TrainingDb,
    predicted: &Labeling,
) -> EvalReport {
    let mut r = EvalReport {
        method,
        fit_exact: train_errors == 0,
        train_errors,
        dimension,
        tp: 0,
        fp: 0,
        tn: 0,
        fn_: 0,
    };
    for e in test.entities() {
        match (predicted.get(e), test.labeling.get(e)) {
            (Label::Positive, Label::Positive) => r.tp += 1,
            (Label::Positive, Label::Negative) => r.fp += 1,
            (Label::Negative, Label::Negative) => r.tn += 1,
            (Label::Negative, Label::Positive) => r.fn_ += 1,
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    /// Out-edge ground truth: train on one 2-path, test on another. The
    /// test entities mirror the training `→₁`-classes (source, middle,
    /// sink), so even the implicit GHW chain classifier — whose labels
    /// are only pinned down on vectors realized in training — must ace
    /// the split.
    fn out_edge_pair() -> (TrainingDb, TrainingDb) {
        let train = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training();
        let test = DbBuilder::new(schema())
            .fact("E", &["t", "u"])
            .fact("E", &["u", "v"])
            .positive("t")
            .positive("u")
            .negative("v")
            .training();
        (train, test)
    }

    #[test]
    fn parse_and_display_round_trip() {
        assert_eq!(FitMethod::parse("cqm2"), Ok(FitMethod::Cqm(2)));
        assert_eq!(FitMethod::parse("ghw1"), Ok(FitMethod::Ghw(1)));
        assert_eq!(
            FitMethod::parse("sep3"),
            Ok(FitMethod::Sep { m: 2, ell: 3 })
        );
        assert_eq!(FitMethod::parse("minerr1"), Ok(FitMethod::MinError(1)));
        assert_eq!(FitMethod::Cqm(2).to_string(), "CQ[2]");
        assert_eq!(FitMethod::Sep { m: 2, ell: 1 }.to_string(), "CQ[2]-Sep[1]");
        for bad in ["cqm0", "ghw", "sep0", "minerr0", "nope", ""] {
            let err = FitMethod::parse(bad).unwrap_err();
            assert_eq!(
                err,
                format!("bad method {bad:?} (expected cqm<m≥1>, ghw<k≥1>, sep<ℓ≥1>, minerr<m≥1>)")
            );
        }
    }

    #[test]
    fn all_methods_ace_the_clean_out_edge_instance() {
        let (train, test) = out_edge_pair();
        for method in [
            FitMethod::Cqm(1),
            FitMethod::Ghw(1),
            FitMethod::Sep { m: 1, ell: 1 },
            FitMethod::MinError(1),
        ] {
            let r = evaluate(&train, &test, method);
            assert!(r.fit_exact, "{method}");
            assert_eq!(r.train_errors, 0, "{method}");
            assert_eq!(r.accuracy(), 1.0, "{method}: {r:?}");
            assert_eq!(r.precision(), 1.0, "{method}");
            assert_eq!(r.recall(), 1.0, "{method}");
        }
    }

    #[test]
    fn sep_model_is_dimension_bounded() {
        let (train, test) = out_edge_pair();
        let r = evaluate(&train, &test, FitMethod::Sep { m: 2, ell: 1 });
        assert!(r.fit_exact);
        assert_eq!(r.dimension, Some(1));
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn inseparable_instance_falls_back_to_majority() {
        // Hom-equivalent twins with opposite labels: no CQ class fits.
        let train = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "a"])
            .positive("a")
            .negative("b")
            .training();
        let test = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .fact("E", &["v", "u"])
            .positive("u")
            .negative("v")
            .training();
        for method in [FitMethod::Cqm(2), FitMethod::Sep { m: 2, ell: 2 }] {
            let r = evaluate(&train, &test, method);
            assert!(!r.fit_exact, "{method}");
            assert_eq!(
                r.train_errors, 1,
                "{method}: the majority pays the minority"
            );
            assert_eq!(r.dimension, None, "{method}");
            // Majority of a tie is positive: both test entities predicted +.
            assert_eq!((r.tp, r.fp, r.tn, r.fn_), (1, 1, 0, 0), "{method}");
            assert_eq!(r.accuracy(), 0.5, "{method}");
        }
        // The approximate paths stay total and pay exactly one error.
        for method in [FitMethod::Ghw(1), FitMethod::MinError(2)] {
            let r = evaluate(&train, &test, method);
            assert!(!r.fit_exact, "{method}");
            assert_eq!(r.train_errors, 1, "{method}");
            assert_eq!(r.accuracy(), 0.5, "{method}: twins share one label");
        }
    }

    #[test]
    fn min_error_absorbs_label_noise_that_exact_fitting_cannot() {
        // CQ[1]-separable path with one flipped label.
        let train = DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .fact("E", &["3", "4"])
            .positive("1")
            .negative("2") // noise: out-edge ground truth says +
            .positive("3")
            .negative("4")
            .training();
        let test = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .positive("u")
            .negative("v")
            .training();
        let r = evaluate(&train, &test, FitMethod::MinError(1));
        assert!(!r.fit_exact);
        assert_eq!(r.train_errors, 1);
        assert_eq!(r.accuracy(), 1.0, "the min-error fit recovers the target");
        // Exact CQ[1] cannot fit the noisy labels: majority fallback.
        let r = evaluate(&train, &test, FitMethod::Cqm(1));
        assert!(!r.fit_exact);
        assert_eq!(r.dimension, None);
    }

    #[test]
    fn evaluate_in_observes_the_deadline() {
        let (train, test) = out_edge_pair();
        let engine = Engine::new();
        let ctx = engine.ctx_with_deadline(std::time::Duration::ZERO);
        for method in [
            FitMethod::Cqm(1),
            FitMethod::Ghw(1),
            FitMethod::Sep { m: 1, ell: 1 },
            FitMethod::MinError(1),
        ] {
            let err =
                evaluate_in(&ctx, &train, &test, method).expect_err("zero budget must interrupt");
            assert!(err.deadline_exceeded(), "{method}");
        }
    }

    #[test]
    fn report_ratios_handle_empty_denominators() {
        let r = EvalReport {
            method: FitMethod::Cqm(1),
            fit_exact: true,
            train_errors: 0,
            dimension: Some(1),
            tp: 0,
            fp: 0,
            tn: 3,
            fn_: 0,
        };
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.precision(), 1.0, "no positive predictions");
        assert_eq!(r.recall(), 1.0, "no positive truths");
    }
}
