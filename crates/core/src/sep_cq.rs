//! Unrestricted CQ-separability (Theorem 3.2 baseline and §6.2).
//!
//! Kimelfeld–Ré: `(D, λ)` is CQ-separable iff no positive/negative pair of
//! entities is CQ-indistinguishable, where indistinguishability is mutual
//! homomorphic implication `(D,e) → (D,e')` — each direction an
//! NP-complete check, putting the problem in coNP (and it is
//! coNP-complete; our solver is exact and exponential only in the
//! homomorphism search).
//!
//! For *generation* (unlike `GHW(k)`!) the canonical features are small:
//! `q_e(x)` is just the canonical CQ of the pointed database `(D, e)`, of
//! size `|D|`, with `q_e(D) = { e' : (D,e) → (D,e') }`. The chain
//! construction of Lemma 5.4 then yields a polynomial-size separating
//! statistic, and classification of evaluation databases runs the same
//! homomorphism tests cross-database.

use crate::chain::{build_chain_in, ChainError, ChainModel};
use crate::statistic::{SeparatorModel, Statistic};
use cq::Cq;
use engine::{Ctx, Engine, Interrupted};
use relational::{Database, Labeling, TrainingDb, Val};

/// Decide CQ-separability (Thm 3.2; coNP).
pub fn cq_separable(train: &TrainingDb) -> bool {
    cq_separable_with(Engine::global(), train)
}

/// [`cq_separable`] against a caller-supplied [`Engine`].
pub fn cq_separable_with(engine: &Engine, train: &TrainingDb) -> bool {
    cq_separable_in(&engine.ctx(), train).expect("unbounded ctx cannot interrupt")
}

/// [`cq_separable`] under a task context (interruptible).
pub fn cq_separable_in(ctx: &Ctx, train: &TrainingDb) -> Result<bool, Interrupted> {
    ctx.check()?;
    // Cheaper than building the full preorder: only pos/neg pairs matter.
    // Each pair is an independent NP query — fan out and stop at the
    // first hom-equivalent pair. Workers report filler verdicts on Stop;
    // the sticky post-fan-in check discards the batch.
    let sep = ctx.engine().par_all_pairs(&train.opposing_pairs(), |p, n| {
        !(ctx
            .hom_exists(&train.db, &train.db, &[(p, n)])
            .unwrap_or(false)
            && ctx
                .hom_exists(&train.db, &train.db, &[(n, p)])
                .unwrap_or(false))
    });
    ctx.check()?;
    Ok(sep)
}

/// The hom-preorder chain model over the training entities.
pub fn cq_chain(train: &TrainingDb) -> Result<ChainModel, ChainError> {
    cq_chain_with(Engine::global(), train)
}

/// [`cq_chain`] against a caller-supplied [`Engine`].
pub fn cq_chain_with(engine: &Engine, train: &TrainingDb) -> Result<ChainModel, ChainError> {
    cq_chain_in(&engine.ctx(), train).expect("unbounded ctx cannot interrupt")
}

/// [`cq_chain`] under a task context (interruptible).
pub fn cq_chain_in(
    ctx: &Ctx,
    train: &TrainingDb,
) -> Result<Result<ChainModel, ChainError>, Interrupted> {
    ctx.check()?;
    let elems = train.entities();
    let n = elems.len();
    // The n×n preorder matrix: n² independent hom queries, most of them
    // shared with `cq_separable`/`cq_classify` through the memo cache.
    let cells: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    let flat = ctx.engine().par_map(&cells, |&(i, j)| {
        i == j
            || ctx
                .hom_exists(&train.db, &train.db, &[(elems[i], elems[j])])
                .unwrap_or(false)
    });
    ctx.check()?;
    let leq: Vec<Vec<bool>> = flat.chunks(n.max(1)).map(|row| row.to_vec()).collect();
    build_chain_in(ctx, train, &elems, &leq)
}

/// Feature generation for CQ: the explicit chain statistic
/// `Π = (q_{e_1}, …, q_{e_m})` of canonical queries plus its classifier.
/// Polynomial-size output (contrast Theorem 5.7 for `GHW(k)`).
pub fn cq_generate(train: &TrainingDb) -> Option<SeparatorModel> {
    cq_generate_with(Engine::global(), train)
}

/// [`cq_generate`] against a caller-supplied [`Engine`].
pub fn cq_generate_with(engine: &Engine, train: &TrainingDb) -> Option<SeparatorModel> {
    cq_generate_in(&engine.ctx(), train).expect("unbounded ctx cannot interrupt")
}

/// [`cq_generate`] under a task context (interruptible).
pub fn cq_generate_in(
    ctx: &Ctx,
    train: &TrainingDb,
) -> Result<Option<SeparatorModel>, Interrupted> {
    let chain = match cq_chain_in(ctx, train)? {
        Ok(chain) => chain,
        Err(_) => return Ok(None),
    };
    let features: Vec<Cq> = (0..chain.class_count())
        .map(|c| {
            let e = chain.elems[chain.representative(c)];
            Cq::from_pointed_db(&train.db, e).with_entity_guard()
        })
        .collect();
    Ok(Some(SeparatorModel {
        statistic: Statistic::new(features),
        classifier: chain.classifier.clone(),
    }))
}

/// CQ-Cls: classify an evaluation database consistently with a separating
/// statistic, evaluating the implicit features by cross-database
/// homomorphism tests.
pub fn cq_classify(train: &TrainingDb, eval: &Database) -> Option<Labeling> {
    cq_classify_with(Engine::global(), train, eval)
}

/// [`cq_classify`] against a caller-supplied [`Engine`].
pub fn cq_classify_with(engine: &Engine, train: &TrainingDb, eval: &Database) -> Option<Labeling> {
    cq_classify_in(&engine.ctx(), train, eval).expect("unbounded ctx cannot interrupt")
}

/// [`cq_classify`] under a task context (interruptible).
pub fn cq_classify_in(
    ctx: &Ctx,
    train: &TrainingDb,
    eval: &Database,
) -> Result<Option<Labeling>, Interrupted> {
    let chain = match cq_chain_in(ctx, train)? {
        Ok(chain) => chain,
        Err(_) => return Ok(None),
    };
    // Flatten the (entity × class-representative) grid so one parallel
    // sweep covers every cross-database hom test.
    let ents = eval.entities();
    let k = chain.class_count();
    let cells: Vec<(Val, usize)> = ents
        .iter()
        .flat_map(|&f| (0..k).map(move |c| (f, c)))
        .collect();
    let bits = ctx.engine().par_map(&cells, |&(f, c)| {
        let e = chain.elems[chain.representative(c)];
        ctx.hom_exists(&train.db, eval, &[(e, f)]).unwrap_or(false)
    });
    ctx.check()?;
    let mut out = Labeling::new();
    for (row, &f) in ents.iter().enumerate() {
        let v: Vec<i32> = bits[row * k..(row + 1) * k]
            .iter()
            .map(|&b| if b { 1 } else { -1 })
            .collect();
        out.set(f, chain.classify_vector(&v));
    }
    Ok(Some(out))
}

/// The CQ-indistinguishability witness, when inseparable: a positive and
/// a negative entity that are hom-equivalent (the "reason" of Lemma 5.4's
/// criterion, CQ version).
pub fn cq_inseparability_witness(train: &TrainingDb) -> Option<(Val, Val)> {
    cq_inseparability_witness_with(Engine::global(), train)
}

/// [`cq_inseparability_witness`] against a caller-supplied [`Engine`].
pub fn cq_inseparability_witness_with(engine: &Engine, train: &TrainingDb) -> Option<(Val, Val)> {
    cq_inseparability_witness_in(&engine.ctx(), train).expect("unbounded ctx cannot interrupt")
}

/// [`cq_inseparability_witness`] under a task context (interruptible).
pub fn cq_inseparability_witness_in(
    ctx: &Ctx,
    train: &TrainingDb,
) -> Result<Option<(Val, Val)>, Interrupted> {
    ctx.check()?;
    let pairs = train.opposing_pairs();
    let hit = ctx
        .engine()
        .par_find_first(&pairs, |&(p, n)| {
            ctx.hom_exists(&train.db, &train.db, &[(p, n)])
                .unwrap_or(false)
                && ctx
                    .hom_exists(&train.db, &train.db, &[(n, p)])
                    .unwrap_or(false)
        })
        .map(|i| pairs[i]);
    ctx.check()?;
    Ok(hit)
}

/// ∃FO⁺-separability coincides with CQ-separability (Proposition 8.3(2)):
/// unions/conjunctions of CQs distinguish exactly what single CQs do at
/// the level of entity pairs.
pub fn epfo_separable(train: &TrainingDb) -> bool {
    cq_separable(train)
}

/// [`epfo_separable`] against a caller-supplied [`Engine`].
pub fn epfo_separable_with(engine: &Engine, train: &TrainingDb) -> bool {
    cq_separable_with(engine, train)
}

/// [`epfo_separable`] under a task context (interruptible).
pub fn epfo_separable_in(ctx: &Ctx, train: &TrainingDb) -> Result<bool, Interrupted> {
    cq_separable_in(ctx, train)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::{DbBuilder, Label, Schema};

    fn schema() -> Schema {
        let mut s = Schema::entity_schema();
        s.add_relation("E", 2);
        s
    }

    fn path_train() -> TrainingDb {
        DbBuilder::new(schema())
            .fact("E", &["1", "2"])
            .fact("E", &["2", "3"])
            .positive("1")
            .positive("2")
            .negative("3")
            .training()
    }

    #[test]
    fn path_is_separable_and_generates() {
        let t = path_train();
        assert!(cq_separable(&t));
        assert!(cq_inseparability_witness(&t).is_none());
        let model = cq_generate(&t).expect("separable");
        assert!(model.separates(&t), "{}", model.statistic);
        assert_eq!(model.statistic.dimension(), 3);
    }

    #[test]
    fn hom_equivalent_pair_blocks() {
        // Two disjoint 3-cycles: all six elements hom-equivalent.
        let t = DbBuilder::new(schema())
            .fact("E", &["a", "b"])
            .fact("E", &["b", "c"])
            .fact("E", &["c", "a"])
            .fact("E", &["x", "y"])
            .fact("E", &["y", "z"])
            .fact("E", &["z", "x"])
            .positive("a")
            .negative("x")
            .training();
        assert!(!cq_separable(&t));
        let (p, n) = cq_inseparability_witness(&t).unwrap();
        assert_eq!(t.labeling.get(p), Label::Positive);
        assert_eq!(t.labeling.get(n), Label::Negative);
        assert!(cq_generate(&t).is_none());
        assert!(cq_classify(&t, &t.db).is_none());
    }

    #[test]
    fn classification_transfers_to_eval_db() {
        let t = path_train();
        // Evaluation: a longer all-entity path. The canonical features
        // q_e are whole-database patterns (η facts included), so the
        // eval path must be entity-labeled throughout for them to match.
        let eval = DbBuilder::new(schema())
            .fact("E", &["u", "v"])
            .fact("E", &["v", "w"])
            .fact("E", &["w", "x"])
            .entity("u")
            .entity("v")
            .entity("w")
            .entity("x")
            .build();
        let lab = cq_classify(&t, &eval).unwrap();
        let u = eval.val_by_name("u").unwrap();
        let w = eval.val_by_name("w").unwrap();
        let x = eval.val_by_name("x").unwrap();
        // u's feature vector equals training entity 1's exactly, so it
        // must inherit that label; likewise x matches entity 3.
        assert_eq!(lab.get(u), Label::Positive);
        assert_eq!(lab.get(x), Label::Negative);
        // w's vector (-,+,+) never occurs in training — any label is a
        // valid CQ-Cls answer for it — so we only require totality.
        let _ = lab.get(w);
    }

    #[test]
    fn classification_agrees_with_model_on_training() {
        let t = path_train();
        let lab = cq_classify(&t, &t.db).unwrap();
        for e in t.entities() {
            assert_eq!(lab.get(e), t.labeling.get(e));
        }
        // And with the explicit generated model.
        let model = cq_generate(&t).unwrap();
        let model_lab = model.classify(&t.db);
        for e in t.entities() {
            assert_eq!(model_lab.get(e), t.labeling.get(e));
        }
    }

    #[test]
    fn example_6_2_needs_two_features_but_is_separable() {
        // Example 6.2 of the paper: D = {R(a), S(a), S(c), η(a), η(b),
        // η(c)}, λ(a)=λ(b)=+, λ(c)=−.
        let mut s = Schema::entity_schema();
        s.add_relation("R", 1);
        s.add_relation("S", 1);
        let t = DbBuilder::new(s)
            .fact("R", &["a"])
            .fact("S", &["a"])
            .fact("S", &["c"])
            .positive("a")
            .positive("b")
            .negative("c")
            .training();
        assert!(cq_separable(&t));
        let model = cq_generate(&t).unwrap();
        assert!(model.separates(&t));
    }
}
