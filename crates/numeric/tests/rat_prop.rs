//! Property tests pinning the hybrid [`Rat`] to [`BigRational`]
//! semantics: every operation the LP engine uses must agree exactly with
//! the all-big reference, across the small path, the promoted path, and
//! the small/big boundary.

use numeric::{BigRational, Rat};
use proptest::prelude::*;

/// Strategy: an interesting `(num, den)` pair — mixes tiny values (the
/// common tableau case), values near the `i64` boundary (the promotion
/// trigger), and a broad middle band.
fn rat_parts() -> impl Strategy<Value = (i64, i64)> {
    let num = prop_oneof![
        -9i64..10,
        -1_000_000i64..1_000_000,
        (i64::MAX - 1000)..i64::MAX,
        (i64::MIN + 1)..(i64::MIN + 1000),
    ];
    let den = prop_oneof![1i64..10, 1i64..1_000_000, (i64::MAX - 1000)..i64::MAX];
    (num, den)
}

fn both(n: i64, d: i64) -> (Rat, BigRational) {
    (Rat::new(n, d), numeric::ratio(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_ops_agree_with_bigrational((an, ad) in rat_parts(), (bn, bd) in rat_parts()) {
        let (a, ab) = both(an, ad);
        let (b, bb) = both(bn, bd);
        prop_assert_eq!((&a + &b).to_big(), &ab + &bb);
        prop_assert_eq!((&a - &b).to_big(), &ab - &bb);
        prop_assert_eq!((&a * &b).to_big(), &ab * &bb);
        if !b.is_zero() {
            prop_assert_eq!((&a / &b).to_big(), &ab / &bb);
        }
    }

    #[test]
    fn ordering_and_signs_agree((an, ad) in rat_parts(), (bn, bd) in rat_parts()) {
        let (a, ab) = both(an, ad);
        let (b, bb) = both(bn, bd);
        prop_assert_eq!(a.cmp(&b), ab.cmp(&bb));
        prop_assert_eq!(a.signum(), ab.signum());
        prop_assert_eq!(a.is_zero(), ab.is_zero());
        prop_assert_eq!(a.is_positive(), ab.is_positive());
        prop_assert_eq!(a.is_negative(), ab.is_negative());
        prop_assert_eq!(a == b, ab == bb);
    }

    #[test]
    fn unary_ops_agree((an, ad) in rat_parts()) {
        let (a, ab) = both(an, ad);
        prop_assert_eq!((-&a).to_big(), -&ab);
        prop_assert_eq!(a.abs().to_big(), ab.abs());
        if !a.is_zero() {
            prop_assert_eq!(a.recip().to_big(), ab.recip());
        }
        // Round-trip through the big representation is the identity.
        prop_assert_eq!(Rat::from(a.to_big()), a);
    }

    #[test]
    fn sub_mul_agrees((sn, sd) in rat_parts(), (fn_, fd) in rat_parts(), (xn, xd) in rat_parts()) {
        let (mut s, sb) = both(sn, sd);
        let (f, fb) = both(fn_, fd);
        let (x, xb) = both(xn, xd);
        s.sub_mul(&f, &x);
        prop_assert_eq!(s.to_big(), &sb - &(&fb * &xb));
    }

    #[test]
    fn promoted_chains_stay_exact((an, ad) in rat_parts(), (bn, bd) in rat_parts()) {
        // Force promotion by squaring, then keep computing: a long mixed
        // chain must match the all-big evaluation step for step.
        let (a, ab) = both(an, ad);
        let (b, bb) = both(bn, bd);
        let chain = &(&(&a * &a) + &(&b * &b)) - &(&a * &b);
        let chain_big = &(&(&ab * &ab) + &(&bb * &bb)) - &(&ab * &bb);
        prop_assert_eq!(chain.to_big(), chain_big.clone());
        // Canonical form: if the value fits i64, it must be Small.
        if let (Some(n), Some(d)) = (chain_big.numer().to_i64(), chain_big.denom().to_i64()) {
            prop_assert_eq!(chain.as_small(), Some((n, d)));
        } else {
            prop_assert!(!chain.is_small());
        }
    }

    #[test]
    fn display_parse_roundtrip_agrees((an, ad) in rat_parts()) {
        let (a, ab) = both(an, ad);
        prop_assert_eq!(a.to_string(), ab.to_string());
        prop_assert_eq!(a.to_string().parse::<Rat>().unwrap(), a);
    }
}
