//! Property tests: BigInt/BigRational must agree with i128 arithmetic on
//! values that fit, and satisfy the ring/field axioms beyond that range.

use numeric::{BigInt, BigRational};
use proptest::prelude::*;

fn big(v: i64) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_matches_i128(a in -1_000_000_000_000i64..1_000_000_000_000, b in -1_000_000_000_000i64..1_000_000_000_000) {
        let (ba, bb) = (big(a), big(b));
        prop_assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&ba - &bb).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
        if b != 0 {
            prop_assert_eq!((&ba / &bb).to_string(), (a as i128 / b as i128).to_string());
            prop_assert_eq!((&ba % &bb).to_string(), (a as i128 % b as i128).to_string());
        }
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }

    #[test]
    fn bigint_ring_axioms(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (ba, bb, bc) = (big(a), big(b), big(c));
        // Associativity and commutativity through wide values.
        prop_assert_eq!(&(&ba + &bb) + &bc, &ba + &(&bb + &bc));
        prop_assert_eq!(&ba * &bb, &bb * &ba);
        // Distributivity.
        prop_assert_eq!(&ba * &(&bb + &bc), &(&ba * &bb) + &(&ba * &bc));
        // Additive inverse.
        prop_assert!((&ba + &(-&ba)).is_zero());
    }

    #[test]
    fn bigint_divrem_reconstructs(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (ba, bb) = (big(a), big(b));
        let (q, r) = ba.div_rem(&bb);
        prop_assert_eq!(&(&q * &bb) + &r, ba.clone());
        prop_assert!(r.abs() < bb.abs());
    }

    #[test]
    fn bigint_parse_display_roundtrip(a in any::<i64>()) {
        let b = big(a);
        let s = b.to_string();
        let back: BigInt = s.parse().unwrap();
        prop_assert_eq!(b, back);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn rational_field_axioms(
        an in -10_000i64..10_000, ad in 1i64..100,
        bn in -10_000i64..10_000, bd in 1i64..100,
        cn in -10_000i64..10_000, cd in 1i64..100,
    ) {
        let r = |n, d| BigRational::new(BigInt::from(n), BigInt::from(d));
        let (a, b, c) = (r(an, ad), r(bn, bd), r(cn, cd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert!((&a - &a).is_zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), BigRational::one());
            prop_assert_eq!(&(&b / &a) * &a, b.clone());
        }
    }

    #[test]
    fn rational_ordering_is_total_and_consistent(
        an in -1000i64..1000, ad in 1i64..50,
        bn in -1000i64..1000, bd in 1i64..50,
    ) {
        let r = |n, d| BigRational::new(BigInt::from(n), BigInt::from(d));
        let (a, b) = (r(an, ad), r(bn, bd));
        // Cross-multiplication ground truth (denominators positive).
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
        // Sign agreement between cmp and subtraction.
        let d = &a - &b;
        prop_assert_eq!(d.signum(), match a.cmp(&b) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        });
    }

    #[test]
    fn rational_always_reduced(n in -100_000i64..100_000, d in 1i64..10_000) {
        let x = BigRational::new(BigInt::from(n), BigInt::from(d));
        let g = x.numer().gcd(x.denom());
        prop_assert!(g == BigInt::one() || x.is_zero());
        prop_assert!(x.denom().is_positive());
    }

    #[test]
    fn pow2_times_pow2(a in 0usize..200, b in 0usize..200) {
        prop_assert_eq!(BigInt::pow2(a) * BigInt::pow2(b), BigInt::pow2(a + b));
        prop_assert_eq!(BigInt::pow2(a).bits(), a + 1);
    }
}
