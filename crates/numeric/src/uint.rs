//! Unsigned magnitude arithmetic on little-endian `u32` limb vectors.
//!
//! Invariant maintained by every function here: no trailing zero limbs
//! (the canonical representation of zero is the empty vector).

pub type Limbs = Vec<u32>;

const BASE_BITS: u32 = 32;

/// Strip trailing zero limbs to restore canonical form.
pub fn normalize(v: &mut Limbs) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

pub fn from_u64(x: u64) -> Limbs {
    let mut v = vec![x as u32, (x >> 32) as u32];
    normalize(&mut v);
    v
}

/// Compare two canonical magnitudes.
pub fn cmp(a: &[u32], b: &[u32]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match a.len().cmp(&b.len()) {
        Ordering::Equal => a.iter().rev().cmp(b.iter().rev()),
        ord => ord,
    }
}

/// `a + b`.
pub fn add(a: &[u32], b: &[u32]) -> Limbs {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in long.iter().enumerate() {
        let s = l as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
        out.push(s as u32);
        carry = s >> BASE_BITS;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// `a - b`; caller must guarantee `a >= b`.
pub fn sub(a: &[u32], b: &[u32]) -> Limbs {
    debug_assert!(cmp(a, b) != std::cmp::Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for (i, &ai) in a.iter().enumerate() {
        let d = ai as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
        if d < 0 {
            out.push((d + (1i64 << BASE_BITS)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    normalize(&mut out);
    out
}

/// Schoolbook `a * b`.
pub fn mul(a: &[u32], b: &[u32]) -> Limbs {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> BASE_BITS;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> BASE_BITS;
            k += 1;
        }
    }
    normalize(&mut out);
    out
}

/// Multiply in place by a single limb and add a single-limb carry; used by
/// the decimal parser.
pub fn mul_add_small(v: &mut Limbs, m: u32, add: u32) {
    let mut carry = add as u64;
    for limb in v.iter_mut() {
        let t = *limb as u64 * m as u64 + carry;
        *limb = t as u32;
        carry = t >> BASE_BITS;
    }
    while carry != 0 {
        v.push(carry as u32);
        carry >>= BASE_BITS;
    }
    normalize(v);
}

/// Divide by a single limb in place, returning the remainder; used by the
/// decimal formatter.
pub fn divmod_small(v: &mut Limbs, d: u32) -> u32 {
    debug_assert!(d != 0);
    let mut rem = 0u64;
    for limb in v.iter_mut().rev() {
        let cur = (rem << BASE_BITS) | *limb as u64;
        *limb = (cur / d as u64) as u32;
        rem = cur % d as u64;
    }
    normalize(v);
    rem as u32
}

fn shl_bits(a: &[u32], s: u32) -> Limbs {
    debug_assert!(s < BASE_BITS);
    if s == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u32;
    for &x in a {
        out.push((x << s) | carry);
        carry = x >> (BASE_BITS - s);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_bits(a: &[u32], s: u32) -> Limbs {
    debug_assert!(s < BASE_BITS);
    if s == 0 {
        let mut v = a.to_vec();
        normalize(&mut v);
        return v;
    }
    let mut out = vec![0u32; a.len()];
    let mut carry = 0u32;
    for (i, &x) in a.iter().enumerate().rev() {
        out[i] = (x >> s) | carry;
        carry = x << (BASE_BITS - s);
    }
    normalize(&mut out);
    out
}

/// Knuth Algorithm D long division: returns `(quotient, remainder)`.
/// Panics if `b` is zero.
pub fn divrem(a: &[u32], b: &[u32]) -> (Limbs, Limbs) {
    assert!(!b.is_empty(), "division by zero magnitude");
    if cmp(a, b) == std::cmp::Ordering::Less {
        let mut r = a.to_vec();
        normalize(&mut r);
        return (Vec::new(), r);
    }
    if b.len() == 1 {
        let mut q = a.to_vec();
        let r = divmod_small(&mut q, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    // Normalize so the divisor's top limb has its high bit set.
    let shift = b.last().unwrap().leading_zeros();
    let bn = shl_bits(b, shift);
    let mut an = shl_bits(a, shift);
    an.push(0); // guard limb for the first iteration

    let n = bn.len();
    let m = an.len() - n - 1;
    let mut q = vec![0u32; m + 1];
    let btop = bn[n - 1] as u64;
    let bsec = bn[n - 2] as u64;

    for j in (0..=m).rev() {
        // Estimate the quotient digit from the top two/three limbs.
        let top = ((an[j + n] as u64) << BASE_BITS) | an[j + n - 1] as u64;
        let mut qhat = top / btop;
        let mut rhat = top % btop;
        while qhat >= (1u64 << BASE_BITS)
            || qhat * bsec > ((rhat << BASE_BITS) | an[j + n - 2] as u64)
        {
            qhat -= 1;
            rhat += btop;
            if rhat >= (1u64 << BASE_BITS) {
                break;
            }
        }
        // Multiply-subtract qhat * bn from an[j .. j+n+1].
        let mut borrow = 0i64;
        let mut carry = 0u64;
        for i in 0..n {
            let p = qhat * bn[i] as u64 + carry;
            carry = p >> BASE_BITS;
            let d = an[j + i] as i64 - (p as u32) as i64 - borrow;
            if d < 0 {
                an[j + i] = (d + (1i64 << BASE_BITS)) as u32;
                borrow = 1;
            } else {
                an[j + i] = d as u32;
                borrow = 0;
            }
        }
        let d = an[j + n] as i64 - carry as i64 - borrow;
        if d < 0 {
            // qhat was one too large: add back.
            an[j + n] = (d + (1i64 << BASE_BITS)) as u32;
            qhat -= 1;
            let mut c = 0u64;
            for i in 0..n {
                let s = an[j + i] as u64 + bn[i] as u64 + c;
                an[j + i] = s as u32;
                c = s >> BASE_BITS;
            }
            an[j + n] = an[j + n].wrapping_add(c as u32);
        } else {
            an[j + n] = d as u32;
        }
        q[j] = qhat as u32;
    }

    normalize(&mut q);
    let mut r = an[..n].to_vec();
    normalize(&mut r);
    let r = shr_bits(&r, shift);
    (q, r)
}

/// Binary gcd on magnitudes.
pub fn gcd(a: &[u32], b: &[u32]) -> Limbs {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    normalize(&mut a);
    normalize(&mut b);
    // Euclidean algorithm; divrem is fast enough at our sizes.
    while !b.is_empty() {
        let (_, r) = divrem(&a, &b);
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_u128(v: &[u32]) -> u128 {
        v.iter()
            .rev()
            .fold(0u128, |acc, &x| (acc << BASE_BITS) | x as u128)
    }

    fn from_u128(mut x: u128) -> Limbs {
        let mut v = Vec::new();
        while x != 0 {
            v.push(x as u32);
            x >>= BASE_BITS;
        }
        v
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = from_u128(0xdead_beef_0123_4567_89ab_cdef);
        let b = from_u128(0xffff_ffff_ffff_ffff);
        let s = add(&a, &b);
        assert_eq!(to_u128(&s), to_u128(&a) + to_u128(&b));
        assert_eq!(sub(&s, &b), a);
    }

    #[test]
    fn mul_matches_u128() {
        let a = from_u128(0x1234_5678_9abc);
        let b = from_u128(0xfedc_ba98);
        assert_eq!(to_u128(&mul(&a, &b)), to_u128(&a) * to_u128(&b));
    }

    #[test]
    fn divrem_matches_u128() {
        let cases: &[(u128, u128)] = &[
            (0, 1),
            (7, 3),
            (u64::MAX as u128 + 5, u32::MAX as u128),
            (0xdead_beef_dead_beef_dead_beef, 0x1_0000_0001),
            (0xffff_ffff_ffff_ffff_ffff_ffff, 0xffff_ffff_ffff_fffe),
            (12345678901234567890, 12345678901234567890),
            (12345678901234567889, 12345678901234567890),
        ];
        for &(a, b) in cases {
            let (q, r) = divrem(&from_u128(a), &from_u128(b));
            assert_eq!(to_u128(&q), a / b, "q for {a}/{b}");
            assert_eq!(to_u128(&r), a % b, "r for {a}/{b}");
        }
    }

    #[test]
    fn divrem_large_random() {
        // Deterministic pseudo-random torture via a simple LCG.
        let mut state = 0x853c49e6748fea9bu128;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 8
        };
        for _ in 0..500 {
            let a = next();
            let b = next() % (1 << 67) + 1;
            let (q, r) = divrem(&from_u128(a), &from_u128(b));
            assert_eq!(to_u128(&q), a / b);
            assert_eq!(to_u128(&r), a % b);
        }
    }

    #[test]
    fn small_helpers() {
        let mut v = from_u128(1);
        for _ in 0..25 {
            mul_add_small(&mut v, 10, 7);
        }
        let expect = (0..25).fold(1u128, |acc, _| acc * 10 + 7);
        assert_eq!(to_u128(&v), expect);
        let r = divmod_small(&mut v, 1_000_000_007);
        assert_eq!(to_u128(&v), expect / 1_000_000_007);
        assert_eq!(r as u128, expect % 1_000_000_007);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(to_u128(&gcd(&from_u128(48), &from_u128(36))), 12);
        assert_eq!(to_u128(&gcd(&from_u128(0), &from_u128(5))), 5);
        assert_eq!(
            to_u128(&gcd(
                &from_u128(2 * 3 * 5 * 7 * 11 * 13 * 17 * 19),
                &from_u128(3 * 7 * 13 * 19 * 23)
            )),
            (3 * 7 * 13 * 19) as u128
        );
    }
}
