//! Signed arbitrary-precision integers (sign + magnitude).

use crate::uint::{self, Limbs};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Canonical form: `magnitude` has no trailing zero limbs, and
/// `sign == Sign::Zero` iff `magnitude` is empty.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: Limbs,
}

impl BigInt {
    pub const fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            magnitude: Vec::new(),
        }
    }

    pub fn one() -> BigInt {
        BigInt::from(1i64)
    }

    fn from_parts(sign: Sign, mut magnitude: Limbs) -> BigInt {
        uint::normalize(&mut magnitude);
        if magnitude.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, magnitude }
        }
    }

    pub fn sign(&self) -> Sign {
        self.sign
    }

    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Negative => -self.clone(),
            _ => self.clone(),
        }
    }

    /// Greatest common divisor of magnitudes; result is nonnegative.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        BigInt::from_parts(Sign::Positive, uint::gcd(&self.magnitude, &other.magnitude))
    }

    /// Euclidean division with truncation toward zero (like Rust's `/`/`%`
    /// on primitives): `self = q*other + r` with `|r| < |other|` and `r`
    /// sharing `self`'s sign.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        let (q, r) = uint::divrem(&self.magnitude, &other.magnitude);
        let qsign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        (
            BigInt::from_parts(qsign, q),
            BigInt::from_parts(self.sign, r),
        )
    }

    /// Exact conversion to `i64` when the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.magnitude.len() > 2 {
            return None;
        }
        let mag = self
            .magnitude
            .iter()
            .rev()
            .fold(0u128, |acc, &x| (acc << 32) | x as u128);
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive if mag <= i64::MAX as u128 => Some(mag as i64),
            Sign::Negative if mag <= i64::MAX as u128 + 1 => {
                Some((mag as i128).wrapping_neg() as i64)
            }
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (for reporting only, never decisions).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.magnitude.iter().rev() {
            v = v * 4294967296.0 + limb as f64;
        }
        if self.sign == Sign::Negative {
            -v
        } else {
            v
        }
    }

    /// Number of bits in the magnitude (0 for zero). Used by the simplex
    /// solver to track coefficient growth.
    pub fn bits(&self) -> usize {
        match self.magnitude.last() {
            None => 0,
            Some(top) => (self.magnitude.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// `2^exp`, used for the chain-classifier weights of Lemma 5.4 / [22].
    pub fn pow2(exp: usize) -> BigInt {
        let mut magnitude = vec![0u32; exp / 32];
        magnitude.push(1u32 << (exp % 32));
        BigInt::from_parts(Sign::Positive, magnitude)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_parts(Sign::Positive, uint::from_u64(v as u64)),
            Ordering::Less => BigInt::from_parts(Sign::Negative, uint::from_u64(v.unsigned_abs())),
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> BigInt {
        BigInt::from(v as i64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v > 0 {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let mut mag = v.unsigned_abs();
        let mut limbs = Vec::with_capacity(4);
        while mag != 0 {
            limbs.push(mag as u32);
            mag >>= 32;
        }
        BigInt::from_parts(sign, limbs)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> BigInt {
        BigInt::from_parts(Sign::Positive, uint::from_u64(v as u64))
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Negative => 0,
            Sign::Zero => 1,
            Sign::Positive => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => uint::cmp(&self.magnitude, &other.magnitude),
                Sign::Negative => uint::cmp(&other.magnitude, &self.magnitude),
            },
            ord => ord,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_parts(a, uint::add(&self.magnitude, &rhs.magnitude)),
            _ => match uint::cmp(&self.magnitude, &rhs.magnitude) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_parts(self.sign, uint::sub(&self.magnitude, &rhs.magnitude))
                }
                Ordering::Less => {
                    BigInt::from_parts(rhs.sign, uint::sub(&rhs.magnitude, &self.magnitude))
                }
            },
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_parts(sign, uint::mul(&self.magnitude, &rhs.magnitude))
    }
}

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Div, div);
forward_owned!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        // Peel 9 decimal digits at a time.
        let mut mag = self.magnitude.clone();
        let mut chunks = Vec::new();
        while !mag.is_empty() {
            chunks.push(uint::divmod_small(&mut mag, 1_000_000_000));
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.into_iter().rev() {
            write!(f, "{c:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Error parsing a [`BigInt`] or [`crate::BigRational`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError(pub String);

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError(s.to_string()));
        }
        let mut mag: Limbs = Vec::new();
        for chunk in digits.as_bytes().chunks(9) {
            let val: u32 = std::str::from_utf8(chunk).unwrap().parse().unwrap();
            let scale = 10u32.pow(chunk.len() as u32);
            uint::mul_add_small(&mut mag, scale, val);
        }
        Ok(BigInt::from_parts(sign, mag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn arithmetic_matches_i64() {
        let samples = [-1000i64, -17, -1, 0, 1, 5, 123, 99999, i32::MAX as i64];
        for &x in &samples {
            for &y in &samples {
                assert_eq!((b(x) + b(y)).to_i64(), Some(x + y), "{x}+{y}");
                assert_eq!((b(x) - b(y)).to_i64(), Some(x - y), "{x}-{y}");
                assert_eq!((b(x) * b(y)).to_i64(), Some(x * y), "{x}*{y}");
                if y != 0 {
                    assert_eq!((b(x) / &b(y)).to_i64(), Some(x / y), "{x}/{y}");
                    assert_eq!((b(x) % &b(y)).to_i64(), Some(x % y), "{x}%{y}");
                }
                assert_eq!(b(x).cmp(&b(y)), x.cmp(&y));
            }
        }
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "-1",
            "123456789012345678901234567890",
            "-999999999999999999",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
    }

    #[test]
    fn big_multiplication() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let expect = "15241578753238836750495351562536198787501905199875019052100";
        assert_eq!((&a * &a).to_string(), expect);
    }

    #[test]
    fn pow2_values() {
        assert_eq!(BigInt::pow2(0).to_i64(), Some(1));
        assert_eq!(BigInt::pow2(10).to_i64(), Some(1024));
        assert_eq!(BigInt::pow2(62).to_i64(), Some(1 << 62));
        assert_eq!(
            BigInt::pow2(100).to_string(),
            "1267650600228229401496703205376"
        );
        assert_eq!(BigInt::pow2(100).bits(), 101);
    }

    #[test]
    fn gcd_signs() {
        assert_eq!(b(-48).gcd(&b(36)).to_i64(), Some(12));
        assert_eq!(b(0).gcd(&b(-7)).to_i64(), Some(7));
    }

    #[test]
    fn to_i64_boundaries() {
        assert_eq!(b(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN + 1).to_i64(), Some(i64::MIN + 1));
        let too_big = b(i64::MAX) + b(1);
        assert_eq!(too_big.to_i64(), None);
        // i64::MIN itself round-trips via the magnitude path.
        let min = -(b(i64::MAX) + b(1));
        assert_eq!(min.to_i64(), Some(i64::MIN));
    }

    #[test]
    fn to_f64_sane() {
        assert_eq!(b(1500).to_f64(), 1500.0);
        assert_eq!(b(-3).to_f64(), -3.0);
        let big = BigInt::pow2(64);
        assert_eq!(big.to_f64(), 18446744073709551616.0);
    }
}
