//! [`Rat`] — a hybrid exact rational for the LP hot path.
//!
//! The simplex tableaus built from ±1 training vectors start as small
//! integers, and Edmonds' analysis of exact Gaussian elimination says the
//! *reduced* entries stay polynomially sized; in practice almost every
//! entry fits a machine word for the LPs the separability algorithms
//! generate. [`BigRational`] pays a heap-allocated limb vector and a full
//! limb-by-limb GCD per arithmetic op anyway. `Rat` stores an
//! `i64`-numerator/denominator pair inline, does its arithmetic in `i128`
//! (with checked multiplies), and only on genuine overflow promotes the
//! value to a boxed [`BigRational`] — demoting back as soon as a result
//! fits again, so a transient spike does not poison downstream arithmetic.
//!
//! Canonical form: `den > 0`, `gcd(|num|, den) == 1`, zero is `0/1`, and
//! the `Big` representation is used **only** when the reduced
//! numerator/denominator do not both fit in `i64`. The canonical form is
//! what makes the derived `PartialEq`/`Eq`/`Hash` correct: equal values
//! always have identical representations.
//!
//! Every small→big promotion bumps a process-global counter readable via
//! [`promotion_count`]; the LP engine's `LpStats` reports it so a
//! workload that silently falls off the fast path is visible in
//! `--stats` output and benches.

use crate::bigint::BigInt;
use crate::rational::BigRational;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

static PROMOTIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of small→big promotions since process start. Monotone;
/// difference two readings to measure a region (as `linsep`'s `LpStats`
/// does).
pub fn promotion_count() -> u64 {
    PROMOTIONS.load(AtomicOrdering::Relaxed)
}

fn note_promotion() {
    PROMOTIONS.fetch_add(1, AtomicOrdering::Relaxed);
}

/// An exact rational that is an inline `i64` fraction whenever the
/// reduced value fits, and a boxed [`BigRational`] otherwise.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Rat {
    /// `num/den` with `den > 0`, `gcd(|num|, den) == 1`.
    Small(i64, i64),
    /// Reduced value whose numerator or denominator exceeds `i64`.
    Big(Box<BigRational>),
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Reduce `n/d` (`d != 0`) computed in `i128` and pick the representation.
fn norm128(mut n: i128, mut d: i128) -> Rat {
    debug_assert!(d != 0, "rational with zero denominator");
    if n == 0 {
        return Rat::Small(0, 1);
    }
    if d < 0 {
        // Inputs are products/sums of i64-bounded factors, so negation
        // cannot overflow i128::MIN.
        n = -n;
        d = -d;
    }
    let g = gcd_u128(n.unsigned_abs(), d as u128) as i128;
    n /= g;
    d /= g;
    match (i64::try_from(n), i64::try_from(d)) {
        (Ok(n64), Ok(d64)) => Rat::Small(n64, d64),
        _ => {
            note_promotion();
            Rat::Big(Box::new(BigRational::new(BigInt::from(n), BigInt::from(d))))
        }
    }
}

/// Wrap a [`BigRational`], demoting to the small representation if the
/// reduced parts fit `i64` (a `BigRational` is already reduced).
fn from_big(b: BigRational) -> Rat {
    match (b.numer().to_i64(), b.denom().to_i64()) {
        (Some(n), Some(d)) => Rat::Small(n, d),
        _ => Rat::Big(Box::new(b)),
    }
}

impl Rat {
    /// Build `num/den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: i64, den: i64) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        norm128(num as i128, den as i128)
    }

    pub const fn zero() -> Rat {
        Rat::Small(0, 1)
    }

    pub const fn one() -> Rat {
        Rat::Small(1, 1)
    }

    pub fn is_zero(&self) -> bool {
        matches!(self, Rat::Small(0, _))
    }

    pub fn is_positive(&self) -> bool {
        match self {
            Rat::Small(n, _) => *n > 0,
            Rat::Big(b) => b.is_positive(),
        }
    }

    pub fn is_negative(&self) -> bool {
        match self {
            Rat::Small(n, _) => *n < 0,
            Rat::Big(b) => b.is_negative(),
        }
    }

    /// Sign as -1 / 0 / +1; the only thing the simplex pivot rules look at.
    pub fn signum(&self) -> i32 {
        match self {
            Rat::Small(n, _) => match n.cmp(&0) {
                Ordering::Less => -1,
                Ordering::Equal => 0,
                Ordering::Greater => 1,
            },
            Rat::Big(b) => b.signum(),
        }
    }

    pub fn abs(&self) -> Rat {
        if self.is_negative() {
            -self
        } else {
            self.clone()
        }
    }

    pub fn recip(&self) -> Rat {
        match self {
            Rat::Small(0, _) => panic!("reciprocal of zero"),
            Rat::Small(n, d) => norm128(*d as i128, *n as i128),
            Rat::Big(b) => from_big(b.recip()),
        }
    }

    /// The value as a [`BigRational`] (exact, always possible).
    pub fn to_big(&self) -> BigRational {
        match self {
            Rat::Small(n, d) => BigRational::new(BigInt::from(*n), BigInt::from(*d)),
            Rat::Big(b) => (**b).clone(),
        }
    }

    /// Is this value currently in the inline small representation?
    pub fn is_small(&self) -> bool {
        matches!(self, Rat::Small(..))
    }

    /// The reduced `(num, den)` pair when the value is small.
    pub fn as_small(&self) -> Option<(i64, i64)> {
        match self {
            Rat::Small(n, d) => Some((*n, *d)),
            Rat::Big(_) => None,
        }
    }

    /// Exact conversion when the value is an integer fitting `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        match self {
            Rat::Small(n, 1) => Some(*n),
            _ => None,
        }
    }

    /// Approximate value for reporting (never used for decisions).
    pub fn to_f64(&self) -> f64 {
        match self {
            Rat::Small(n, d) => *n as f64 / *d as f64,
            Rat::Big(b) => b.to_f64(),
        }
    }

    /// Fused `self -= f * x` — the simplex elimination kernel. On the
    /// all-small path this is a handful of checked `i128` multiplies with
    /// no allocation; any overflow (or big operand) falls back to
    /// [`BigRational`] arithmetic and demotes the result if it fits.
    pub fn sub_mul(&mut self, f: &Rat, x: &Rat) {
        if let (Rat::Small(sn, sd), Rat::Small(fn_, fd), Rat::Small(xn, xd)) = (&*self, f, x) {
            // self - f*x = (sn*(fd*xd) - (fn*xn)*sd) / (sd*fd*xd)
            let fx_d = *fd as i128 * *xd as i128; // < 2^126, exact
            let fx_n = *fn_ as i128 * *xn as i128; // < 2^126, exact
            if let (Some(l), Some(r), Some(d)) = (
                (*sn as i128).checked_mul(fx_d),
                fx_n.checked_mul(*sd as i128),
                (*sd as i128).checked_mul(fx_d),
            ) {
                if let Some(n) = l.checked_sub(r) {
                    *self = norm128(n, d);
                    return;
                }
            }
        }
        let big = self.to_big() - self::mul_big(f, x);
        *self = from_big(big);
    }

    /// Fused `self += f * x` — the accumulation kernel of the revised
    /// simplex (FTRAN/BTRAN substitution sums and pricing dot products).
    /// Same shape as [`Rat::sub_mul`]: all-small inputs run as checked
    /// `i128` multiplies with no allocation; overflow or big operands
    /// fall back to [`BigRational`] arithmetic and demote if they fit.
    pub fn add_mul(&mut self, f: &Rat, x: &Rat) {
        if let (Rat::Small(sn, sd), Rat::Small(fn_, fd), Rat::Small(xn, xd)) = (&*self, f, x) {
            // self + f*x = (sn*(fd*xd) + (fn*xn)*sd) / (sd*fd*xd)
            let fx_d = *fd as i128 * *xd as i128; // < 2^126, exact
            let fx_n = *fn_ as i128 * *xn as i128; // < 2^126, exact
            if let (Some(l), Some(r), Some(d)) = (
                (*sn as i128).checked_mul(fx_d),
                fx_n.checked_mul(*sd as i128),
                (*sd as i128).checked_mul(fx_d),
            ) {
                if let Some(n) = l.checked_add(r) {
                    *self = norm128(n, d);
                    return;
                }
            }
        }
        let big = self.to_big() + self::mul_big(f, x);
        *self = from_big(big);
    }
}

fn mul_big(a: &Rat, b: &Rat) -> BigRational {
    a.to_big() * b.to_big()
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::Small(v, 1)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::Small(v as i64, 1)
    }
}

impl From<BigRational> for Rat {
    fn from(b: BigRational) -> Rat {
        from_big(b)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        match (self, other) {
            (Rat::Small(an, ad), Rat::Small(bn, bd)) => {
                // a/b ? c/d  <=>  a*d ? c*b (denominators positive);
                // i64 products fit i128 exactly.
                (*an as i128 * *bd as i128).cmp(&(*bn as i128 * *ad as i128))
            }
            _ => self.to_big().cmp(&other.to_big()),
        }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        match self {
            Rat::Small(n, d) => norm128(-(*n as i128), *d as i128),
            Rat::Big(b) => from_big(-(**b).clone()),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -&self
    }
}

impl Add<&Rat> for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        if let (Rat::Small(an, ad), Rat::Small(bn, bd)) = (self, rhs) {
            // Cross products of i64s fit i128; their sum fits too.
            let n = *an as i128 * *bd as i128 + *bn as i128 * *ad as i128;
            let d = *ad as i128 * *bd as i128;
            return norm128(n, d);
        }
        from_big(self.to_big() + rhs.to_big())
    }
}

impl Sub<&Rat> for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        if let (Rat::Small(an, ad), Rat::Small(bn, bd)) = (self, rhs) {
            let n = *an as i128 * *bd as i128 - *bn as i128 * *ad as i128;
            let d = *ad as i128 * *bd as i128;
            return norm128(n, d);
        }
        from_big(self.to_big() - rhs.to_big())
    }
}

impl Mul<&Rat> for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        if let (Rat::Small(an, ad), Rat::Small(bn, bd)) = (self, rhs) {
            let n = *an as i128 * *bn as i128;
            let d = *ad as i128 * *bd as i128;
            return norm128(n, d);
        }
        from_big(self.to_big() * rhs.to_big())
    }
}

impl Div<&Rat> for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        assert!(!rhs.is_zero(), "rational division by zero");
        if let (Rat::Small(an, ad), Rat::Small(bn, bd)) = (self, rhs) {
            let n = *an as i128 * *bd as i128;
            let d = *ad as i128 * *bn as i128;
            return norm128(n, d);
        }
        from_big(self.to_big() / rhs.to_big())
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait<Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$method(&rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rat::Small(n, 1) => write!(f, "{n}"),
            Rat::Small(n, d) => write!(f, "{n}/{d}"),
            Rat::Big(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl FromStr for Rat {
    type Err = <BigRational as FromStr>::Err;
    fn from_str(s: &str) -> Result<Rat, Self::Err> {
        // Parse through BigRational (same `n/d` syntax), then demote.
        Ok(from_big(s.parse::<BigRational>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n, d)
    }

    #[test]
    fn normalization_and_canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rat::zero());
        assert_eq!(r(6, 3).to_i64(), Some(2));
        assert!(r(1, 2).is_small());
        // A BigRational that fits must demote to the identical Small rep.
        assert_eq!(Rat::from(ratio(-10, 4)), r(-5, 2));
    }

    #[test]
    fn field_ops_small() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 9), r(3, 2));
        assert_eq!(r(5, 7).recip(), r(7, 5));
        assert_eq!(-r(5, 7), r(-5, 7));
        assert_eq!(r(i64::MIN + 1, 1).abs(), r(i64::MAX, 1));
    }

    #[test]
    fn ordering_and_signs() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert_eq!(r(7, 7).cmp(&r(3, 3)), Ordering::Equal);
        assert_eq!(r(1, 2).signum(), 1);
        assert_eq!(r(-1, 2).signum(), -1);
        assert_eq!(Rat::zero().signum(), 0);
        assert!(r(3, 4).is_positive() && !r(3, 4).is_negative());
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        let before = promotion_count();
        let huge = r(i64::MAX, 1);
        let sq = &huge * &huge; // overflows i64, promotes
        assert!(!sq.is_small());
        assert!(promotion_count() > before, "promotion must be counted");
        assert_eq!(sq.to_big(), &huge.to_big() * &huge.to_big());
        // Dividing back demotes to the small representation.
        let back = &sq / &huge;
        assert_eq!(back, huge);
        assert!(back.is_small());
    }

    #[test]
    fn mixed_small_big_arithmetic_is_exact() {
        let huge = &r(i64::MAX, 3) * &r(i64::MAX, 5);
        let x = &huge + &r(1, 15);
        assert_eq!(
            x.to_big(),
            &huge.to_big() + &crate::ratio(1, 15),
            "mixed add must match BigRational"
        );
        assert!((&x - &huge).is_small());
        assert!(huge > r(i64::MAX, 1));
        assert!(-&huge < r(i64::MIN, 1));
    }

    #[test]
    fn sub_mul_matches_composed_ops() {
        let mut a = r(3, 4);
        a.sub_mul(&r(2, 3), &r(5, 7));
        assert_eq!(a, &r(3, 4) - &(&r(2, 3) * &r(5, 7)));
        // Overflowing fused op falls back to big and stays exact.
        let mut b = r(i64::MAX, 2);
        b.sub_mul(&r(i64::MAX, 3), &r(i64::MAX, 5));
        let expect = &ratio(i64::MAX, 2) - &(&ratio(i64::MAX, 3) * &ratio(i64::MAX, 5));
        assert_eq!(b.to_big(), expect);
    }

    #[test]
    fn add_mul_matches_composed_ops() {
        let mut a = r(3, 4);
        a.add_mul(&r(2, 3), &r(-5, 7));
        assert_eq!(a, &r(3, 4) + &(&r(2, 3) * &r(-5, 7)));
        // Overflowing fused op falls back to big and stays exact.
        let mut b = r(i64::MAX, 2);
        b.add_mul(&r(i64::MAX, 3), &r(i64::MAX, 5));
        let expect = &ratio(i64::MAX, 2) + &(&ratio(i64::MAX, 3) * &ratio(i64::MAX, 5));
        assert_eq!(b.to_big(), expect);
        // Zero accumulator and zero factor stay small and exact.
        let mut z = Rat::zero();
        z.add_mul(&r(1, 3), &r(3, 1));
        assert_eq!(z, Rat::one());
        z.add_mul(&Rat::zero(), &r(9, 7));
        assert_eq!(z, Rat::one());
    }

    #[test]
    fn display_parse_roundtrip() {
        assert_eq!(r(-3, 6).to_string(), "-1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!("-1/2".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("17".parse::<Rat>().unwrap(), Rat::from(17i64));
        assert!("1/0".parse::<Rat>().is_err());
        let huge = (&r(i64::MAX, 1) * &r(i64::MAX, 1)).to_string();
        assert_eq!(huge.parse::<Rat>().unwrap().to_string(), huge);
    }

    #[test]
    fn extreme_i64_inputs() {
        // i64::MIN negation and reduction paths must not overflow.
        assert_eq!(-r(i64::MIN, 1), &r(i64::MAX, 1) + &r(1, 1));
        assert_eq!(r(i64::MIN, 2), r(i64::MIN / 2, 1));
        assert_eq!(r(i64::MIN, i64::MIN), Rat::one());
        assert!(r(i64::MIN, 1) < r(i64::MIN + 1, 1));
    }
}
