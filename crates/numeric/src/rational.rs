//! Exact rational numbers over [`BigInt`], always kept in lowest terms with
//! a positive denominator.

use crate::bigint::{BigInt, ParseBigIntError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: `den > 0`, `gcd(|num|, den) == 1`, and zero is `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

impl BigRational {
    /// Build `num/den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> BigRational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        BigRational {
            num: &num / &g,
            den: &den / &g,
        }
    }

    pub fn from_int(v: BigInt) -> BigRational {
        BigRational {
            num: v,
            den: BigInt::one(),
        }
    }

    pub fn zero() -> BigRational {
        BigRational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    pub fn one() -> BigRational {
        BigRational::from_int(BigInt::one())
    }

    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign as -1 / 0 / +1; the only thing the simplex pivot rules look at.
    pub fn signum(&self) -> i32 {
        if self.num.is_negative() {
            -1
        } else if self.num.is_zero() {
            0
        } else {
            1
        }
    }

    pub fn abs(&self) -> BigRational {
        BigRational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational::new(self.den.clone(), self.num.clone())
    }

    /// Approximate value for reporting (never used for decisions).
    pub fn to_f64(&self) -> f64 {
        // Scale to keep precision when both parts are huge.
        let nb = self.num.bits();
        let db = self.den.bits();
        if nb < 900 && db < 900 {
            self.num.to_f64() / self.den.to_f64()
        } else {
            let shift = nb.max(db) - 512;
            let scale = BigInt::pow2(shift);
            (&self.num / &scale).to_f64() / (&self.den / &scale).to_f64()
        }
    }

    /// Exact conversion when the value is an integer fitting `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        if self.den == BigInt::one() {
            self.num.to_i64()
        } else {
            None
        }
    }
}

impl Default for BigRational {
    fn default() -> BigRational {
        BigRational::from_int(BigInt::zero())
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> BigRational {
        BigRational::from_int(BigInt::from(v))
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &BigRational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &BigRational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (denominators positive).
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        -self.clone()
    }
}

impl Add<&BigRational> for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub<&BigRational> for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        self + &(-rhs)
    }
}

impl Mul<&BigRational> for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div<&BigRational> for &BigRational {
    type Output = BigRational;
    fn div(self, rhs: &BigRational) -> BigRational {
        assert!(!rhs.is_zero(), "rational division by zero");
        BigRational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait<BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$method(&rhs)
            }
        }
    };
}
forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);
forward_owned!(Div, div);

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, rhs: &BigRational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigRational> for BigRational {
    fn sub_assign(&mut self, rhs: &BigRational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigRational> for BigRational {
    fn mul_assign(&mut self, rhs: &BigRational) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == BigInt::one() || self.num.is_zero() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl FromStr for BigRational {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<BigRational, ParseBigIntError> {
        match s.split_once('/') {
            None => Ok(BigRational::from_int(s.parse()?)),
            Some((n, d)) => {
                let den: BigInt = d.parse()?;
                if den.is_zero() {
                    return Err(ParseBigIntError(s.to_string()));
                }
                Ok(BigRational::new(n.parse()?, den))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> BigRational {
        BigRational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), BigRational::default());
        assert!(r(2, -4).is_negative());
        assert!(r(-3, -4).is_positive());
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 9), r(3, 2));
        assert_eq!(r(5, 7).recip(), r(7, 5));
        assert_eq!(-r(5, 7), r(-5, 7));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < BigRational::default());
        assert_eq!(r(7, 7).cmp(&r(3, 3)), Ordering::Equal);
        assert_eq!(r(1, 2).signum(), 1);
        assert_eq!(r(-1, 2).signum(), -1);
        assert_eq!(r(0, 2).signum(), 0);
    }

    #[test]
    fn display_parse() {
        assert_eq!(r(-3, 6).to_string(), "-1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!("-1/2".parse::<BigRational>().unwrap(), r(-1, 2));
        assert_eq!("17".parse::<BigRational>().unwrap(), r(17, 1));
        assert!("1/0".parse::<BigRational>().is_err());
        assert!("x/2".parse::<BigRational>().is_err());
    }

    #[test]
    fn to_f64_and_i64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
        assert_eq!(r(6, 3).to_i64(), Some(2));
        assert_eq!(r(1, 2).to_i64(), None);
        // Huge but ratio ~ 1.5: the scaled path must stay accurate.
        let big = BigRational::new(BigInt::pow2(2000) * BigInt::from(3), BigInt::pow2(2001));
        assert!((big.to_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += &r(1, 4);
        assert_eq!(x, r(3, 4));
        x -= &r(1, 4);
        assert_eq!(x, r(1, 2));
        x *= &r(4, 1);
        assert_eq!(x, r(2, 1));
    }
}
