//! Arbitrary-precision integer and rational arithmetic, built from scratch.
//!
//! The separability algorithms of Barceló et al. (PODS 2019) reduce the
//! "is this training collection linearly separable?" question to linear
//! programming (Proposition 4.1). Floating-point LP is unacceptable there:
//! a sign error flips a *decision problem* answer. This crate provides the
//! exact arithmetic substrate used by the [`linsep`] crate's simplex solver:
//!
//! * [`BigInt`] — sign-magnitude arbitrary-precision integers over `u32`
//!   limbs (little-endian), with schoolbook multiplication and Knuth
//!   Algorithm D division. Magnitudes in the LP stay small enough that
//!   asymptotically fancier multiplication would be noise.
//! * [`BigRational`] — always-normalized fractions of [`BigInt`]s.
//! * [`Rat`] — the hybrid rational the LP engine actually runs on: an
//!   inline `i64` fraction with `i128` intermediates that transparently
//!   promotes to [`BigRational`] on overflow (and demotes back), with a
//!   global promotion counter for instrumentation.
//!
//! Only the operations the simplex solver and the classifier constructions
//! need are implemented, but those are implemented completely (including
//! division, gcd, comparison, parsing, and formatting) and are
//! property-tested against `i128` semantics.

pub mod bigint;
pub mod rat;
pub mod rational;
mod uint;

pub use bigint::{BigInt, Sign};
pub use rat::Rat;
pub use rational::BigRational;

/// Convenience constructor: a rational from an integer pair, panicking on a
/// zero denominator. Handy in tests and classifier-weight construction.
pub fn ratio(num: i64, den: i64) -> BigRational {
    BigRational::new(BigInt::from(num), BigInt::from(den))
}

/// Convenience constructor: an integer rational.
pub fn int(v: i64) -> BigRational {
    BigRational::from_int(BigInt::from(v))
}

/// Convenience constructor: a hybrid [`Rat`] from an integer pair,
/// panicking on a zero denominator. The `Rat` counterpart of [`ratio`].
pub fn qrat(num: i64, den: i64) -> Rat {
    Rat::new(num, den)
}

/// Convenience constructor: an integer hybrid [`Rat`]. The `Rat`
/// counterpart of [`int`].
pub fn qint(v: i64) -> Rat {
    Rat::from(v)
}

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn ratio_and_int_agree() {
        assert_eq!(ratio(4, 2), int(2));
        assert_eq!(ratio(-9, 3), int(-3));
        assert_eq!(ratio(1, 3) + ratio(2, 3), int(1));
    }
}
