//! The existential k-cover game of Chen and Dalmau (§5 of Barceló et al.,
//! PODS 2019), the relation `→_k` it decides, and the machinery built on
//! top of it:
//!
//! * [`game`] — deciding `(D, ā) →_k (D', b̄)` by a greatest-fixpoint
//!   computation over game positions (Proposition 5.1);
//! * [`classes`] — the preorder `e ⪯ e'  ⇔  (D,e) →_k (D,e')` over the
//!   entities, its equivalence classes and topological sort (the spine of
//!   Lemma 5.4, Algorithm 1, and Algorithm 2);
//! * [`extract`] — unfolding Spoiler's winning strategy into an explicit
//!   distinguishing CQ of ghw ≤ k (the constructive content of
//!   Proposition 5.6; sizes can be exponential, per Theorem 5.7, so
//!   extraction carries a budget);
//! * [`pebble`] — the k-pebble (partial isomorphism) game deciding
//!   FO_k-indistinguishability, used for §8.
//!
//! # The union-jump formulation
//!
//! The paper's game has Spoiler place/remove pebbles one at a time subject
//! to the pebbled set being coverable by ≤ k facts. We implement the
//! equivalent *union-jump* game: positions are pairs `(U, h)` where `U` is
//! the element set of a union of ≤ k facts of `D` and `h : U → dom(D')`
//! maps every fact of `D` inside `U ∪ ā` to a fact of `D'` (respecting
//! `ā → b̄`); Spoiler jumps from `U` to any other union `U'`, and
//! Duplicator must answer with an `h'` agreeing with `h` on `U ∩ U'`.
//! Jump moves decompose into legal pebble moves and vice versa, so the
//! winners coincide — but positions are now polynomially enumerable for
//! fixed `k` and arity, which is what Proposition 5.1 requires.

pub mod cache;
pub mod classes;
pub mod extract;
pub mod game;
pub mod pebble;
pub mod skeleton;
pub mod stats;

pub use cache::{cover_implies_cached, GameCache};
pub use classes::CoverPreorder;
pub use extract::{extract_distinguishing_query, ExtractError};
pub use game::{cover_equivalent, cover_implies, CoverGame};
pub use pebble::{pebble_equivalent, PebbleGame};
pub use skeleton::UnionSkeleton;
pub use stats::GameStats;
